//! Integration tests for the lint harness: fixture files with known
//! violations (rule IDs and file:line asserted), decoy files that must
//! stay clean, allowlist behavior, and a clean run over the real tree.

use std::path::Path;

use xtask::{
    apply_allowlist, lint_source, lint_workspace, parse_allowlist, Finding, LintError,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ids(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn violations_fixture_flags_every_rule_with_position() {
    let findings = lint_source("crates/fixture/src/violations.rs", &fixture("violations.rs"));
    assert_eq!(
        ids(&findings),
        vec![
            ("ACT001", 5),
            ("ACT002", 9),
            ("ACT002", 13),
            ("ACT003", 17),
            ("ACT004", 21),
            ("ACT005", 25),
        ],
        "got: {findings:#?}"
    );
    // file:line:col rendering, pointing at the offending token.
    let first = findings[0].to_string();
    assert!(first.starts_with("crates/fixture/src/violations.rs:5:7: ACT001"), "{first}");
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = lint_source("crates/fixture/src/clean.rs", &fixture("clean.rs"));
    assert!(findings.is_empty(), "decoys should not trigger rules: {findings:#?}");
}

#[test]
fn unit_home_crates_may_touch_the_raw_boundary() {
    let src = "pub fn f(q: Energy) -> f64 { q.base() + Energy::from_base(3600.0).base() }\n";
    assert!(lint_source("crates/units/src/x.rs", src).is_empty());
    assert!(lint_source("crates/data/src/x.rs", src).is_empty());
    let outside = lint_source("crates/core/src/x.rs", src);
    // Sorted by column: q.base(), from_base(, 3600.0, .base() again.
    let rules: Vec<&str> = outside.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["ACT001", "ACT004", "ACT003", "ACT001"], "{outside:#?}");
}

#[test]
fn cli_binary_is_exempt_from_act002_only() {
    let src = "fn main() { run().unwrap(); dbg!(1); }\n";
    let findings = lint_source("crates/cli/src/main.rs", src);
    assert_eq!(ids(&findings), vec![("ACT005", 1)], "{findings:#?}");
}

#[test]
fn act005_applies_even_inside_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f() { todo!() }\n}\n";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert_eq!(ids(&findings), vec![("ACT005", 3)]);
}

#[test]
fn cfg_test_region_covers_only_the_gated_item() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(v: Option<u32>) -> u32 { v.unwrap() }\n}\n\
               pub fn g(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert_eq!(ids(&findings), vec![("ACT002", 6)], "{findings:#?}");
}

#[test]
fn allowlist_suppresses_matching_findings_and_reports_stale_entries() {
    let findings = lint_source("crates/fixture/src/violations.rs", &fixture("violations.rs"));
    let entries = parse_allowlist(
        "# comment\n\
         ACT001|src/violations.rs|q.base()|fixture demonstrates the raw escape\n\
         ACT002|src/other.rs|nothing here|stale entry that matches no finding\n",
    )
    .expect("well-formed allowlist");
    let (kept, suppressed, stale) = apply_allowlist(findings, &entries);
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "ACT001");
    assert!(kept.iter().all(|f| f.rule != "ACT001"));
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].path_suffix, "src/other.rs");
}

#[test]
fn allowlist_justification_is_mandatory() {
    let err = parse_allowlist("ACT002|a.rs|line|\n").expect_err("empty justification");
    assert!(matches!(err, LintError::MalformedAllowEntry { line: 1, .. }), "{err}");
    let err = parse_allowlist("ACT002|a.rs|line\n").expect_err("three fields only");
    assert!(err.to_string().contains("RULE|path-suffix|line-substring|justification"));
}

#[test]
fn the_real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let report = lint_workspace(&root).expect("lintable tree");
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(report.findings.is_empty(), "violations: {rendered:#?}");
    assert!(report.stale.is_empty(), "stale allowlist entries: {:#?}", report.stale);
    assert!(!report.suppressed.is_empty(), "the vetted ftl.rs invariants should be suppressed");
}
