//! Exit-code contract over the per-rule fixtures: `cargo xtask analyze
//! --file` must exit 1 on every `_bad` fixture and 0 on every `_ok`
//! fixture, for all eleven rules. This is the user-visible behavior the
//! in-crate fixture tests model with `analyze_source`.

use std::path::Path;
use std::process::Command;

const CASES: &[(&str, &str)] = &[
    ("crates/model/src/energy.rs", "act001"),
    ("crates/model/src/energy.rs", "act002"),
    ("crates/model/src/energy.rs", "act003"),
    ("crates/model/src/energy.rs", "act004"),
    ("crates/model/src/energy.rs", "act005"),
    ("crates/model/src/params.rs", "act006"),
    ("crates/dse/src/sweep.rs", "act007"),
    ("crates/model/src/energy.rs", "act008"),
    ("crates/server/src/hub.rs", "act009"),
    ("crates/dse/src/pareto.rs", "act010"),
    ("crates/server/src/routes.rs", "act011"),
];

fn analyze_file(fixture: &Path, fake_path: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--file"])
        .arg(fixture)
        .args(["--as", fake_path])
        .output()
        .expect("xtask binary runs");
    let code = out.status.code().unwrap_or(-1);
    (code, String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn bad_fixtures_exit_1_and_ok_fixtures_exit_0() {
    let fixtures =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../crates/analyze/tests/fixtures");
    for (fake_path, stem) in CASES {
        let rule = format!("ACT{}", &stem[3..]);
        let (code, stdout) = analyze_file(&fixtures.join(format!("{stem}_bad.rs")), fake_path);
        assert_eq!(code, 1, "{stem}_bad.rs should fail analysis; stdout:\n{stdout}");
        assert!(
            stdout.contains(&rule),
            "{stem}_bad.rs findings should name {rule}; stdout:\n{stdout}"
        );
        let (code, stdout) = analyze_file(&fixtures.join(format!("{stem}_ok.rs")), fake_path);
        assert_eq!(code, 0, "{stem}_ok.rs should pass analysis; stdout:\n{stdout}");
    }
}
