//! Fixture with one known violation per rule. Line numbers are asserted
//! by `tests/lint.rs` — keep them stable when editing.

pub fn act001_raw_escape(q: act_units::Energy) -> f64 {
    q.base()
}

pub fn act002_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn act002_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn act003_literal(hours: f64) -> f64 {
    hours * 3600.0
}

pub fn act004_infallible(raw: f64) -> act_units::Energy {
    act_units::Energy::from_base(raw)
}

pub fn act005_debug(x: u32) -> u32 {
    dbg!(x)
}
