//! Fixture full of decoys that must NOT trigger any rule: banned tokens
//! inside comments, strings, raw strings, char literals, doc examples,
//! and `#[cfg(test)]` code.

// .unwrap() and 3600.0 in a line comment are fine.
/* Block comment: q.base() and from_base(1.0) and dbg!(x).
   /* nested: todo!() */ still a comment. */

/// Doc example — `.expect("fine")` here is documentation:
///
/// ```
/// let v = Some(1).unwrap();
/// ```
pub fn decoys() -> String {
    let s = "call .unwrap() with 3600.0 then from_base(2.0)";
    let raw = r#"more decoys: .expect("x") dbg!(y) 86400.0"#;
    let lifetime: &'static str = "named lifetime, not a char literal";
    let ch = '"'; // a quote char must not open a string
    let escaped = '\''; // escaped quote char
    format!("{s}{raw}{lifetime}{ch}{escaped}")
}

pub fn try_from_base_is_fine(raw: f64) -> Result<act_units::Energy, act_units::UnitError> {
    act_units::Energy::try_from_base(raw)
}

pub fn near_miss_literals(x: f64) -> f64 {
    // Boundary checks: these contain banned digits but are different numbers.
    x * 13600.0 + 3600.05 + 1024.5
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert_eq!(Some(2).expect("present"), 2);
        let seconds_per_hour = 3600.0;
        assert!(seconds_per_hour > 0.0);
    }
}
