//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask lint              # run the ACT static-analysis rules
//! cargo xtask lint --root DIR   # lint a different checkout
//! cargo xtask bench             # wall-clock trajectory -> BENCH_results.json
//! cargo xtask bench --quick     # CI-sized run (1 repeat, small sweep)
//! cargo xtask soak              # seeded chaos run against `act serve`
//! cargo xtask loadtest          # p50/p99 latency record -> BENCH_results.json
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale allowlist entries),
//! `2` usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "xtask — ACT workspace static analysis & benchmarking\n\n\
     usage: cargo xtask lint [--root DIR]\n\
            cargo xtask bench [--root DIR] [--out FILE] [--quick] [--criterion]\n\
            cargo xtask soak [--root DIR] [--quick] [--seed N]\n\
            cargo xtask loadtest [--root DIR] [--out FILE] [--quick] [--label NAME]\n\n\
     Rules (see xtask/src/lib.rs for the catalogue):\n\
       ACT001  no `.base()` raw-f64 escape outside act-units/act-data\n\
       ACT002  no unwrap()/expect() in library code (CLI main + tests exempt)\n\
       ACT003  no unit-conversion f64 literals outside act-units/act-data\n\
       ACT004  no infallible `from_base` outside act-units/act-data\n\
       ACT005  no dbg!/todo!/unimplemented! anywhere\n\n\
     Allowlist: xtask/lint.allow, lines of\n\
       RULE|path-suffix|line-substring|justification\n\n\
     bench builds the workspace in release mode, times every experiment\n\
     via the `act` binary (best of N repeats), measures the parallel vs\n\
     --serial `act all` speedup and the naive-vs-compiled sweep\n\
     throughput, and APPENDS one timestamped record to a JSON trajectory\n\
     (default BENCH_results.json, schema act-bench-trajectory/2; a legacy\n\
     v1 file is wrapped on first append). When both the trajectory and the\n\
     new record carry a compiled points/sec reading, the run fails with\n\
     exit 2 if throughput regressed more than 30% — the record is still\n\
     appended so the regression stays visible. When the release build is\n\
     unavailable (offline), a degraded record with null timings and an\n\
     `error` field is appended instead of aborting.\n\
       --out FILE    trajectory path\n\
       --quick       1 repeat + smaller sweep (CI smoke)\n\
       --criterion   also run `cargo bench --workspace -- --test`\n\
       --label NAME  tag the appended record (e.g. a PR or commit name)\n\n\
     soak builds the workspace in release mode, starts `act serve` with a\n\
     seeded fault plan (slow reads, malformed bodies, worker panics and\n\
     kills, delays) and drives a deterministic mix of good and hostile\n\
     traffic at it, ending with a SIGTERM delivered mid-traffic. It fails\n\
     unless: every client operation completes within its timeout (zero\n\
     hangs), at least one forced panic is answered with a 500 and at least\n\
     one killed worker is respawned, the drain leaves in_flight=0 and\n\
     queued=0 with accepted == finished (zero leaked connections), and the\n\
     server exits 0.\n\
       --quick       ~80 connections instead of ~320 (CI smoke)\n\
       --seed N      master seed for the traffic mix and fault plan\n\n\
     loadtest starts a fault-free `act serve`, measures sequential\n\
     POST /v1/footprint latency (p50/p99) and request throughput after a\n\
     warmup, and APPENDS a labeled record to the same trajectory file as\n\
     bench. Loadtest records carry a `server` block instead of `compiled`\n\
     readings, so the bench throughput regression guard ignores them.\n\
       --quick       100 measured requests instead of 400\n\n\
     exit codes: 0 clean, 1 violations, 2 usage/I-O error, bench\n\
     throughput regression, or a soak/loadtest contract violation"
        .to_owned()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "-h" | "--help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "lint" => {
            let mut root = PathBuf::from(".");
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_lint(&root)
        }
        "bench" => {
            let mut config = xtask::bench::BenchConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--out" => match rest.next() {
                        Some(file) => config.out = PathBuf::from(file),
                        None => {
                            eprintln!("--out needs a file path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick(),
                    "--criterion" => config.criterion_smoke = true,
                    "--label" => match rest.next() {
                        Some(label) => config.label = Some(label),
                        None => {
                            eprintln!("--label needs a name\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_bench(&config)
        }
        "soak" => {
            let mut config = xtask::service::ServiceConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick = true,
                    "--seed" => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(seed) => config.seed = seed,
                        None => {
                            eprintln!("--seed needs an unsigned integer\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_soak(&config)
        }
        "loadtest" => {
            let mut config = xtask::service::ServiceConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--out" => match rest.next() {
                        Some(file) => config.out = PathBuf::from(file),
                        None => {
                            eprintln!("--out needs a file path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick = true,
                    "--label" => match rest.next() {
                        Some(label) => config.label = Some(label),
                        None => {
                            eprintln!("--label needs a name\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_loadtest(&config)
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_soak(config: &xtask::service::ServiceConfig) -> ExitCode {
    match xtask::service::run_soak(config) {
        Ok(report) => {
            eprintln!(
                "soak: {} connection(s) — {} ok, {} rejected, {} dropped; server caught \
                 {} panic(s), respawned {} worker(s), accepted == finished == {}; clean drain, \
                 exit 0",
                report.connections,
                report.ok_responses,
                report.error_responses,
                report.dropped,
                report.server_panics_caught,
                report.server_workers_respawned,
                report.server_finished
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("soak: FAILED — {err}");
            ExitCode::from(2)
        }
    }
}

fn run_loadtest(config: &xtask::service::ServiceConfig) -> ExitCode {
    match xtask::service::run_loadtest(config) {
        Ok(report) => {
            eprintln!(
                "loadtest: {} request(s) to /v1/footprint — p50 {:.2} ms, p99 {:.2} ms, \
                 {:.0} req/s; record appended -> {}",
                report.requests,
                report.p50_ms,
                report.p99_ms,
                report.req_per_sec,
                config.out.display()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("loadtest: FAILED — {err}");
            ExitCode::from(2)
        }
    }
}

fn run_bench(config: &xtask::bench::BenchConfig) -> ExitCode {
    let report = match xtask::bench::run_bench(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    let record = xtask::bench::render_record(&report);
    let existing = std::fs::read_to_string(&config.out).unwrap_or_default();
    let regression = xtask::bench::guard_regression(&existing, &record);
    let body = xtask::bench::append_record(&existing, &record);
    if let Err(err) = std::fs::write(&config.out, &body) {
        eprintln!("error: cannot write {}: {err}", config.out.display());
        return ExitCode::from(2);
    }
    if let Some(error) = &report.error {
        eprintln!(
            "bench: degraded run ({error}); null-timing record appended -> {} ({} record(s))",
            config.out.display(),
            xtask::bench::record_count(&body)
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "bench: {} experiment(s), `act all` speedup {:.2}x, record appended -> {} ({} record(s))",
        report.figures.len(),
        report.all_speedup(),
        config.out.display(),
        xtask::bench::record_count(&body)
    );
    if let Some((baseline, current)) = regression {
        eprintln!(
            "bench: REGRESSION — compiled sweep throughput {current:.0} points/s is below \
             {:.0}% of the trajectory baseline {baseline:.0} points/s",
            xtask::bench::GUARD_RETAIN_FRACTION * 100.0
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    let report = match xtask::lint_workspace(root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    for entry in &report.stale {
        println!(
            "xtask/lint.allow: stale entry `{}|{}|{}` matches nothing — remove it",
            entry.rule, entry.path_suffix, entry.line_substring
        );
    }
    let clean = report.findings.is_empty() && report.stale.is_empty();
    eprintln!(
        "lint: {} file(s) scanned, {} violation(s), {} suppressed, {} stale allow entr(y/ies)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.stale.len()
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
