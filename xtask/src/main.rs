//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask analyze             # run the ACT static-analysis rules
//! cargo xtask analyze --json F    # also write a machine-readable report
//! cargo xtask lint                # alias for `analyze` (the PR 2 name)
//! cargo xtask bench               # wall-clock trajectory -> BENCH_results.json
//! cargo xtask bench --quick       # CI-sized run (1 repeat, small sweep)
//! cargo xtask soak                # seeded chaos run against `act serve`
//! cargo xtask loadtest            # p50/p99 latency record -> BENCH_results.json
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale allowlist entries),
//! `2` usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "xtask — ACT workspace static analysis & benchmarking\n\n\
     usage: cargo xtask analyze [--root DIR] [--json FILE]\n\
            cargo xtask analyze --file F [--as PATH]   (one file, no allowlist)\n\
            cargo xtask lint    [--root DIR] [--json FILE]   (alias)\n\
            cargo xtask bench [--root DIR] [--out FILE] [--quick] [--criterion]\n\
            cargo xtask soak [--root DIR] [--quick] [--seed N]\n\
            cargo xtask loadtest [--root DIR] [--out FILE] [--quick] [--label NAME]\n\n\
     Rules (see crates/analyze/src/lib.rs for the catalogue):\n\
       ACT001  no `.base()` raw-f64 escape outside act-units/act-data\n\
       ACT002  no unwrap()/expect() in library code (CLI main + tests exempt)\n\
       ACT003  no unit-conversion f64 literals outside act-units/act-data\n\
       ACT004  no infallible `from_base` outside act-units/act-data\n\
       ACT005  no dbg!/todo!/unimplemented! anywhere\n\
       ACT006  JSON impl/obj! field lists must match the struct (no drift)\n\
       ACT007  no budget-blind `CompiledFootprint::eval` loops in dse/server\n\
       ACT008  no Instant/SystemTime/sleep/env reads in library crates\n\
       ACT009  no Mutex/RwLock guard held across I/O or a callback (server)\n\
       ACT010  no raw f64 comparators without total_cmp in Pareto/stats code\n\
       ACT011  no indexing/slicing/unwrap in server route handlers\n\
       ACT012  no raw thread::spawn/scope outside the act-dse worker pool\n\n\
     Allowlist: xtask/lint.allow, lines of\n\
       RULE|path-suffix|line-substring|justification\n\n\
     analyze parses every workspace source with the in-tree Rust-subset\n\
     parser and applies all twelve rules; --json FILE additionally writes\n\
     a machine-readable findings report (schema act-analyze-findings/1).\n\n\
     bench builds the workspace in release mode, times every experiment\n\
     via the `act` binary (best of N repeats), measures the parallel vs\n\
     --serial `act all` speedup and the naive-vs-compiled sweep\n\
     throughput, and APPENDS one timestamped record to a JSON trajectory\n\
     (default BENCH_results.json, schema act-bench-trajectory/2; a legacy\n\
     v1 file is wrapped on first append). When both the trajectory and the\n\
     new record carry a compiled points/sec reading, the run fails with\n\
     exit 2 if throughput regressed more than 30% — the record is still\n\
     appended so the regression stays visible. A 100k-point gate sweep\n\
     then enforces two retention gates: the block-vectorized leg\n\
     (`compiled_block`) must not lose to the per-point compiled leg on\n\
     any host, and the calibrated compiled-parallel leg must not lose to\n\
     serial: exit 2 on failure (the parallel gate soft-warns with 1\n\
     hardware thread). Outside --quick a million-point compiled sweep is recorded\n\
     too, and every run captures a 100k-sample `act fleet-bench` record\n\
     (`fleet_serial`/`fleet_parallel` throughput of the scenario fleet\n\
     Monte-Carlo, invisible to the compiled-sweep guard). When the release build is unavailable (offline), a degraded\n\
     record with null timings and an `error` field is appended instead of\n\
     aborting; a later complete run tags those records `superseded` so\n\
     trend tooling skips their null timings.\n\
       --out FILE    trajectory path\n\
       --quick       1 repeat + smaller sweep, no million-point leg (CI\n\
                     smoke; the 100k gate still runs)\n\
       --criterion   also run `cargo bench --workspace -- --test`\n\
       --label NAME  tag the appended record (e.g. a PR or commit name)\n\n\
     soak builds the workspace in release mode, starts `act serve` with a\n\
     seeded fault plan (slow reads, malformed bodies, worker panics and\n\
     kills, delays) and drives a deterministic mix of good and hostile\n\
     traffic at it — including malformed scenario/fleet documents POSTed\n\
     to /v1/scenario and /v1/fleet, which must come back as clean 400s —\n\
     ending with a SIGTERM delivered mid-traffic. It fails\n\
     unless: every client operation completes within its timeout (zero\n\
     hangs), at least one forced panic is answered with a 500 and at least\n\
     one killed worker is respawned, the drain leaves in_flight=0 and\n\
     queued=0 with accepted == finished (zero leaked connections), and the\n\
     server exits 0.\n\
       --quick       ~80 connections instead of ~320 (CI smoke)\n\
       --seed N      master seed for the traffic mix and fault plan\n\n\
     loadtest starts a fault-free `act serve`, measures sequential\n\
     POST /v1/footprint latency (p50/p99) and request throughput after a\n\
     warmup, and APPENDS a labeled record to the same trajectory file as\n\
     bench. Loadtest records carry a `server` block instead of `compiled`\n\
     readings, so the bench throughput regression guard ignores them.\n\
       --quick       100 measured requests instead of 400\n\n\
     exit codes: 0 clean, 1 violations, 2 usage/I-O error, bench\n\
     throughput regression, or a soak/loadtest contract violation"
        .to_owned()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "-h" | "--help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "analyze" | "lint" => {
            let mut root = PathBuf::from(".");
            let mut json_out: Option<PathBuf> = None;
            let mut file: Option<PathBuf> = None;
            let mut file_as: Option<String> = None;
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--json" => match rest.next() {
                        Some(file) => json_out = Some(PathBuf::from(file)),
                        None => {
                            eprintln!("--json needs a file path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--file" => match rest.next() {
                        Some(path) => file = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("--file needs a source path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--as" => match rest.next() {
                        Some(path) => file_as = Some(path),
                        None => {
                            eprintln!("--as needs a repo-relative path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            match file {
                Some(file) => run_analyze_file(&file, file_as.as_deref()),
                None => run_analyze(&root, json_out.as_deref()),
            }
        }
        "bench" => {
            let mut config = xtask::bench::BenchConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--out" => match rest.next() {
                        Some(file) => config.out = PathBuf::from(file),
                        None => {
                            eprintln!("--out needs a file path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick(),
                    "--criterion" => config.criterion_smoke = true,
                    "--label" => match rest.next() {
                        Some(label) => config.label = Some(label),
                        None => {
                            eprintln!("--label needs a name\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_bench(&config)
        }
        "soak" => {
            let mut config = xtask::service::ServiceConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick = true,
                    "--seed" => match rest.next().and_then(|s| s.parse().ok()) {
                        Some(seed) => config.seed = seed,
                        None => {
                            eprintln!("--seed needs an unsigned integer\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_soak(&config)
        }
        "loadtest" => {
            let mut config = xtask::service::ServiceConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--out" => match rest.next() {
                        Some(file) => config.out = PathBuf::from(file),
                        None => {
                            eprintln!("--out needs a file path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick = true,
                    "--label" => match rest.next() {
                        Some(label) => config.label = Some(label),
                        None => {
                            eprintln!("--label needs a name\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_loadtest(&config)
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_soak(config: &xtask::service::ServiceConfig) -> ExitCode {
    match xtask::service::run_soak(config) {
        Ok(report) => {
            eprintln!(
                "soak: {} connection(s) — {} ok, {} rejected, {} dropped; server caught \
                 {} panic(s), respawned {} worker(s), accepted == finished == {}; clean drain, \
                 exit 0",
                report.connections,
                report.ok_responses,
                report.error_responses,
                report.dropped,
                report.server_panics_caught,
                report.server_workers_respawned,
                report.server_finished
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("soak: FAILED — {err}");
            ExitCode::from(2)
        }
    }
}

fn run_loadtest(config: &xtask::service::ServiceConfig) -> ExitCode {
    match xtask::service::run_loadtest(config) {
        Ok(report) => {
            eprintln!(
                "loadtest: {} request(s) to /v1/footprint — p50 {:.2} ms, p99 {:.2} ms, \
                 {:.0} req/s; record appended -> {}",
                report.requests,
                report.p50_ms,
                report.p99_ms,
                report.req_per_sec,
                config.out.display()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("loadtest: FAILED — {err}");
            ExitCode::from(2)
        }
    }
}

fn run_bench(config: &xtask::bench::BenchConfig) -> ExitCode {
    let report = match xtask::bench::run_bench(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    let record = xtask::bench::render_record(&report);
    let mut existing = std::fs::read_to_string(&config.out).unwrap_or_default();
    if report.error.is_none() {
        // This complete run supersedes any degraded (build-unavailable)
        // records still in the trajectory: tag them so trend tooling skips
        // their null timings instead of charting them.
        existing = xtask::bench::tag_superseded_degraded(&existing);
    }
    let regression = xtask::bench::guard_regression(&existing, &record);
    let body = xtask::bench::append_record(&existing, &record);
    if let Err(err) = std::fs::write(&config.out, &body) {
        eprintln!("error: cannot write {}: {err}", config.out.display());
        return ExitCode::from(2);
    }
    if let Some(error) = &report.error {
        eprintln!(
            "bench: degraded run ({error}); null-timing record appended -> {} ({} record(s))",
            config.out.display(),
            xtask::bench::record_count(&body)
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "bench: {} experiment(s), `act all` speedup {:.2}x, record appended -> {} ({} record(s))",
        report.figures.len(),
        report.all_speedup(),
        config.out.display(),
        xtask::bench::record_count(&body)
    );
    if let Some((baseline, current)) = regression {
        eprintln!(
            "bench: REGRESSION — compiled sweep throughput {current:.0} points/s is below \
             {:.0}% of the trajectory baseline {baseline:.0} points/s",
            xtask::bench::GUARD_RETAIN_FRACTION * 100.0
        );
        return ExitCode::from(2);
    }
    // Block-path retention gate: serial vs. serial, enforced on any host.
    let block_failed = match xtask::bench::gate_block_retention(&report.sweep_gate) {
        xtask::bench::BlockGateOutcome::Pass { ratio } => {
            eprintln!(
                "bench: 100k block gate PASSED — compiled_block {ratio:.2}x per-point \
                 compiled throughput"
            );
            false
        }
        xtask::bench::BlockGateOutcome::Fail { ratio } => {
            eprintln!(
                "bench: 100k block gate FAILED — compiled_block only {ratio:.2}x per-point \
                 compiled throughput (needs >= {:.2}x); the block-vectorized path must not \
                 lose to the per-point path it replaced",
                xtask::bench::BLOCK_GATE_MIN_RATIO
            );
            true
        }
        xtask::bench::BlockGateOutcome::Unreadable => {
            eprintln!(
                "bench: 100k block gate UNREADABLE (warning) — the gate sweep record \
                 carried no compiled / compiled_block throughputs"
            );
            false
        }
    };
    let parallel_failed = match xtask::bench::gate_parallel_win(&report.sweep_gate) {
        xtask::bench::GateOutcome::Pass { speedup, threads } => {
            eprintln!(
                "bench: 100k parallel gate PASSED — compiled parallel {speedup:.2}x serial \
                 on {threads} worker(s)"
            );
            false
        }
        xtask::bench::GateOutcome::SingleCore { machine } => {
            eprintln!(
                "bench: 100k parallel gate SKIPPED (warning) — {machine} hardware thread(s); \
                 parallel cannot win on this host, rerun on >= 2 cores to enforce it"
            );
            false
        }
        xtask::bench::GateOutcome::Fail { speedup, threads } => {
            eprintln!(
                "bench: 100k parallel gate FAILED — compiled parallel only {speedup:.2}x \
                 serial on {threads} worker(s) (needs >= {:.2}x); the calibrated engine \
                 must not lose to serial at this size",
                xtask::bench::GATE_MIN_SPEEDUP
            );
            true
        }
        xtask::bench::GateOutcome::Unreadable => {
            eprintln!(
                "bench: 100k parallel gate UNREADABLE (warning) — the gate sweep record \
                 carried no compiled serial/parallel timings"
            );
            false
        }
    };
    if block_failed || parallel_failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// `analyze --file F [--as PATH]`: run the full rule catalogue over one
/// file, classifying it as `PATH` for the path-scoped rules. No allowlist
/// is applied — this mode exists for fixtures and ad-hoc rule debugging.
fn run_analyze_file(file: &std::path::Path, file_as: Option<&str>) -> ExitCode {
    let src = match std::fs::read_to_string(file) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", file.display());
            return ExitCode::from(2);
        }
    };
    let path =
        file_as.map(str::to_owned).unwrap_or_else(|| file.to_string_lossy().into_owned());
    let findings = xtask::analyze_source(&path, &src);
    for finding in &findings {
        println!("{finding}");
    }
    eprintln!("analyze: 1 file scanned (as `{path}`), {} violation(s)", findings.len());
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_analyze(root: &std::path::Path, json_out: Option<&std::path::Path>) -> ExitCode {
    let report = match xtask::analyze_workspace(root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    for entry in &report.stale {
        println!(
            "xtask/lint.allow: stale entry `{}|{}|{}` matches nothing — remove it",
            entry.rule, entry.path_suffix, entry.line_substring
        );
    }
    if let Some(path) = json_out {
        let body = xtask::render_json_report(&report);
        if let Err(err) = std::fs::write(path, body) {
            eprintln!("error: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    let clean = report.findings.is_empty() && report.stale.is_empty();
    eprintln!(
        "analyze: {} file(s) scanned, {} violation(s), {} suppressed, {} stale allow \
         entr(y/ies), {} parse recover(y/ies)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.stale.len(),
        report.parse_recoveries
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
