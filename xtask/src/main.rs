//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask lint              # run the ACT static-analysis rules
//! cargo xtask lint --root DIR   # lint a different checkout
//! cargo xtask bench             # wall-clock trajectory -> BENCH_results.json
//! cargo xtask bench --quick     # CI-sized run (1 repeat, small sweep)
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale allowlist entries),
//! `2` usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "xtask — ACT workspace static analysis & benchmarking\n\n\
     usage: cargo xtask lint [--root DIR]\n\
            cargo xtask bench [--root DIR] [--out FILE] [--quick] [--criterion]\n\n\
     Rules (see xtask/src/lib.rs for the catalogue):\n\
       ACT001  no `.base()` raw-f64 escape outside act-units/act-data\n\
       ACT002  no unwrap()/expect() in library code (CLI main + tests exempt)\n\
       ACT003  no unit-conversion f64 literals outside act-units/act-data\n\
       ACT004  no infallible `from_base` outside act-units/act-data\n\
       ACT005  no dbg!/todo!/unimplemented! anywhere\n\n\
     Allowlist: xtask/lint.allow, lines of\n\
       RULE|path-suffix|line-substring|justification\n\n\
     bench builds the workspace in release mode, times every experiment\n\
     via the `act` binary (best of N repeats), measures the parallel vs\n\
     --serial `act all` speedup and sweep throughput, and writes\n\
     machine-readable JSON (default BENCH_results.json).\n\
       --out FILE    output path\n\
       --quick       1 repeat + smaller sweep (CI smoke)\n\
       --criterion   also run `cargo bench --workspace -- --test`\n\n\
     exit codes: 0 clean, 1 violations, 2 usage/I-O error"
        .to_owned()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "-h" | "--help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "lint" => {
            let mut root = PathBuf::from(".");
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_lint(&root)
        }
        "bench" => {
            let mut config = xtask::bench::BenchConfig::new(PathBuf::from("."));
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => config.root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--out" => match rest.next() {
                        Some(file) => config.out = PathBuf::from(file),
                        None => {
                            eprintln!("--out needs a file path\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    "--quick" => config.quick(),
                    "--criterion" => config.criterion_smoke = true,
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_bench(&config)
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_bench(config: &xtask::bench::BenchConfig) -> ExitCode {
    let report = match xtask::bench::run_bench(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    let body = xtask::bench::render_report(&report);
    if let Err(err) = std::fs::write(&config.out, &body) {
        eprintln!("error: cannot write {}: {err}", config.out.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "bench: {} experiment(s), `act all` speedup {:.2}x, report -> {}",
        report.figures.len(),
        report.all_speedup(),
        config.out.display()
    );
    ExitCode::SUCCESS
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    let report = match xtask::lint_workspace(root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    for entry in &report.stale {
        println!(
            "xtask/lint.allow: stale entry `{}|{}|{}` matches nothing — remove it",
            entry.rule, entry.path_suffix, entry.line_substring
        );
    }
    let clean = report.findings.is_empty() && report.stale.is_empty();
    eprintln!(
        "lint: {} file(s) scanned, {} violation(s), {} suppressed, {} stale allow entr(y/ies)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.stale.len()
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
