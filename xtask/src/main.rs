//! `cargo xtask` — workspace maintenance commands.
//!
//! ```text
//! cargo xtask lint              # run the ACT static-analysis rules
//! cargo xtask lint --root DIR   # lint a different checkout
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or stale allowlist entries),
//! `2` usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "xtask — ACT workspace static analysis\n\n\
     usage: cargo xtask lint [--root DIR]\n\n\
     Rules (see xtask/src/lib.rs for the catalogue):\n\
       ACT001  no `.base()` raw-f64 escape outside act-units/act-data\n\
       ACT002  no unwrap()/expect() in library code (CLI main + tests exempt)\n\
       ACT003  no unit-conversion f64 literals outside act-units/act-data\n\
       ACT004  no infallible `from_base` outside act-units/act-data\n\
       ACT005  no dbg!/todo!/unimplemented! anywhere\n\n\
     Allowlist: xtask/lint.allow, lines of\n\
       RULE|path-suffix|line-substring|justification\n\n\
     exit codes: 0 clean, 1 violations, 2 usage/I-O error"
        .to_owned()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "-h" | "--help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "lint" => {
            let mut root = PathBuf::from(".");
            let mut rest = args;
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--root" => match rest.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{}", usage());
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("unknown argument `{other}`\n\n{}", usage());
                        return ExitCode::from(2);
                    }
                }
            }
            run_lint(&root)
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    let report = match xtask::lint_workspace(root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    for entry in &report.stale {
        println!(
            "xtask/lint.allow: stale entry `{}|{}|{}` matches nothing — remove it",
            entry.rule, entry.path_suffix, entry.line_substring
        );
    }
    let clean = report.findings.is_empty() && report.stale.is_empty();
    eprintln!(
        "lint: {} file(s) scanned, {} violation(s), {} suppressed, {} stale allow entr(y/ies)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.stale.len()
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
