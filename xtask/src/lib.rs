//! Project-specific static analysis and service harnesses for the ACT
//! workspace.
//!
//! The analysis engine lives in the std-only, dependency-free
//! [`act_analyze`] crate: a Rust-subset recursive-descent parser plus the
//! rule catalogue ACT001–ACT012 (textual token rules and AST/dataflow
//! rules — see `crates/analyze/src/lib.rs` for the table). This crate
//! re-exports the engine under the names the original `cargo xtask lint`
//! harness established, and adds the bench/soak/loadtest machinery that
//! drives the built workspace.
//!
//! Vetted exceptions go in `xtask/lint.allow`, one per line:
//! `RULE|path-suffix|line-substring|justification` — the justification is
//! mandatory, and every entry that no longer matches anything is reported
//! in a single run so the allowlist cannot rot.

pub use act_analyze::{
    analyze_source, analyze_workspace, apply_allowlist, collect_workspace_files,
    parse_allowlist, render_json_report, AllowEntry, AnalyzeReport, Finding, LintError,
};

// The PR 2 names, kept so existing tooling and tests keep working: `lint_*`
// now runs the full ACT001–ACT012 catalogue, not just the textual tier.
pub use act_analyze::analyze_source as lint_source;
pub use act_analyze::analyze_workspace as lint_workspace;
pub use act_analyze::lexer::scrub;
pub use act_analyze::test_regions;
pub use act_analyze::AnalyzeReport as LintReport;

pub mod bench;
pub mod service;
