//! Project-specific static analysis for the ACT workspace.
//!
//! The rules enforced here are ones `clippy` cannot express because they
//! depend on project conventions — which crates own the raw-`f64`
//! boundary, where paper constants may live, and which code is allowed to
//! panic. The checker is deliberately dependency-free: sources are scanned
//! with a small hand-rolled lexer that blanks comments and string/char
//! literals (preserving byte offsets), so rule matching never fires inside
//! a comment, doc example, or string.
//!
//! # Rule catalogue
//!
//! | ID | Rule | Exempt |
//! |----|------|--------|
//! | ACT001 | no `.base()` raw-`f64` escape of a quantity | `act-units`, `act-data`, tests |
//! | ACT002 | no `.unwrap()` / `.expect(...)` in library code | CLI binary, tests |
//! | ACT003 | no paper/unit-conversion `f64` literals | `act-units`, `act-data`, tests |
//! | ACT004 | no infallible `from_base` construction | `act-units`, `act-data`, tests |
//! | ACT005 | no `dbg!` / `todo!` / `unimplemented!` | nothing |
//!
//! Vetted exceptions go in `xtask/lint.allow`, one per line:
//! `RULE|path-suffix|line-substring|justification` — the justification is
//! mandatory, and entries that no longer match anything are themselves
//! reported so the allowlist cannot rot.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod bench;
pub mod service;

/// One rule violation at a source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-indexed line of the match.
    pub line: usize,
    /// 1-indexed byte column of the match.
    pub col: usize,
    /// Rule ID, e.g. `"ACT002"`.
    pub rule: &'static str,
    /// Human-readable explanation of the rule.
    pub message: &'static str,
    /// The full source line the match sits on (for allowlist matching).
    pub line_text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// A parsed `RULE|path-suffix|line-substring|justification` allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID this entry suppresses.
    pub rule: String,
    /// Suffix the finding's path must end with.
    pub path_suffix: String,
    /// Substring the finding's source line must contain.
    pub line_substring: String,
    /// Why the exception is acceptable (mandatory).
    pub justification: String,
}

/// Errors from loading or using the harness (exit code 2 territory).
#[derive(Debug)]
pub enum LintError {
    /// An allowlist line did not have four non-empty `|`-separated fields.
    MalformedAllowEntry {
        /// 1-indexed line in the allowlist file.
        line: usize,
        /// The offending raw line.
        text: String,
    },
    /// Filesystem error while walking or reading sources.
    Io(std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MalformedAllowEntry { line, text } => write!(
                f,
                "lint.allow:{line}: malformed entry `{text}` \
                 (expected RULE|path-suffix|line-substring|justification)"
            ),
            Self::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<std::io::Error> for LintError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

// ---------------------------------------------------------------------------
// Lexer: blank out comments and string/char literals, preserving offsets.
// ---------------------------------------------------------------------------

/// Returns a copy of `src` where every comment and every string, raw
/// string, byte string and char literal is replaced by spaces (newlines
/// kept), so byte offsets and line numbers still line up with the input.
#[must_use]
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        blank2(&mut out, &mut i, b);
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        blank2(&mut out, &mut i, b);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                i = blank_raw_string(&mut out, b, i);
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' && !prev_is_ident(b, i) => {
                out[i] = b' ';
                i = blank_quoted(&mut out, b, i + 1);
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' && !prev_is_ident(b, i) => {
                out[i] = b' ';
                i = blank_char_literal(&mut out, b, i + 1);
            }
            b'"' => {
                i = blank_quoted(&mut out, b, i);
            }
            b'\'' if is_char_literal(b, i) => {
                i = blank_char_literal(&mut out, b, i);
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

fn blank2(out: &mut [u8], i: &mut usize, b: &[u8]) {
    for _ in 0..2 {
        if *i < b.len() {
            if b[*i] != b'\n' {
                out[*i] = b' ';
            }
            *i += 1;
        }
    }
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// `r"`, `r#"`, `br"`, `br#"` … (any number of `#`).
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    if prev_is_ident(b, i) {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn blank_raw_string(out: &mut [u8], b: &[u8], start: usize) -> usize {
    let mut i = start;
    if b[i] == b'b' {
        out[i] = b' ';
        i += 1;
    }
    out[i] = b' '; // the `r`
    i += 1;
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        out[i] = b' ';
        hashes += 1;
        i += 1;
    }
    out[i] = b' '; // opening quote
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let close = &b[i + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&c| c == b'#') {
                for k in i..=i + hashes {
                    out[k] = b' ';
                }
                return i + hashes + 1;
            }
        }
        if b[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

fn blank_quoted(out: &mut [u8], b: &[u8], start: usize) -> usize {
    let mut i = start;
    out[i] = b' '; // opening quote
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                out[i] = b' ';
                if i + 1 < b.len() && b[i + 1] != b'\n' {
                    out[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Distinguishes `'a'` / `'\n'` (char literals) from `'static` (lifetimes).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // `'X'` with exactly one character between the quotes.
    i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\''
}

fn blank_char_literal(out: &mut [u8], b: &[u8], start: usize) -> usize {
    let mut i = start;
    out[i] = b' ';
    i += 1;
    if i < b.len() && b[i] == b'\\' {
        out[i] = b' ';
        i += 1;
        if i < b.len() {
            out[i] = b' ';
            i += 1;
        }
        // multi-byte escapes like \u{1F600} or \x7f
        while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
            out[i] = b' ';
            i += 1;
        }
    } else if i < b.len() {
        out[i] = b' ';
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        out[i] = b' ';
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region tracking.
// ---------------------------------------------------------------------------

/// Byte ranges of `#[cfg(test)]` items in scrubbed source: from the
/// attribute to the matching close brace of the item it gates (or to the
/// terminating `;` for brace-less items like `use`).
#[must_use]
pub fn test_regions(scrubbed: &str) -> Vec<(usize, usize)> {
    let b = scrubbed.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find("#[cfg(test)]") {
        let start = from + pos;
        let mut i = start + "#[cfg(test)]".len();
        let mut depth = 0usize;
        let end = loop {
            if i >= b.len() {
                break b.len();
            }
            match b[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break i + 1;
                    }
                }
                b';' if depth == 0 => break i + 1,
                _ => {}
            }
            i += 1;
        };
        regions.push((start, end));
        from = end;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset < e)
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

/// Crates that own the raw-`f64` boundary and the paper constants.
fn is_unit_home(path: &str) -> bool {
    path.starts_with("crates/units/") || path.starts_with("crates/data/")
}

/// The CLI binary is allowed to panic at top level (ACT002 exemption).
fn is_cli_binary(path: &str) -> bool {
    path.starts_with("crates/cli/src/")
}

/// Unit-conversion / paper constants that must come from the named
/// constants in `act-units` / `act-data` instead of being retyped.
const BANNED_LITERALS: [&str; 7] =
    ["3600.0", "86400.0", "31536000.0", "3.6e6", "3.6e+6", "8760.0", "1024.0"];

const MSG_ACT001: &str = "`.base()` escapes the typed-unit layer; \
     use a named `as_*` accessor or keep the arithmetic in `Quantity` space";
const MSG_ACT002: &str = "`unwrap()`/`expect()` in library code; \
     return an error (`UnitError` taxonomy) or use a checked fallback";
const MSG_ACT003: &str = "unit-conversion constant retyped as a literal; \
     use the named constant from `act-units`/`act-data`";
const MSG_ACT004: &str = "infallible `from_base` outside the unit-definition crates; \
     use `try_from_base` at model boundaries";
const MSG_ACT005: &str = "debug/stub macro left in source";

/// Lints one file. `path` is the repo-relative path used for both crate
/// classification and reporting; `src` is the file contents.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let scrubbed = scrub(src);
    let tests = test_regions(&scrubbed);
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    let mut emit = |offset: usize, rule: &'static str, message: &'static str| {
        let line = scrubbed[..offset].bytes().filter(|&c| c == b'\n').count() + 1;
        let col = offset - scrubbed[..offset].rfind('\n').map_or(0, |p| p + 1) + 1;
        findings.push(Finding {
            path: path.to_owned(),
            line,
            col,
            rule,
            message,
            line_text: lines.get(line - 1).copied().unwrap_or_default().to_owned(),
        });
    };

    let unit_home = is_unit_home(path);
    let cli = is_cli_binary(path);

    for (offset, token) in token_matches(&scrubbed, ".base()") {
        if !unit_home && !in_regions(&tests, offset) {
            emit(offset + token, "ACT001", MSG_ACT001);
        }
    }
    for needle in [".unwrap()", ".expect("] {
        for (offset, token) in token_matches(&scrubbed, needle) {
            if !cli && !in_regions(&tests, offset) {
                emit(offset + token, "ACT002", MSG_ACT002);
            }
        }
    }
    if !unit_home {
        for lit in BANNED_LITERALS {
            for offset in literal_matches(&scrubbed, lit) {
                if !in_regions(&tests, offset) {
                    emit(offset, "ACT003", MSG_ACT003);
                }
            }
        }
        for offset in ident_matches(&scrubbed, "from_base(") {
            if !in_regions(&tests, offset) {
                emit(offset, "ACT004", MSG_ACT004);
            }
        }
    }
    for needle in ["dbg!(", "todo!(", "unimplemented!("] {
        for offset in ident_matches(&scrubbed, needle) {
            emit(offset, "ACT005", MSG_ACT005);
        }
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Occurrences of a `.`-prefixed call token. Returns `(offset, 1)` so the
/// reported column points at the method name, not the dot.
fn token_matches(scrubbed: &str, needle: &str) -> Vec<(usize, usize)> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find(needle) {
        hits.push((from + pos, 1));
        from += pos + needle.len();
    }
    hits
}

/// Occurrences of `needle` not preceded by an identifier character (so
/// `try_from_base(` never matches a search for `from_base(`).
fn ident_matches(scrubbed: &str, needle: &str) -> Vec<usize> {
    let b = scrubbed.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find(needle) {
        let at = from + pos;
        if !prev_is_ident(b, at) && (at == 0 || b[at - 1] != b'.') {
            hits.push(at);
        }
        from = at + needle.len();
    }
    hits
}

/// Occurrences of a numeric literal with no digit/ident/`.` on either side
/// (`13600.0` and `3600.05` both miss a search for `3600.0`).
fn literal_matches(scrubbed: &str, lit: &str) -> Vec<usize> {
    let b = scrubbed.as_bytes();
    let boundary = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c == b'.';
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find(lit) {
        let at = from + pos;
        let end = at + lit.len();
        let ok_before = at == 0 || !boundary(b[at - 1]);
        let ok_after = end >= b.len() || !boundary(b[end]);
        if ok_before && ok_after {
            hits.push(at);
        }
        from = at + lit.len();
    }
    hits
}

// ---------------------------------------------------------------------------
// Allowlist.
// ---------------------------------------------------------------------------

/// Parses allowlist text (`#` comments and blank lines skipped).
///
/// # Errors
///
/// Returns [`LintError::MalformedAllowEntry`] for a line without four
/// non-empty `|`-separated fields — the justification is not optional.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, LintError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if fields.len() != 4 || fields.iter().any(|f| f.is_empty()) {
            return Err(LintError::MalformedAllowEntry { line: idx + 1, text: raw.to_owned() });
        }
        entries.push(AllowEntry {
            rule: fields[0].to_owned(),
            path_suffix: fields[1].to_owned(),
            line_substring: fields[2].to_owned(),
            justification: fields[3].to_owned(),
        });
    }
    Ok(entries)
}

/// Splits findings into (kept, suppressed) and reports stale entries that
/// matched nothing — a stale allowlist is itself a lint failure.
#[must_use]
pub fn apply_allowlist(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<AllowEntry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for finding in findings {
        let hit = entries.iter().position(|e| {
            e.rule == finding.rule
                && finding.path.ends_with(&e.path_suffix)
                && finding.line_text.contains(&e.line_substring)
        });
        match hit {
            Some(idx) => {
                used[idx] = true;
                suppressed.push(finding);
            }
            None => kept.push(finding),
        }
    }
    let stale =
        entries.iter().zip(&used).filter(|(_, u)| !**u).map(|(e, _)| e.clone()).collect();
    (kept, suppressed, stale)
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Collects every workspace source file to lint, repo-relative and sorted:
/// `crates/*/src/**/*.rs` plus `crates/*/benches/**/*.rs`.
///
/// # Errors
///
/// Returns [`LintError::Io`] on filesystem errors.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let krate = entry?.path();
        for sub in ["src", "benches"] {
            let dir = krate.join(sub);
            if dir.is_dir() {
                walk_rs(&dir, &mut files)?;
            }
        }
    }
    for file in &mut files {
        if let Ok(rel) = file.strip_prefix(root) {
            *file = rel.to_path_buf();
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Outcome of a full workspace lint run.
pub struct LintReport {
    /// Violations after allowlisting, in path/line order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the allowlist.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched nothing.
    pub stale: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints the whole workspace under `root`, applying `root/xtask/lint.allow`
/// if present.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failures or a malformed allowlist.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let allow_path = root.join("xtask").join("lint.allow");
    let entries = if allow_path.is_file() {
        parse_allowlist(&std::fs::read_to_string(&allow_path)?)?
    } else {
        Vec::new()
    };
    let files = collect_workspace_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let display = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&display, &src));
    }
    let files_scanned = files.len();
    let (kept, suppressed, stale) = apply_allowlist(findings, &entries);
    Ok(LintReport { findings: kept, suppressed, stale, files_scanned })
}
