//! `cargo xtask bench` — the bench-trajectory harness.
//!
//! Builds the workspace in release mode, times every paper artifact
//! through the `act` binary, measures the parallel-vs-serial `act all`
//! speedup and the synthetic sweep throughput (`act bench-sweep`), and
//! writes the lot as machine-readable JSON (default `BENCH_results.json`)
//! so successive commits leave a comparable performance trajectory.
//!
//! The harness shells out to `cargo`/`act` but renders its report with a
//! tiny hand-rolled JSON writer: xtask stays dependency-free.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// What to run and where to put the report.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Workspace root (where `Cargo.toml` and `target/` live).
    pub root: PathBuf,
    /// Output path for the JSON report.
    pub out: PathBuf,
    /// Timing repeats per artifact; the best (minimum) wall-clock wins.
    pub repeats: usize,
    /// Point count handed to `act bench-sweep`.
    pub sweep_points: usize,
    /// Also run `cargo bench --workspace -- --test` as a smoke pass.
    pub criterion_smoke: bool,
}

impl BenchConfig {
    /// The standard configuration rooted at `root`.
    #[must_use]
    pub fn new(root: PathBuf) -> Self {
        Self {
            root,
            out: PathBuf::from("BENCH_results.json"),
            repeats: 3,
            sweep_points: 10_000,
            criterion_smoke: false,
        }
    }

    /// CI-friendly variant: single repeat, smaller sweep.
    pub fn quick(&mut self) {
        self.repeats = 1;
        self.sweep_points = 2_000;
    }
}

/// Wall-clock timings for one run of the harness.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Release-build time in milliseconds (0 when already warm).
    pub build_ms: f64,
    /// Best-of-N milliseconds per concrete experiment, in `act list` order.
    pub figures: Vec<(String, f64)>,
    /// Best-of-N milliseconds for parallel `act all`.
    pub all_parallel_ms: f64,
    /// Best-of-N milliseconds for `act all --serial`.
    pub all_serial_ms: f64,
    /// Raw JSON line captured from `act bench-sweep` (verbatim).
    pub sweep: String,
    /// Whether the criterion smoke pass ran and succeeded (None = skipped).
    pub criterion_ok: Option<bool>,
    /// Timing repeats used.
    pub repeats: usize,
}

impl BenchReport {
    /// Serial wall-clock over parallel wall-clock for `act all`.
    #[must_use]
    pub fn all_speedup(&self) -> f64 {
        if self.all_parallel_ms > 0.0 {
            self.all_serial_ms / self.all_parallel_ms
        } else {
            0.0
        }
    }

    /// Sum of the per-figure best times — the serial lower bound for `all`.
    #[must_use]
    pub fn figure_total_ms(&self) -> f64 {
        self.figures.iter().map(|(_, ms)| ms).sum()
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a millisecond reading with fixed (3-decimal) precision so
/// reports diff cleanly across commits.
fn json_ms(ms: f64) -> String {
    if ms.is_finite() {
        format!("{ms:.3}")
    } else {
        "null".to_owned()
    }
}

/// Renders the report as pretty-printed JSON. The `sweep` field is spliced
/// in verbatim (it is already a JSON object emitted by `act bench-sweep`);
/// an empty capture renders as `null`.
#[must_use]
pub fn render_report(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"act-bench-trajectory/1\",");
    let _ = writeln!(out, "  \"repeats\": {},", report.repeats);
    let _ = writeln!(out, "  \"build_ms\": {},", json_ms(report.build_ms));
    out.push_str("  \"figures\": {\n");
    for (i, (id, ms)) in report.figures.iter().enumerate() {
        let comma = if i + 1 == report.figures.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {}{comma}", json_escape(id), json_ms(*ms));
    }
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"figure_total_ms\": {},", json_ms(report.figure_total_ms()));
    out.push_str("  \"all\": {\n");
    let _ = writeln!(out, "    \"parallel_ms\": {},", json_ms(report.all_parallel_ms));
    let _ = writeln!(out, "    \"serial_ms\": {},", json_ms(report.all_serial_ms));
    let _ = writeln!(out, "    \"speedup\": {}", json_ms(report.all_speedup()));
    out.push_str("  },\n");
    let sweep = report.sweep.trim();
    if sweep.is_empty() {
        out.push_str("  \"sweep\": null,\n");
    } else {
        let _ = writeln!(out, "  \"sweep\": {sweep},");
    }
    match report.criterion_ok {
        None => out.push_str("  \"criterion_smoke\": null\n"),
        Some(ok) => {
            let _ = writeln!(out, "  \"criterion_smoke\": {ok}");
        }
    }
    out.push_str("}\n");
    out
}

/// Milliseconds elapsed while running `f`.
fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs a command with output discarded; `Ok(())` iff it exited zero.
fn run_silent(cmd: &mut Command) -> Result<(), String> {
    let label = format!("{cmd:?}");
    let status = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map_err(|e| format!("failed to spawn {label}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{label} exited with {status}"))
    }
}

/// Runs a command capturing stdout; `Ok(stdout)` iff it exited zero.
fn run_capture(cmd: &mut Command) -> Result<String, String> {
    let label = format!("{cmd:?}");
    let output = cmd
        .stderr(Stdio::null())
        .output()
        .map_err(|e| format!("failed to spawn {label}: {e}"))?;
    if output.status.success() {
        String::from_utf8(output.stdout).map_err(|e| format!("{label}: non-UTF-8 stdout: {e}"))
    } else {
        Err(format!("{label} exited with {}", output.status))
    }
}

/// Path to the release `act` binary under `root`.
fn act_binary(root: &Path) -> PathBuf {
    root.join("target").join("release").join("act")
}

/// Best-of-`repeats` wall-clock for one `act` invocation.
fn best_act_ms(root: &Path, args: &[&str], repeats: usize) -> Result<f64, String> {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let (ms, result) = time_ms(|| run_silent(Command::new(act_binary(root)).args(args)));
        result?;
        best = best.min(ms);
    }
    Ok(best)
}

/// Runs the full harness: build, per-figure timings, `all` speedup, sweep
/// probe, optional criterion smoke. Returns the report without writing it.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport, String> {
    let root = &config.root;
    let (build_ms, built) = time_ms(|| {
        run_silent(Command::new("cargo").args(["build", "--release"]).current_dir(root))
    });
    built?;

    let listing = run_capture(Command::new(act_binary(root)).arg("list"))?;
    let ids: Vec<String> = listing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "all")
        .map(str::to_owned)
        .collect();
    if ids.is_empty() {
        return Err("`act list` reported no experiments".to_owned());
    }

    let mut figures = Vec::with_capacity(ids.len());
    for id in &ids {
        let ms = best_act_ms(root, &[id.as_str()], config.repeats)?;
        figures.push((id.clone(), ms));
    }

    let all_parallel_ms = best_act_ms(root, &["all"], config.repeats)?;
    let all_serial_ms = best_act_ms(root, &["all", "--serial"], config.repeats)?;

    let points = config.sweep_points.to_string();
    let sweep = run_capture(Command::new(act_binary(root)).args(["bench-sweep", &points]))?;

    let criterion_ok = if config.criterion_smoke {
        Some(
            run_silent(
                Command::new("cargo")
                    .args(["bench", "--workspace", "--", "--test"])
                    .current_dir(root),
            )
            .is_ok(),
        )
    } else {
        None
    };

    Ok(BenchReport {
        build_ms,
        figures,
        all_parallel_ms,
        all_serial_ms,
        sweep,
        criterion_ok,
        repeats: config.repeats.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            build_ms: 1234.5678,
            figures: vec![("fig1".to_owned(), 10.0), ("table5-11".to_owned(), 2.5)],
            all_parallel_ms: 40.0,
            all_serial_ms: 100.0,
            sweep: "{\"points\":100,\"speedup\":2.0}\n".to_owned(),
            criterion_ok: Some(true),
            repeats: 3,
        }
    }

    #[test]
    fn speedup_is_serial_over_parallel() {
        assert!((sample_report().all_speedup() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_of_degenerate_timing_is_zero_not_nan() {
        let mut r = sample_report();
        r.all_parallel_ms = 0.0;
        assert_eq!(r.all_speedup(), 0.0);
    }

    #[test]
    fn figure_total_sums_entries() {
        assert!((sample_report().figure_total_ms() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn report_renders_all_sections() {
        let text = render_report(&sample_report());
        for needle in [
            "\"schema\": \"act-bench-trajectory/1\"",
            "\"repeats\": 3",
            "\"fig1\": 10.000",
            "\"table5-11\": 2.500",
            "\"figure_total_ms\": 12.500",
            "\"parallel_ms\": 40.000",
            "\"serial_ms\": 100.000",
            "\"speedup\": 2.500",
            "\"sweep\": {\"points\":100,\"speedup\":2.0}",
            "\"criterion_smoke\": true",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn empty_sweep_capture_renders_null() {
        let mut r = sample_report();
        r.sweep = String::new();
        r.criterion_ok = None;
        let text = render_report(&r);
        assert!(text.contains("\"sweep\": null"));
        assert!(text.contains("\"criterion_smoke\": null"));
    }

    #[test]
    fn non_finite_timings_render_null_not_inf() {
        let mut r = sample_report();
        r.all_parallel_ms = f64::INFINITY;
        let text = render_report(&r);
        assert!(text.contains("\"parallel_ms\": null"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn quick_mode_shrinks_the_run() {
        let mut config = BenchConfig::new(PathBuf::from("."));
        config.quick();
        assert_eq!(config.repeats, 1);
        assert!(config.sweep_points < 10_000);
    }

    #[test]
    fn last_figure_entry_has_no_trailing_comma() {
        let text = render_report(&sample_report());
        let figures_block =
            text.split("\"figures\": {").nth(1).and_then(|s| s.split('}').next()).unwrap();
        let last_entry = figures_block.trim_end().lines().last().unwrap();
        assert!(!last_entry.trim_end().ends_with(','), "trailing comma in:\n{figures_block}");
    }
}
