//! `cargo xtask bench` — the bench-trajectory harness.
//!
//! Builds the workspace in release mode, times every paper artifact
//! through the `act` binary, measures the parallel-vs-serial `act all`
//! speedup and the sweep throughput (`act bench-sweep`, including the
//! naive-vs-compiled model kernel A/B), and **appends** the lot as one
//! timestamped record to a machine-readable JSON trajectory (default
//! `BENCH_results.json`, schema `act-bench-trajectory/2`) so successive
//! commits accumulate a comparable performance history instead of
//! overwriting it. A legacy single-record `act-bench-trajectory/1` file is
//! wrapped into the trajectory on first append.
//!
//! When the trajectory already carries a compiled-kernel throughput
//! reading, the harness doubles as a **regression guard**: a new record
//! whose compiled points/sec drops below 70 % of the last committed one
//! fails the run with exit code 2 (the record is still appended, so the
//! regression itself is visible in the trajectory).
//!
//! Environments that cannot build the workspace (e.g. offline CI without a
//! registry mirror) degrade gracefully: the harness appends a record whose
//! timings are `null` and whose `error` field says why, instead of
//! aborting with nothing written.
//!
//! The harness shells out to `cargo`/`act` but renders its report with a
//! tiny hand-rolled JSON writer: xtask stays dependency-free.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// What to run and where to put the report.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Workspace root (where `Cargo.toml` and `target/` live).
    pub root: PathBuf,
    /// Output path for the JSON trajectory.
    pub out: PathBuf,
    /// Timing repeats per artifact; the best (minimum) wall-clock wins.
    pub repeats: usize,
    /// Point count handed to `act bench-sweep`.
    pub sweep_points: usize,
    /// Point count for the parallel-must-win gate sweep (see
    /// [`gate_parallel_win`]). Runs in every mode, `--quick` included.
    pub gate_points: usize,
    /// Also run `act bench-sweep --million` (skipped by `--quick`).
    pub million: bool,
    /// Also run `cargo bench --workspace -- --test` as a smoke pass.
    pub criterion_smoke: bool,
    /// Optional human-readable tag stored in the appended record.
    pub label: Option<String>,
}

impl BenchConfig {
    /// The standard configuration rooted at `root`.
    #[must_use]
    pub fn new(root: PathBuf) -> Self {
        Self {
            root,
            out: PathBuf::from("BENCH_results.json"),
            repeats: 3,
            sweep_points: 10_000,
            gate_points: 100_000,
            million: true,
            criterion_smoke: false,
            label: None,
        }
    }

    /// CI-friendly variant: single repeat, smaller sweep, no million-point
    /// leg. The 100k parallel-win gate still runs (it soft-fails on a
    /// single-core host, so CI smoke keeps it).
    pub fn quick(&mut self) {
        self.repeats = 1;
        self.sweep_points = 2_000;
        self.million = false;
    }
}

/// Wall-clock timings for one run of the harness.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Release-build time in milliseconds (0 when already warm).
    pub build_ms: f64,
    /// Best-of-N milliseconds per concrete experiment, in `act list` order.
    pub figures: Vec<(String, f64)>,
    /// Best-of-N milliseconds for parallel `act all`.
    pub all_parallel_ms: f64,
    /// Best-of-N milliseconds for `act all --serial`.
    pub all_serial_ms: f64,
    /// Raw JSON line captured from `act bench-sweep` (verbatim).
    pub sweep: String,
    /// Raw JSON from the [`BenchConfig::gate_points`] gate sweep
    /// (empty on a degraded run → rendered `null`).
    pub sweep_gate: String,
    /// Raw JSON from `act bench-sweep --million` (empty when skipped).
    pub sweep_million: String,
    /// Raw JSON from `act fleet-bench` — the scenario fleet Monte-Carlo
    /// throughput probe (empty on a degraded run → rendered `null`). Its
    /// keys deliberately avoid the exact `"compiled"` key the regression
    /// guard scrapes for.
    pub fleet: String,
    /// Whether the criterion smoke pass ran and succeeded (None = skipped).
    pub criterion_ok: Option<bool>,
    /// Timing repeats used.
    pub repeats: usize,
    /// Optional tag from [`BenchConfig::label`].
    pub label: Option<String>,
    /// Seconds since the Unix epoch when the run started.
    pub unix_time: u64,
    /// Why the run degraded (e.g. the release build was unavailable);
    /// `None` for a complete run.
    pub error: Option<String>,
}

impl BenchReport {
    /// Serial wall-clock over parallel wall-clock for `act all`.
    #[must_use]
    pub fn all_speedup(&self) -> f64 {
        if self.all_parallel_ms > 0.0 {
            self.all_serial_ms / self.all_parallel_ms
        } else {
            0.0
        }
    }

    /// Sum of the per-figure best times — the serial lower bound for `all`.
    #[must_use]
    pub fn figure_total_ms(&self) -> f64 {
        self.figures.iter().map(|(_, ms)| ms).sum()
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a millisecond reading with fixed (3-decimal) precision so
/// reports diff cleanly across commits.
fn json_ms(ms: f64) -> String {
    if ms.is_finite() {
        format!("{ms:.3}")
    } else {
        "null".to_owned()
    }
}

/// Renders one trajectory record as pretty-printed JSON. The `sweep` field
/// is spliced in verbatim (it is already a JSON object emitted by
/// `act bench-sweep`); an empty capture renders as `null`. Records carry no
/// `schema` field of their own — the enclosing trajectory document does.
#[must_use]
pub fn render_record(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"unix_time\": {},", report.unix_time);
    match &report.label {
        None => out.push_str("  \"label\": null,\n"),
        Some(label) => {
            let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(label));
        }
    }
    match &report.error {
        None => out.push_str("  \"error\": null,\n"),
        Some(error) => {
            let _ = writeln!(out, "  \"error\": \"{}\",", json_escape(error));
        }
    }
    let _ = writeln!(out, "  \"repeats\": {},", report.repeats);
    let _ = writeln!(out, "  \"build_ms\": {},", json_ms(report.build_ms));
    out.push_str("  \"figures\": {\n");
    for (i, (id, ms)) in report.figures.iter().enumerate() {
        let comma = if i + 1 == report.figures.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {}{comma}", json_escape(id), json_ms(*ms));
    }
    out.push_str("  },\n");
    let figure_total =
        if report.figures.is_empty() { f64::NAN } else { report.figure_total_ms() };
    let _ = writeln!(out, "  \"figure_total_ms\": {},", json_ms(figure_total));
    out.push_str("  \"all\": {\n");
    let _ = writeln!(out, "    \"parallel_ms\": {},", json_ms(report.all_parallel_ms));
    let _ = writeln!(out, "    \"serial_ms\": {},", json_ms(report.all_serial_ms));
    let speedup = if report.all_parallel_ms > 0.0 { report.all_speedup() } else { f64::NAN };
    let _ = writeln!(out, "    \"speedup\": {}", json_ms(speedup));
    out.push_str("  },\n");
    // The gate/million captures render *before* the canonical sweep: the
    // regression guard reads the **last** `"compiled"` object in the
    // trajectory, and that must stay the fixed-size canonical sweep so
    // baselines compare like against like.
    // `fleet` renders here too — before the canonical sweep — so its
    // throughput numbers can never shadow the sweep's `"compiled"` object.
    for (key, capture) in [
        ("sweep_gate", &report.sweep_gate),
        ("sweep_million", &report.sweep_million),
        ("fleet", &report.fleet),
    ] {
        let capture = capture.trim();
        if capture.is_empty() {
            let _ = writeln!(out, "  \"{key}\": null,");
        } else {
            let _ = writeln!(out, "  \"{key}\": {capture},");
        }
    }
    let sweep = report.sweep.trim();
    if sweep.is_empty() {
        out.push_str("  \"sweep\": null,\n");
    } else {
        let _ = writeln!(out, "  \"sweep\": {sweep},");
    }
    match report.criterion_ok {
        None => out.push_str("  \"criterion_smoke\": null\n"),
        Some(ok) => {
            let _ = writeln!(out, "  \"criterion_smoke\": {ok}");
        }
    }
    out.push_str("}\n");
    out
}

/// Extracts the verbatim inner body of the `"records": [...]` array from a
/// schema-v2 trajectory document. Returns `None` when `text` is not one
/// (e.g. a legacy v1 single-record file). The scanner is string-aware, so
/// brackets inside JSON strings don't confuse it.
#[must_use]
pub fn records_body(text: &str) -> Option<&str> {
    if !text.contains("\"act-bench-trajectory/2\"") {
        return None;
    }
    let key = text.find("\"records\"")?;
    let open = key + text[key..].find('[')?;
    let bytes = text.as_bytes();
    let mut depth = 1usize;
    let mut in_string = false;
    let mut i = open + 1;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'[' | b'{' => depth += 1,
                b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&text[open + 1..i]);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Appends one rendered record to an existing trajectory, producing a
/// schema-v2 document. Pure: takes the current file contents (possibly
/// empty), returns the new contents.
///
/// - empty/missing file → a fresh trajectory with one record;
/// - schema-v2 file → the record joins the end of `records`;
/// - legacy schema-v1 single-record file → the old object is wrapped as the
///   first record and the new one appended after it.
#[must_use]
pub fn append_record(existing: &str, record: &str) -> String {
    let record = record.trim();
    let mut body = String::new();
    let trimmed = existing.trim();
    if let Some(prior) = records_body(trimmed) {
        let prior = prior.trim();
        if !prior.is_empty() {
            body.push_str(prior);
            body.push_str(",\n");
        }
    } else if !trimmed.is_empty() {
        body.push_str(trimmed);
        body.push_str(",\n");
    }
    body.push_str(record);
    format!(
        "{{\n  \"schema\": \"act-bench-trajectory/2\",\n  \"records\": [\n{body}\n  ]\n}}\n"
    )
}

/// Number of records in a trajectory document: the top-level objects of a
/// v2 `records` array, `1` for a legacy v1 single-record file, `0` for an
/// empty file.
#[must_use]
pub fn record_count(text: &str) -> usize {
    let Some(bodytext) = records_body(text) else {
        return usize::from(!text.trim().is_empty());
    };
    let bytes = bodytext.as_bytes();
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' => {
                    if depth == 0 {
                        count += 1;
                    }
                    depth += 1;
                }
                b'[' => depth += 1,
                b'}' | b']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        i += 1;
    }
    count
}

/// Pulls the most recent compiled-kernel sweep throughput
/// (`"compiled": {..., "points_per_sec": N, ...}`) out of a trajectory or a
/// single record. Returns `None` when no record carries a finite positive
/// reading — e.g. a degraded offline record whose sweep is `null`.
#[must_use]
pub fn extract_compiled_throughput(text: &str) -> Option<f64> {
    let at = text.rfind("\"compiled\"")?;
    let tail = &text[at..];
    let key = tail.find("\"points_per_sec\"")?;
    let after = tail[key + "\"points_per_sec\"".len()..].trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(after.len());
    after[..end].parse::<f64>().ok().filter(|v| v.is_finite() && *v > 0.0)
}

/// Fraction of the baseline throughput a new reading must retain to pass
/// the regression guard (0.7 ⇒ fail on a >30 % drop).
pub const GUARD_RETAIN_FRACTION: f64 = 0.7;

/// Regression-guard verdict: `Some((baseline, current))` when the new
/// record's compiled throughput fell below [`GUARD_RETAIN_FRACTION`] of the
/// trajectory's last reading; `None` when it passed or either side has no
/// reading (first run, or a degraded record).
#[must_use]
pub fn guard_regression(existing: &str, record: &str) -> Option<(f64, f64)> {
    let baseline = extract_compiled_throughput(existing)?;
    let current = extract_compiled_throughput(record)?;
    (current < GUARD_RETAIN_FRACTION * baseline).then_some((baseline, current))
}

/// Minimum compiled parallel-over-serial speedup the 100k gate demands on
/// a multi-core host: parallel must not lose to serial.
pub const GATE_MIN_SPEEDUP: f64 = 1.0;

/// Verdict of the parallel-must-win gate over one `act bench-sweep` record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GateOutcome {
    /// Multi-core host and the compiled-parallel leg held
    /// [`GATE_MIN_SPEEDUP`].
    Pass {
        /// Compiled serial ms over compiled parallel ms.
        speedup: f64,
        /// Worker threads the sweep resolved to.
        threads: usize,
    },
    /// Single-core host: there is nothing to win, the gate soft-passes
    /// with a warning.
    SingleCore {
        /// What the machine offered.
        machine: usize,
    },
    /// Multi-core host but the parallel leg lost to serial.
    Fail {
        /// Compiled serial ms over compiled parallel ms.
        speedup: f64,
        /// Worker threads the sweep resolved to.
        threads: usize,
    },
    /// The record carried no readable compiled serial/parallel timings
    /// (e.g. an empty capture on a degraded run).
    Unreadable,
}

/// First JSON number after `key` at or past `from`, scanned textually
/// (the xtask workspace is dependency-free, so no JSON parser).
fn number_after(text: &str, from: usize, key: &str) -> Option<f64> {
    let at = from + text[from..].find(key)?;
    let after = text[at + key.len()..].trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(after.len());
    after[..end].parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Applies the parallel-must-win gate to one raw `act bench-sweep` record:
/// on a host with ≥ 2 hardware threads, the compiled-parallel leg must be
/// at least [`GATE_MIN_SPEEDUP`] times the compiled-serial leg. Pure —
/// callers decide how a [`GateOutcome::Fail`] maps to an exit code.
#[must_use]
pub fn gate_parallel_win(sweep_record: &str) -> GateOutcome {
    let Some(machine) = number_after(sweep_record, 0, "\"machine_threads\"") else {
        return GateOutcome::Unreadable;
    };
    let threads =
        number_after(sweep_record, 0, "\"threads\"").map_or(1, |t| t.max(1.0) as usize);
    // The parallel leg evaluates through the block plan, so its serial
    // baseline is the serial block leg when the record carries one;
    // pre-block records fall back to the per-point compiled leg.
    let serial_ms = sweep_record
        .find("\"compiled_block\"")
        .or_else(|| sweep_record.find("\"compiled\""))
        .and_then(|at| number_after(sweep_record, at, "\"ms\""));
    let parallel_ms = sweep_record
        .find("\"compiled_parallel\"")
        .and_then(|at| number_after(sweep_record, at, "\"ms\""));
    let (Some(serial_ms), Some(parallel_ms)) = (serial_ms, parallel_ms) else {
        return GateOutcome::Unreadable;
    };
    if machine < 2.0 {
        return GateOutcome::SingleCore { machine: machine.max(0.0) as usize };
    }
    let speedup = serial_ms / parallel_ms.max(1e-12);
    if speedup >= GATE_MIN_SPEEDUP {
        GateOutcome::Pass { speedup, threads }
    } else {
        GateOutcome::Fail { speedup, threads }
    }
}

/// Minimum block-over-per-point throughput ratio the retention gate
/// demands: the block-vectorized leg must never lose to the per-point
/// compiled leg it replaced on the hot paths.
pub const BLOCK_GATE_MIN_RATIO: f64 = 1.0;

/// Verdict of the block-path retention gate over one `act bench-sweep`
/// record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockGateOutcome {
    /// The `compiled_block` leg held at least [`BLOCK_GATE_MIN_RATIO`]
    /// times the per-point `compiled` throughput.
    Pass {
        /// Block points/sec over per-point points/sec.
        ratio: f64,
    },
    /// The block leg regressed below per-point throughput.
    Fail {
        /// Block points/sec over per-point points/sec.
        ratio: f64,
    },
    /// The record carried no readable `compiled` / `compiled_block`
    /// throughputs (a degraded run, or a record predating the block path).
    Unreadable,
}

/// Applies the block-path retention gate to one raw `act bench-sweep`
/// record: the block-vectorized leg's `points_per_sec` must be at least
/// [`BLOCK_GATE_MIN_RATIO`] times the per-point compiled leg's, on any
/// host (the comparison is serial vs. serial, so core count is
/// irrelevant). Pure — callers decide how a [`BlockGateOutcome::Fail`]
/// maps to an exit code.
#[must_use]
pub fn gate_block_retention(sweep_record: &str) -> BlockGateOutcome {
    let per_point = sweep_record
        .find("\"compiled\"")
        .and_then(|at| number_after(sweep_record, at, "\"points_per_sec\""));
    let block = sweep_record
        .find("\"compiled_block\"")
        .and_then(|at| number_after(sweep_record, at, "\"points_per_sec\""));
    let (Some(per_point), Some(block)) = (per_point, block) else {
        return BlockGateOutcome::Unreadable;
    };
    if !(per_point > 0.0 && block > 0.0) {
        return BlockGateOutcome::Unreadable;
    }
    let ratio = block / per_point;
    if ratio >= BLOCK_GATE_MIN_RATIO {
        BlockGateOutcome::Pass { ratio }
    } else {
        BlockGateOutcome::Fail { ratio }
    }
}

/// Tags every degraded `release build unavailable` record in a trajectory
/// with `"superseded": true`, marking it as replaced by a later complete
/// run so trend tooling skips it instead of reading its null timings as
/// data points. Pure and idempotent — already-tagged records and healthy
/// records pass through byte-for-byte. Call it only when the record being
/// appended is itself complete.
#[must_use]
pub fn tag_superseded_degraded(existing: &str) -> String {
    let mut out = String::with_capacity(existing.len() + 64);
    let mut lines = existing.lines().peekable();
    while let Some(line) = lines.next() {
        out.push_str(line);
        out.push('\n');
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"error\": \"release build unavailable")
            && lines.peek().is_none_or(|next| !next.trim_start().starts_with("\"superseded\""))
        {
            let indent = &line[..line.len() - trimmed.len()];
            out.push_str(indent);
            out.push_str("\"superseded\": true,\n");
        }
    }
    if !existing.ends_with('\n') && out.ends_with('\n') && !existing.is_empty() {
        out.pop();
    }
    out
}

/// Seconds since the Unix epoch, `0` if the clock is before it.
fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Milliseconds elapsed while running `f`.
fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs a command with output discarded; `Ok(())` iff it exited zero.
fn run_silent(cmd: &mut Command) -> Result<(), String> {
    let label = format!("{cmd:?}");
    let status = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map_err(|e| format!("failed to spawn {label}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{label} exited with {status}"))
    }
}

/// Runs a command capturing stdout; `Ok(stdout)` iff it exited zero.
fn run_capture(cmd: &mut Command) -> Result<String, String> {
    let label = format!("{cmd:?}");
    let output = cmd
        .stderr(Stdio::null())
        .output()
        .map_err(|e| format!("failed to spawn {label}: {e}"))?;
    if output.status.success() {
        String::from_utf8(output.stdout).map_err(|e| format!("{label}: non-UTF-8 stdout: {e}"))
    } else {
        Err(format!("{label} exited with {}", output.status))
    }
}

/// Path to the release `act` binary under `root`.
fn act_binary(root: &Path) -> PathBuf {
    root.join("target").join("release").join("act")
}

/// Best-of-`repeats` wall-clock for one `act` invocation.
fn best_act_ms(root: &Path, args: &[&str], repeats: usize) -> Result<f64, String> {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let (ms, result) = time_ms(|| run_silent(Command::new(act_binary(root)).args(args)));
        result?;
        best = best.min(ms);
    }
    Ok(best)
}

/// Runs the full harness: build, per-figure timings, `all` speedup, sweep
/// probe, optional criterion smoke. Returns the report without writing it.
///
/// A failed release build does not abort the run: it yields a degraded
/// report (`error` set, timings NaN → rendered `null`) so offline
/// environments still append an honest trajectory record.
pub fn run_bench(config: &BenchConfig) -> Result<BenchReport, String> {
    let unix_time = unix_time_now();
    let root = &config.root;
    // `--workspace` matters: the root umbrella package does not depend on
    // `act-cli`, so a bare `cargo build --release` would skip the binary.
    let (build_ms, built) = time_ms(|| {
        run_silent(
            Command::new("cargo").args(["build", "--release", "--workspace"]).current_dir(root),
        )
    });
    if let Err(err) = built {
        return Ok(BenchReport {
            build_ms: f64::NAN,
            figures: Vec::new(),
            all_parallel_ms: f64::NAN,
            all_serial_ms: f64::NAN,
            sweep: String::new(),
            sweep_gate: String::new(),
            sweep_million: String::new(),
            fleet: String::new(),
            criterion_ok: None,
            repeats: config.repeats.max(1),
            label: config.label.clone(),
            unix_time,
            error: Some(format!("release build unavailable: {err}")),
        });
    }

    let listing = run_capture(Command::new(act_binary(root)).arg("list"))?;
    let ids: Vec<String> = listing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "all")
        .map(str::to_owned)
        .collect();
    if ids.is_empty() {
        return Err("`act list` reported no experiments".to_owned());
    }

    let mut figures = Vec::with_capacity(ids.len());
    for id in &ids {
        let ms = best_act_ms(root, &[id.as_str()], config.repeats)?;
        figures.push((id.clone(), ms));
    }

    let all_parallel_ms = best_act_ms(root, &["all"], config.repeats)?;
    let all_serial_ms = best_act_ms(root, &["all", "--serial"], config.repeats)?;

    let points = config.sweep_points.to_string();
    let sweep = run_capture(Command::new(act_binary(root)).args(["bench-sweep", &points]))?;

    // The parallel-must-win gate probe: large enough that the calibrated
    // engine should dispatch in parallel and beat serial on a multi-core
    // host. Verdict rendering is the caller's job (see `gate_parallel_win`).
    let gate_points = config.gate_points.to_string();
    let sweep_gate =
        run_capture(Command::new(act_binary(root)).args(["bench-sweep", &gate_points]))?;

    let sweep_million = if config.million {
        run_capture(Command::new(act_binary(root)).args(["bench-sweep", "--million"]))?
    } else {
        String::new()
    };

    // Fleet Monte-Carlo throughput probe: a fixed 100k-sample run of the
    // built-in server-class scenario so the trajectory tracks the scenario
    // pipeline alongside the sweep engine.
    let fleet = run_capture(Command::new(act_binary(root)).args(["fleet-bench", "100000"]))?;

    let criterion_ok = if config.criterion_smoke {
        Some(
            run_silent(
                Command::new("cargo")
                    .args(["bench", "--workspace", "--", "--test"])
                    .current_dir(root),
            )
            .is_ok(),
        )
    } else {
        None
    };

    Ok(BenchReport {
        build_ms,
        figures,
        all_parallel_ms,
        all_serial_ms,
        sweep,
        sweep_gate,
        sweep_million,
        fleet,
        criterion_ok,
        repeats: config.repeats.max(1),
        label: config.label.clone(),
        unix_time,
        error: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            build_ms: 1234.5678,
            figures: vec![("fig1".to_owned(), 10.0), ("table5-11".to_owned(), 2.5)],
            all_parallel_ms: 40.0,
            all_serial_ms: 100.0,
            sweep: "{\"points\":100,\"speedup\":2.0,\"compiled\":{\"ms\":1.0,\"points_per_sec\":4000.0}}\n"
                .to_owned(),
            sweep_gate: "{\"points\":1000,\"machine_threads\":2,\"compiled\":{\"ms\":2.0},\"compiled_parallel\":{\"ms\":1.0}}\n"
                .to_owned(),
            sweep_million: String::new(),
            fleet: "{\"samples\":100000,\"fleet_serial\":{\"ms\":50.0,\"samples_per_sec\":2000000.0},\"fleet_parallel\":{\"ms\":25.0,\"samples_per_sec\":4000000.0}}\n"
                .to_owned(),
            criterion_ok: Some(true),
            repeats: 3,
            label: Some("sample".to_owned()),
            unix_time: 1_754_500_000,
            error: None,
        }
    }

    #[test]
    fn speedup_is_serial_over_parallel() {
        assert!((sample_report().all_speedup() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_of_degenerate_timing_is_zero_not_nan() {
        let mut r = sample_report();
        r.all_parallel_ms = 0.0;
        assert_eq!(r.all_speedup(), 0.0);
    }

    #[test]
    fn figure_total_sums_entries() {
        assert!((sample_report().figure_total_ms() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn record_renders_all_sections() {
        let text = render_record(&sample_report());
        for needle in [
            "\"unix_time\": 1754500000",
            "\"label\": \"sample\"",
            "\"error\": null",
            "\"repeats\": 3",
            "\"fig1\": 10.000",
            "\"table5-11\": 2.500",
            "\"figure_total_ms\": 12.500",
            "\"parallel_ms\": 40.000",
            "\"serial_ms\": 100.000",
            "\"speedup\": 2.500",
            "\"sweep\": {\"points\":100,\"speedup\":2.0",
            "\"sweep_gate\": {\"points\":1000,\"machine_threads\":2",
            "\"sweep_million\": null",
            "\"fleet\": {\"samples\":100000",
            "\"criterion_smoke\": true",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn canonical_sweep_renders_after_gate_and_million_captures() {
        // The regression guard reads the **last** `"compiled"` object; that
        // must stay the fixed-size canonical sweep, not the gate/million
        // probes, or baselines would compare across point counts.
        let mut r = sample_report();
        r.sweep_million =
            "{\"mode\":\"million\",\"compiled\":{\"ms\":20.0,\"points_per_sec\":50000000.0}}"
                .to_owned();
        let text = render_record(&r);
        let gate_at = text.find("\"sweep_gate\"").unwrap();
        let million_at = text.find("\"sweep_million\"").unwrap();
        let fleet_at = text.find("\"fleet\"").unwrap();
        let sweep_at = text.find("\"sweep\": {").unwrap();
        assert!(
            gate_at < million_at && million_at < fleet_at && fleet_at < sweep_at,
            "order wrong:\n{text}"
        );
        let got = extract_compiled_throughput(&text).unwrap();
        assert!((got - 4000.0).abs() < 1e-9, "guard read the wrong compiled object: {got}");
    }

    #[test]
    fn empty_sweep_capture_renders_null() {
        let mut r = sample_report();
        r.sweep = String::new();
        r.fleet = String::new();
        r.criterion_ok = None;
        let text = render_record(&r);
        assert!(text.contains("\"sweep\": null"));
        assert!(text.contains("\"fleet\": null"));
        assert!(text.contains("\"criterion_smoke\": null"));
    }

    #[test]
    fn non_finite_timings_render_null_not_inf() {
        let mut r = sample_report();
        r.all_parallel_ms = f64::INFINITY;
        let text = render_record(&r);
        assert!(text.contains("\"parallel_ms\": null"));
    }

    fn degraded_report() -> BenchReport {
        BenchReport {
            build_ms: f64::NAN,
            figures: Vec::new(),
            all_parallel_ms: f64::NAN,
            all_serial_ms: f64::NAN,
            sweep: String::new(),
            sweep_gate: String::new(),
            sweep_million: String::new(),
            fleet: String::new(),
            criterion_ok: None,
            repeats: 1,
            label: None,
            unix_time: 1_754_500_100,
            error: Some("release build unavailable: no registry".to_owned()),
        }
    }

    #[test]
    fn degraded_record_is_null_timings_plus_reason() {
        let text = render_record(&degraded_report());
        for needle in [
            "\"label\": null",
            "\"error\": \"release build unavailable: no registry\"",
            "\"build_ms\": null",
            "\"figure_total_ms\": null",
            "\"speedup\": null",
            "\"sweep\": null",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn append_to_empty_starts_a_trajectory() {
        let text = append_record("", &render_record(&sample_report()));
        assert!(text.starts_with("{\n  \"schema\": \"act-bench-trajectory/2\""));
        assert_eq!(record_count(&text), 1);
    }

    #[test]
    fn append_accumulates_records_in_order() {
        let first = append_record("", &render_record(&sample_report()));
        let second = append_record(&first, &render_record(&degraded_report()));
        assert_eq!(record_count(&second), 2);
        let sample_at = second.find("\"label\": \"sample\"").unwrap();
        let degraded_at = second.find("\"unix_time\": 1754500100").unwrap();
        assert!(sample_at < degraded_at, "records out of order:\n{second}");
        // Appending must be lossless: the earlier record survives verbatim.
        assert!(second.contains("\"fig1\": 10.000"));
    }

    #[test]
    fn append_wraps_a_legacy_v1_file_as_the_first_record() {
        let legacy = "{\n  \"schema\": \"act-bench-trajectory/1\",\n  \"build_ms\": 5.0\n}\n";
        let text = append_record(legacy, &render_record(&sample_report()));
        assert_eq!(record_count(&text), 2);
        assert!(text.contains("\"act-bench-trajectory/1\""));
        let v1_at = text.find("act-bench-trajectory/1").unwrap();
        let new_at = text.find("\"label\": \"sample\"").unwrap();
        assert!(v1_at < new_at);
    }

    #[test]
    fn records_body_ignores_brackets_inside_strings() {
        let doc =
            append_record("", "{\n  \"label\": \"tricky ] } [ {\",\n  \"unix_time\": 1\n}");
        assert_eq!(record_count(&doc), 1);
        let appended = append_record(&doc, "{\n  \"unix_time\": 2\n}");
        assert_eq!(record_count(&appended), 2);
    }

    #[test]
    fn records_body_rejects_non_v2_documents() {
        assert!(records_body("{\"schema\": \"act-bench-trajectory/1\"}").is_none());
        assert!(records_body("").is_none());
        assert_eq!(record_count(""), 0);
        assert_eq!(record_count("{\"schema\": \"act-bench-trajectory/1\"}"), 1);
    }

    #[test]
    fn compiled_throughput_reads_the_last_record() {
        let older = "{\n  \"sweep\": {\"compiled\": {\"points_per_sec\": 1000.0}}\n}";
        let newer = "{\n  \"sweep\": {\"compiled\": {\"points_per_sec\": 2500.5}}\n}";
        let doc = append_record(&append_record("", older), newer);
        let got = match extract_compiled_throughput(&doc) {
            Some(v) => v,
            None => panic!("throughput missing from:\n{doc}"),
        };
        assert!((got - 2500.5).abs() < 1e-9);
    }

    #[test]
    fn compiled_throughput_absent_from_degraded_records() {
        assert!(extract_compiled_throughput(&render_record(&degraded_report())).is_none());
        assert!(
            extract_compiled_throughput("{\"compiled\": {\"points_per_sec\": null}}").is_none()
        );
        assert!(extract_compiled_throughput("").is_none());
    }

    #[test]
    fn guard_trips_only_on_a_real_regression() {
        let baseline = append_record("", &render_record(&sample_report())); // 4000 pts/s
        let fast = "{\"sweep\": {\"compiled\": {\"points_per_sec\": 3500.0}}}";
        let slow = "{\"sweep\": {\"compiled\": {\"points_per_sec\": 2000.0}}}";
        assert!(guard_regression(&baseline, fast).is_none(), "25% drop is within tolerance");
        let (base, cur) = match guard_regression(&baseline, slow) {
            Some(pair) => pair,
            None => panic!("50% drop must trip the guard"),
        };
        assert!((base - 4000.0).abs() < 1e-9 && (cur - 2000.0).abs() < 1e-9);
        // No baseline reading (fresh file) or no current reading (degraded
        // run) both skip the guard rather than failing it.
        assert!(guard_regression("", slow).is_none());
        assert!(guard_regression(&baseline, &render_record(&degraded_report())).is_none());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn quick_mode_shrinks_the_run_but_keeps_the_gate() {
        let mut config = BenchConfig::new(PathBuf::from("."));
        config.quick();
        assert_eq!(config.repeats, 1);
        assert!(config.sweep_points < 10_000);
        assert!(!config.million, "--quick must skip the million-point leg");
        assert_eq!(config.gate_points, 100_000, "--quick must keep the 100k gate");
    }

    /// A minimal bench-sweep record for gate tests.
    fn gate_record(machine: u32, serial_ms: f64, parallel_ms: f64) -> String {
        format!(
            "{{\"points\":100000,\"threads\":{machine},\"threads_source\":\"machine\",\
             \"machine_threads\":{machine},\"decision\":\"parallel\",\
             \"compiled\":{{\"ms\":{serial_ms},\"points_per_sec\":1.0}},\
             \"compiled_parallel\":{{\"ms\":{parallel_ms},\"points_per_sec\":1.0,\
             \"speedup_vs_serial\":1.0}}}}"
        )
    }

    #[test]
    fn gate_passes_when_parallel_wins_on_multicore() {
        match gate_parallel_win(&gate_record(4, 20.0, 10.0)) {
            GateOutcome::Pass { speedup, threads } => {
                assert!((speedup - 2.0).abs() < 1e-9);
                assert_eq!(threads, 4);
            }
            other => panic!("expected Pass, got {other:?}"),
        }
    }

    #[test]
    fn gate_fails_when_parallel_loses_on_multicore() {
        match gate_parallel_win(&gate_record(2, 10.0, 20.0)) {
            GateOutcome::Fail { speedup, .. } => assert!(speedup < 1.0),
            other => panic!("expected Fail, got {other:?}"),
        }
    }

    #[test]
    fn gate_soft_passes_on_a_single_core_host() {
        // Even a losing parallel leg is not a failure with one hardware
        // thread — there is nothing to win.
        assert_eq!(
            gate_parallel_win(&gate_record(1, 10.0, 20.0)),
            GateOutcome::SingleCore { machine: 1 }
        );
    }

    #[test]
    fn gate_reports_unreadable_records_instead_of_guessing() {
        assert_eq!(gate_parallel_win(""), GateOutcome::Unreadable);
        assert_eq!(
            gate_parallel_win("{\"machine_threads\":4}"),
            GateOutcome::Unreadable,
            "missing compiled timings must not pass or fail the gate"
        );
    }

    /// A bench-sweep record carrying both the per-point and block-vectorized
    /// compiled legs, in the shape `act bench-sweep` emits since the block
    /// engine landed (including the `null` calibration threshold).
    fn block_record(per_point_pps: f64, block_pps: f64) -> String {
        format!(
            "{{\"points\":100000,\"threads\":1,\"threads_source\":\"machine\",\
             \"machine_threads\":1,\"decision\":\"serial\",\
             \"calibration\":{{\"threshold_points\":null,\"source\":\"single-core\"}},\
             \"compiled\":{{\"ms\":10.0,\"points_per_sec\":{per_point_pps}}},\
             \"compiled_block\":{{\"ms\":8.0,\"points_per_sec\":{block_pps},\
             \"speedup_vs_per_point\":1.0}}}}"
        )
    }

    #[test]
    fn block_gate_passes_when_block_leg_holds_per_point_throughput() {
        match gate_block_retention(&block_record(1.0e7, 2.5e7)) {
            BlockGateOutcome::Pass { ratio } => assert!((ratio - 2.5).abs() < 1e-9),
            other => panic!("expected Pass, got {other:?}"),
        }
        // Exactly matching per-point throughput retains the path too.
        match gate_block_retention(&block_record(1.0e7, 1.0e7)) {
            BlockGateOutcome::Pass { ratio } => assert!((ratio - 1.0).abs() < 1e-9),
            other => panic!("expected Pass at parity, got {other:?}"),
        }
    }

    #[test]
    fn block_gate_fails_when_block_leg_regresses() {
        match gate_block_retention(&block_record(2.0e7, 1.5e7)) {
            BlockGateOutcome::Fail { ratio } => assert!((ratio - 0.75).abs() < 1e-9),
            other => panic!("expected Fail, got {other:?}"),
        }
    }

    #[test]
    fn block_gate_reports_unreadable_records_instead_of_guessing() {
        assert_eq!(gate_block_retention(""), BlockGateOutcome::Unreadable);
        // Pre-block trajectory records have no compiled_block section.
        assert_eq!(
            gate_block_retention(&gate_record(4, 20.0, 10.0)),
            BlockGateOutcome::Unreadable,
            "records without a compiled_block leg must not pass or fail the gate"
        );
    }

    #[test]
    fn parallel_gate_prefers_the_block_leg_as_its_serial_baseline() {
        // With a block leg present, the parallel gate measures against it:
        // block 8ms vs parallel 4ms -> 2x speedup on a 4-thread host.
        let record = format!(
            "{{\"points\":100000,\"threads\":4,\"threads_source\":\"machine\",\
             \"machine_threads\":4,\"decision\":\"parallel\",\
             \"compiled\":{{\"ms\":10.0,\"points_per_sec\":1.0}},\
             \"compiled_block\":{{\"ms\":8.0,\"points_per_sec\":1.0}},\
             \"compiled_parallel\":{{\"ms\":4.0,\"points_per_sec\":1.0}}}}"
        );
        match gate_parallel_win(&record) {
            GateOutcome::Pass { speedup, threads } => {
                assert!((speedup - 2.0).abs() < 1e-9, "baseline should be the 8ms block leg");
                assert_eq!(threads, 4);
            }
            other => panic!("expected Pass, got {other:?}"),
        }
    }

    #[test]
    fn tagging_marks_degraded_records_and_only_them() {
        let doc = append_record(
            &append_record("", &render_record(&degraded_report())),
            &render_record(&sample_report()),
        );
        let tagged = tag_superseded_degraded(&doc);
        assert_eq!(tagged.matches("\"superseded\": true").count(), 1);
        let superseded_at = tagged.find("\"superseded\": true").unwrap();
        let healthy_at = tagged.find("\"label\": \"sample\"").unwrap();
        assert!(superseded_at < healthy_at, "tag landed on the wrong record:\n{tagged}");
        // The tag must not disturb record structure or the guard baseline.
        assert_eq!(record_count(&tagged), 2);
        assert_eq!(extract_compiled_throughput(&tagged), extract_compiled_throughput(&doc));
    }

    #[test]
    fn tagging_is_idempotent_and_leaves_healthy_trajectories_alone() {
        let healthy = append_record("", &render_record(&sample_report()));
        assert_eq!(tag_superseded_degraded(&healthy), healthy);
        let degraded = append_record("", &render_record(&degraded_report()));
        let once = tag_superseded_degraded(&degraded);
        assert_eq!(tag_superseded_degraded(&once), once);
    }

    #[test]
    fn last_figure_entry_has_no_trailing_comma() {
        let text = render_record(&sample_report());
        let figures_block =
            text.split("\"figures\": {").nth(1).and_then(|s| s.split('}').next()).unwrap();
        let last_entry = figures_block.trim_end().lines().last().unwrap();
        assert!(!last_entry.trim_end().ends_with(','), "trailing comma in:\n{figures_block}");
    }
}
