//! Service harnesses for `act serve`: the `soak` chaos run and the
//! `loadtest` latency recorder.
//!
//! Both spawn the release `act` binary, parse its readiness line, and
//! drive traffic over raw `std::net::TcpStream` — xtask is a
//! dependency-free workspace, so there is no act-* crate to lean on and
//! every HTTP/JSON fragment here is hand-rolled.
//!
//! `soak` proves the robustness contract under a deterministic, seeded mix
//! of good, hostile and fault-injected traffic: zero client hangs (every
//! socket op has a timeout), at least one forced worker panic and one
//! forced worker kill survived, a mid-traffic SIGTERM that drains cleanly,
//! `accepted == finished` in the final stats (no leaked connections), and
//! a zero exit code.
//!
//! `loadtest` measures p50/p99 latency and request throughput against a
//! fault-free server and appends a labeled record to the
//! `BENCH_results.json` trajectory (schema `act-bench-trajectory/2`, same
//! append path as `cargo xtask bench`).

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Configuration shared by `soak` and `loadtest`.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Workspace root (where `Cargo.toml` and `target/` live).
    pub root: PathBuf,
    /// CI-sized run: less traffic, same coverage.
    pub quick: bool,
    /// Master seed for the soak traffic mix and the server fault plan.
    pub seed: u64,
    /// Trajectory path for the loadtest record.
    pub out: PathBuf,
    /// Optional label stored in the loadtest record.
    pub label: Option<String>,
}

impl ServiceConfig {
    /// Defaults rooted at `root`.
    #[must_use]
    pub fn new(root: PathBuf) -> Self {
        Self {
            root,
            quick: false,
            seed: 42,
            out: PathBuf::from("BENCH_results.json"),
            label: None,
        }
    }
}

/// SplitMix64 — the standard 64-bit seed mixer; deterministic traffic
/// choice without a dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a command with output discarded; `Ok(())` iff it exited zero.
fn run_silent(cmd: &mut Command) -> Result<(), String> {
    let label = format!("{cmd:?}");
    let status = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map_err(|err| format!("cannot spawn {label}: {err}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{label} exited with {status}"))
    }
}

/// Path to the release `act` binary under `root`.
fn act_binary(root: &Path) -> PathBuf {
    root.join("target").join("release").join("act")
}

/// Builds the workspace in release mode. `--workspace` matters: the root
/// umbrella package does not depend on `act-cli`, so a bare
/// `cargo build --release` would skip the binary under test.
fn build_release(root: &Path) -> Result<(), String> {
    run_silent(
        Command::new("cargo").args(["build", "--release", "--workspace"]).current_dir(root),
    )
}

/// Extracts a `"key":"string"` value from a one-line JSON document.
fn json_str<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = text.find(&needle)? + needle.len();
    let end = text[start..].find('"')?;
    Some(&text[start..start + end])
}

/// Extracts a `"key":N` unsigned value from a one-line JSON document.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let digits: String = text[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The spawned `act serve` process with its readiness line parsed.
struct ServeProcess {
    child: Child,
    addr: String,
}

impl ServeProcess {
    /// Spawns `act serve` with `extra` flags and waits for the readiness
    /// line (bounded — a server that never becomes ready fails the run).
    fn spawn(root: &Path, extra: &[&str]) -> Result<Self, String> {
        let mut child = Command::new(act_binary(root))
            .arg("serve")
            .arg("--allow-remote-shutdown")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|err| format!("cannot spawn act serve: {err}"))?;
        let stdout = child.stdout.as_mut().ok_or("act serve stdout not piped")?;
        // Byte-wise read of the first line only: nothing buffered past the
        // newline, so the final stats line stays in the pipe for later.
        let mut ready = Vec::new();
        let mut byte = [0u8; 1];
        let started = Instant::now();
        loop {
            if started.elapsed() > Duration::from_secs(60) {
                let _ = child.kill();
                return Err("act serve never printed its readiness line".to_owned());
            }
            match stdout.read(&mut byte) {
                Ok(0) => {
                    let _ = child.kill();
                    return Err("act serve exited before becoming ready".to_owned());
                }
                Ok(_) if byte[0] == b'\n' => break,
                Ok(_) => ready.push(byte[0]),
                Err(err) => {
                    let _ = child.kill();
                    return Err(format!("reading act serve readiness: {err}"));
                }
            }
        }
        let ready = String::from_utf8_lossy(&ready).into_owned();
        let addr = json_str(&ready, "listening")
            .ok_or_else(|| format!("readiness line without `listening`: {ready}"))?
            .to_owned();
        Ok(Self { child, addr })
    }

    /// Waits (bounded) for the child to exit; returns (exit ok, remaining
    /// stdout — which ends with the final stats line).
    fn wait_for_exit(mut self, limit: Duration) -> Result<(bool, String), String> {
        let deadline = Instant::now() + limit;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    let mut rest = String::new();
                    if let Some(mut stdout) = self.child.stdout.take() {
                        let _ = stdout.read_to_string(&mut rest);
                    }
                    return Ok((status.success(), rest));
                }
                Ok(None) => {
                    if Instant::now() > deadline {
                        let _ = self.child.kill();
                        return Err(format!(
                            "act serve still running {}s after shutdown (hang)",
                            limit.as_secs()
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(err) => return Err(format!("waiting for act serve: {err}")),
            }
        }
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }
}

/// One bounded HTTP exchange. Every socket operation times out, so a
/// misbehaving server shows up as an `Err`, never a hang.
fn http_request(addr: &str, raw: &[u8], timeout: Duration) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|err| format!("connect {addr}: {err}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|err| err.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|err| err.to_string())?;
    stream.write_all(raw).map_err(|err| format!("send: {err}"))?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).map_err(|err| format!("read: {err}"))?;
    Ok(String::from_utf8_lossy(&response).into_owned())
}

/// Sends `raw` and drops the connection without reading — hostile-client
/// behavior the server must absorb.
fn fire_and_close(addr: &str, raw: &[u8]) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = stream.write_all(raw);
    }
}

fn get_line(addr: &str, path: &str, timeout: Duration) -> Result<String, String> {
    http_request(addr, format!("GET {path} HTTP/1.1\r\nHost: soak\r\n\r\n").as_bytes(), timeout)
}

fn post_line(
    addr: &str,
    path: &str,
    body: &str,
    extra: &str,
    timeout: Duration,
) -> Result<String, String> {
    http_request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: soak\r\n{extra}Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
        timeout,
    )
}

/// HTTP status code of a raw response, `0` when unparseable/empty.
fn status_code(response: &str) -> u16 {
    response.split(' ').nth(1).and_then(|code| code.parse().ok()).unwrap_or(0)
}

/// Tallies of what the soak run observed.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Connections the harness opened.
    pub connections: usize,
    /// Responses with a 2xx status.
    pub ok_responses: usize,
    /// Responses with a 4xx/5xx/503 status (expected for hostile traffic).
    pub error_responses: usize,
    /// Connections the server dropped without a response (kill faults,
    /// hostile frames it gave up on).
    pub dropped: usize,
    /// Forced handler panics acknowledged with a 500.
    pub forced_panics: usize,
    /// `panics_caught` from the server's final stats line.
    pub server_panics_caught: u64,
    /// `workers_respawned` from the final stats line.
    pub server_workers_respawned: u64,
    /// `accepted` from the final stats line.
    pub server_accepted: u64,
    /// `finished` from the final stats line.
    pub server_finished: u64,
}

/// The deterministic chaos run. Returns the report, or the first contract
/// violation as an error.
pub fn run_soak(config: &ServiceConfig) -> Result<SoakReport, String> {
    build_release(&config.root)?;
    let connections = if config.quick { 80 } else { 320 };
    let timeout = Duration::from_secs(20);

    // The server rolls its own faults on top of the harness's explicit
    // X-Act-Fault traffic; both streams derive from the same master seed.
    let fault_spec = format!(
        "seed={},p_slow=0.10,slow_read_ms=5,p_malformed=0.08,p_panic=0.04,p_kill=0.02,\
         p_delay=0.10,eval_delay_ms=15",
        config.seed
    );
    let server = ServeProcess::spawn(
        &config.root,
        &[
            "--workers",
            "2",
            "--queue",
            "8",
            "--deadline-ms",
            "2000",
            "--drain-ms",
            "8000",
            "--faults",
            &fault_spec,
        ],
    )?;
    let addr = server.addr.clone();

    // A valid params document, fetched from the server itself. Retry a
    // few times: the very first connections can roll injected faults.
    let mut params = String::new();
    for _ in 0..10 {
        if let Ok(response) = get_line(&addr, "/v1/params/reference", timeout) {
            if status_code(&response) == 200 {
                if let Some((_, body)) = response.split_once("\r\n\r\n") {
                    params = body.trim().to_owned();
                    break;
                }
            }
        }
    }
    if params.is_empty() {
        return Err("could not fetch /v1/params/reference through the fault plan".to_owned());
    }
    let sweep_body = format!(
        "{{\"params\":{params},\"axes\":[{{\"axis\":\"soc_area_mm2\",\"values\":[50,100,150,200]}}]}}"
    );

    let mut report = SoakReport::default();
    let mut rng = config.seed;
    for i in 0..connections {
        report.connections += 1;
        // Guaranteed coverage: one forced panic and one forced kill land
        // at fixed offsets regardless of the dice.
        let forced = match i {
            5 => Some("panic"),
            11 => Some("kill"),
            _ => None,
        };
        let kind = match forced {
            Some(kind) => kind.to_owned(),
            None => {
                const MIX: [&str; 12] = [
                    "health",
                    "experiment",
                    "footprint",
                    "sweep",
                    "health",
                    "truncated",
                    "garbage",
                    "badjson",
                    "panic",
                    "delay",
                    "hostile-scenario",
                    "hostile-fleet",
                ];
                MIX[(splitmix64(&mut rng) % MIX.len() as u64) as usize].to_owned()
            }
        };
        // Hostile scenario documents: every one must come back as a clean
        // 400 (never a 500, never a hang) from /v1/scenario and /v1/fleet.
        const HOSTILE_SCENARIOS: [&str; 4] = [
            // Non-finite numeric literal — rejected by the JSON layer.
            "{\"name\":\"x\",\"chips\":[],\"dram\":[],\"ssd\":[],\"hdd\":[],\
             \"packaged_ic_count\":1e999}",
            // Chip missing its area — rejected by the schema layer.
            "{\"name\":\"x\",\"chips\":[{\"name\":\"soc\",\"node\":\"N7\",\"count\":1}],\
             \"dram\":[],\"ssd\":[],\"hdd\":[],\"packaged_ic_count\":1}",
            // Inverted triangular support — rejected by the compiler.
            "{\"name\":\"x\",\"chips\":[],\"dram\":[],\"ssd\":[],\"hdd\":[],\
             \"packaged_ic_count\":1,\
             \"workload\":{\"power_w\":5.0,\"utilization\":0.5,\"lifetime_years\":3.0,\
             \"use_intensity_g_per_kwh\":300.0},\
             \"fleet\":{\"devices\":10,\"samples\":64,\
             \"lifetime_years\":{\"dist\":\"triangular\",\"low\":9.0,\"mode\":3.0,\"high\":1.0},\
             \"use_intensity_g_per_kwh\":{\"dist\":\"point\",\"value\":300.0},\
             \"utilization\":{\"dist\":\"point\",\"value\":0.5}}}",
            // Fleet block without a workload — rejected by the compiler.
            "{\"name\":\"x\",\"chips\":[],\"dram\":[],\"ssd\":[],\"hdd\":[],\
             \"packaged_ic_count\":1,\
             \"fleet\":{\"devices\":10,\"samples\":64,\
             \"lifetime_years\":{\"dist\":\"point\",\"value\":3.0},\
             \"use_intensity_g_per_kwh\":{\"dist\":\"point\",\"value\":300.0},\
             \"utilization\":{\"dist\":\"point\",\"value\":0.5}}}",
        ];
        let outcome = match kind.as_str() {
            "health" => get_line(&addr, "/healthz", timeout),
            "experiment" => get_line(&addr, "/v1/experiments/fig1", timeout),
            "footprint" => post_line(&addr, "/v1/footprint", &params, "", timeout),
            "sweep" => post_line(&addr, "/v1/sweep", &sweep_body, "", timeout),
            "truncated" => {
                // A frame that stops mid-header; the server's read timeout
                // or disconnect handling must reclaim the worker.
                fire_and_close(&addr, b"POST /v1/footprint HTTP/1.1\r\nContent-Le");
                Ok(String::new())
            }
            "garbage" => {
                fire_and_close(&addr, b"\x00\x01\x02 total nonsense \xff\xfe\r\n\r\n");
                Ok(String::new())
            }
            "badjson" => post_line(&addr, "/v1/footprint", "{\"nope\":", "", timeout),
            "hostile-scenario" | "hostile-fleet" => {
                let path =
                    if kind == "hostile-scenario" { "/v1/scenario" } else { "/v1/fleet" };
                let body = HOSTILE_SCENARIOS[(splitmix64(&mut rng) % 4) as usize];
                let response = post_line(&addr, path, body, "", timeout);
                if let Ok(response) = &response {
                    // Injected faults may drop the connection (empty), but a
                    // delivered response must be the clean 400 contract.
                    if !response.is_empty() && status_code(response) >= 500 {
                        return Err(format!(
                            "hostile scenario payload to {path} provoked a 5xx:\n{response}"
                        ));
                    }
                }
                response
            }
            "panic" => {
                let response = post_line(
                    &addr,
                    "/v1/footprint",
                    &params,
                    "X-Act-Fault: panic\r\n",
                    timeout,
                );
                if let Ok(response) = &response {
                    if status_code(response) == 500 {
                        report.forced_panics += 1;
                    }
                }
                response
            }
            "kill" => {
                // Expected: silent connection drop, then a respawned worker.
                let _ = post_line(
                    &addr,
                    "/v1/footprint",
                    &params,
                    "X-Act-Fault: kill-worker\r\n",
                    timeout,
                );
                Ok(String::new())
            }
            _ => {
                post_line(&addr, "/v1/footprint", &params, "X-Act-Fault: delay:50\r\n", timeout)
            }
        };
        match outcome {
            Ok(response) if response.is_empty() => report.dropped += 1,
            Ok(response) => match status_code(&response) {
                200..=299 => report.ok_responses += 1,
                400..=599 => report.error_responses += 1,
                _ => report.dropped += 1,
            },
            Err(_) => report.dropped += 1,
        }
    }

    // Shutdown mid-traffic: park slow requests in flight, then SIGTERM.
    let in_flight: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let params = params.clone();
            std::thread::spawn(move || {
                post_line(
                    &addr,
                    "/v1/footprint",
                    &params,
                    "X-Act-Fault: delay:500\r\n",
                    timeout,
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    let pid = server.pid();
    #[cfg(unix)]
    let signalled = run_silent(Command::new("kill").args(["-TERM", &pid.to_string()])).is_ok();
    #[cfg(not(unix))]
    let signalled = false;
    if !signalled {
        // Fallback stop path (non-unix or no `kill` binary).
        let _ = post_line(&addr, "/admin/shutdown", "{}", "", timeout);
    }
    let _ = pid;

    // In-flight requests must drain without a client hang. A reset is
    // fine — the server's own fault plan may roll a kill on any
    // connection — but a read timeout means the drain left a client
    // dangling, which is the bug this harness exists to catch.
    for handle in in_flight {
        let result = handle.join().map_err(|_| "in-flight client panicked")?;
        match result {
            Ok(response) if status_code(&response) == 200 => report.ok_responses += 1,
            Ok(_) => report.dropped += 1,
            Err(err) if err.contains("timed out") || err.contains("TimedOut") => {
                return Err(format!("in-flight request hung during drain: {err}"));
            }
            Err(_) => report.dropped += 1,
        }
    }

    let (exit_ok, rest) = server.wait_for_exit(Duration::from_secs(30))?;
    if !exit_ok {
        return Err("act serve exited non-zero after the chaos run".to_owned());
    }
    let stats_line = rest
        .lines()
        .rev()
        .find(|line| line.contains("\"shutdown\":true"))
        .ok_or("no final stats line after shutdown")?;
    report.server_panics_caught = json_u64(stats_line, "panics_caught").unwrap_or(0);
    report.server_workers_respawned = json_u64(stats_line, "workers_respawned").unwrap_or(0);
    report.server_accepted = json_u64(stats_line, "accepted").unwrap_or(0);
    report.server_finished = json_u64(stats_line, "finished").unwrap_or(0);
    let in_flight_at_exit = json_u64(stats_line, "in_flight").unwrap_or(u64::MAX);
    let queued_at_exit = json_u64(stats_line, "queued").unwrap_or(u64::MAX);

    // The robustness contract.
    if report.forced_panics == 0 {
        return Err("no forced worker panic was acknowledged with a 500".to_owned());
    }
    if report.server_panics_caught == 0 {
        return Err("server stats report zero panics caught".to_owned());
    }
    if report.server_workers_respawned == 0 {
        return Err("server stats report zero workers respawned".to_owned());
    }
    if in_flight_at_exit != 0 || queued_at_exit != 0 {
        return Err(format!(
            "unclean drain: in_flight={in_flight_at_exit} queued={queued_at_exit}"
        ));
    }
    if report.server_accepted != report.server_finished {
        return Err(format!(
            "leaked connections: accepted={} finished={}",
            report.server_accepted, report.server_finished
        ));
    }
    if report.ok_responses == 0 {
        return Err("no request succeeded — the mix never exercised the happy path".to_owned());
    }
    Ok(report)
}

/// Latency percentiles and throughput from one loadtest run.
#[derive(Debug)]
pub struct LoadReport {
    /// Measured requests (after warmup).
    pub requests: usize,
    /// Median end-to-end latency.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency.
    pub p99_ms: f64,
    /// Sustained request throughput.
    pub req_per_sec: f64,
    /// Seconds since the epoch at measurement time.
    pub unix_time: u64,
    /// Label carried into the trajectory record.
    pub label: Option<String>,
}

/// Renders the loadtest trajectory record. Deliberately carries no
/// `compiled` block, so `guard_regression` (which keys on compiled sweep
/// throughput) skips these records.
#[must_use]
pub fn render_load_record(report: &LoadReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"unix_time\": {},", report.unix_time);
    match &report.label {
        None => out.push_str("  \"label\": null,\n"),
        Some(label) => {
            let _ = writeln!(out, "  \"label\": \"{}\",", crate::bench::json_escape(label));
        }
    }
    out.push_str("  \"error\": null,\n");
    out.push_str("  \"server\": {\n");
    let _ = writeln!(out, "    \"endpoint\": \"/v1/footprint\",");
    let _ = writeln!(out, "    \"requests\": {},", report.requests);
    let _ = writeln!(out, "    \"p50_ms\": {:.3},", report.p50_ms);
    let _ = writeln!(out, "    \"p99_ms\": {:.3},", report.p99_ms);
    let _ = writeln!(out, "    \"req_per_sec\": {:.1}", report.req_per_sec);
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Runs the loadtest: build, serve (fault-free), warm up, measure, append
/// the record to the trajectory at `config.out`.
pub fn run_loadtest(config: &ServiceConfig) -> Result<LoadReport, String> {
    build_release(&config.root)?;
    let requests = if config.quick { 100 } else { 400 };
    let timeout = Duration::from_secs(20);

    let server = ServeProcess::spawn(&config.root, &["--workers", "2"])?;
    let addr = server.addr.clone();

    let reference = get_line(&addr, "/v1/params/reference", timeout)?;
    if status_code(&reference) != 200 {
        return Err("GET /v1/params/reference failed".to_owned());
    }
    let params = reference
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.trim().to_owned())
        .ok_or("reference response without a body")?;

    for _ in 0..10 {
        let response = post_line(&addr, "/v1/footprint", &params, "", timeout)?;
        if status_code(&response) != 200 {
            return Err(format!("warmup request failed: {response}"));
        }
    }

    let mut latencies_ms = Vec::with_capacity(requests);
    let run_start = Instant::now();
    for _ in 0..requests {
        let start = Instant::now();
        let response = post_line(&addr, "/v1/footprint", &params, "", timeout)?;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        if status_code(&response) != 200 {
            return Err(format!("measured request failed: {response}"));
        }
        latencies_ms.push(elapsed);
    }
    let total_s = run_start.elapsed().as_secs_f64();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let percentile = |p: f64| -> f64 {
        let index = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[index.min(latencies_ms.len() - 1)]
    };
    let report = LoadReport {
        requests,
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
        req_per_sec: requests as f64 / total_s.max(1e-9),
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        label: config.label.clone(),
    };

    let _ = post_line(&addr, "/admin/shutdown", "{}", "", timeout);
    let (exit_ok, _) = server.wait_for_exit(Duration::from_secs(30))?;
    if !exit_ok {
        return Err("act serve exited non-zero after the loadtest".to_owned());
    }

    let record = render_load_record(&report);
    let existing = std::fs::read_to_string(&config.out).unwrap_or_default();
    let body = crate::bench::append_record(&existing, &record);
    std::fs::write(&config.out, &body)
        .map_err(|err| format!("cannot write {}: {err}", config.out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = 42;
        let mut b = 42;
        let first: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let second: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert!(distinct.len() > 4);
    }

    #[test]
    fn json_extractors_pull_fields() {
        let line = "{\"listening\":\"127.0.0.1:8080\",\"workers\":4,\"pid\":123}";
        assert_eq!(json_str(line, "listening"), Some("127.0.0.1:8080"));
        assert_eq!(json_u64(line, "workers"), Some(4));
        assert_eq!(json_u64(line, "pid"), Some(123));
        assert_eq!(json_str(line, "missing"), None);
        assert_eq!(json_u64(line, "missing"), None);
    }

    #[test]
    fn load_record_skips_the_regression_guard() {
        let report = LoadReport {
            requests: 100,
            p50_ms: 1.5,
            p99_ms: 4.0,
            req_per_sec: 600.0,
            unix_time: 1,
            label: Some("pr6".to_owned()),
        };
        let record = render_load_record(&report);
        assert!(record.contains("\"p50_ms\": 1.500"));
        assert!(record.contains("\"p99_ms\": 4.000"));
        assert!(record.contains("\"req_per_sec\": 600.0"));
        // No compiled block ⇒ guard_regression must not fire even against
        // a trajectory that has one.
        let existing = "{\"schema\": \"act-bench-trajectory/2\", \"records\": [\
                        {\"compiled\": {\"points_per_sec\": 1000000}}]}";
        assert_eq!(crate::bench::guard_regression(existing, &record), None);
        // And the record appends into a well-formed trajectory.
        let body = crate::bench::append_record(existing, &record);
        assert_eq!(crate::bench::record_count(&body), 2);
    }

    #[test]
    fn status_codes_parse_from_raw_responses() {
        assert_eq!(status_code("HTTP/1.1 200 OK\r\n\r\n"), 200);
        assert_eq!(status_code("HTTP/1.1 503 Service Unavailable\r\n\r\n"), 503);
        assert_eq!(status_code(""), 0);
        assert_eq!(status_code("garbage"), 0);
    }
}
