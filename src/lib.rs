//! ACT — Architectural Carbon Modeling Tool (Gupta et al., ISCA 2022), as a
//! Rust workspace. This umbrella crate re-exports every sub-crate.
//!
//! # Examples
//!
//! ```
//! use act::core::FabScenario;
//! use act::data::ProcessNode;
//!
//! let cpa = FabScenario::default().carbon_per_area(ProcessNode::N7);
//! assert!(cpa.as_grams_per_cm2() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use act_accel as accel;
pub use act_core as core;
pub use act_data as data;
pub use act_dse as dse;
pub use act_experiments as experiments;
pub use act_lca as lca;
pub use act_soc as soc;
pub use act_ssd as ssd;
pub use act_units as units;
