//! Carbon-aware scheduling on a solar-heavy grid: when should a datacenter
//! run its daily batch job, and how does the residual footprint compare to
//! the servers' amortized embodied carbon?
//!
//! ```text
//! cargo run --example carbon_aware_scheduling
//! ```

use act::core::{FabScenario, IntensityProfile, SystemSpec};
use act::data::{devices, Location};
use act::units::{Energy, Power, TimeSpan};

fn main() {
    // A grid like Taiwan's decarbonizing with 70 % midday solar coverage.
    let grid = IntensityProfile::solar_grid(Location::Taiwan.carbon_intensity(), 0.7);

    println!("Hourly grid intensity (g CO2/kWh):");
    for hour in (0..24).step_by(3) {
        println!("  {:02}:00  {:>6.0}", hour, grid.at_hour(hour).as_grams_per_kwh());
    }
    println!("  daily average {:>6.0}\n", grid.daily_average().as_grams_per_kwh());

    // A 4-hour batch job on a 350 W server.
    let duration_hours = 4;
    let energy: Energy = Power::watts(350.0) * TimeSpan::hours(duration_hours as f64);

    let naive = grid.window_footprint(0, duration_hours, energy);
    let start = grid.cleanest_window_start(duration_hours);
    let scheduled = grid.window_footprint(start, duration_hours, energy);
    println!(
        "4-hour 350 W batch job:\n  run at midnight: {:.0} g CO2\n  \
         run at {start:02}:00 (cleanest window): {:.0} g CO2\n  \
         carbon-aware scheduling saves {:.0}%\n",
        naive.as_grams(),
        scheduled.as_grams(),
        (1.0 - scheduled / naive) * 100.0
    );

    // Perspective: the server's own embodied carbon, amortized per day of
    // a 4-year life, is on the same scale as everything scheduling can
    // save — so manufacturing can no longer be ignored (the ACT thesis).
    let server =
        SystemSpec::from_bom(&devices::DELL_R740).embodied(&FabScenario::default()).total();
    let per_day = server * (1.0 / (4.0 * 365.0));
    println!(
        "Server embodied carbon: {:.0} kg total, {:.0} g per day of a 4-year life.",
        server.as_kilograms(),
        per_day.as_grams()
    );
    println!(
        "Daily scheduling saving ({:.0} g) and the daily embodied bill ({:.0} g) \
         are the same order of magnitude — operational optimization alone \
         cannot finish the job; Reduce/Reuse/Recycle the hardware too.",
        (naive - scheduled).as_grams(),
        per_day.as_grams(),
    );
}
