//! Bottom-up device carbon accounting: tear down real products into their
//! ICs and compare ACT's estimate against the published top-down LCA
//! numbers (paper Figure 4 and Table 12).
//!
//! ```text
//! cargo run --example device_footprint
//! ```

use act::core::{ComponentKind, FabScenario, SystemSpec};
use act::data::{devices, reports};
use act::lca::{table12, top_down_ic_estimate, EioLca};

fn main() {
    let fab = FabScenario::default();

    for (bom, report) in
        [(&devices::IPHONE_11, &reports::IPHONE_11), (&devices::IPAD, &reports::IPAD)]
    {
        let act = SystemSpec::from_bom(bom).embodied(&fab);
        println!("{} — ACT bottom-up estimate:", bom.name);
        for component in act.components() {
            println!("  {:7.2} kg  {}", component.footprint.as_kilograms(), component.label);
        }
        for kind in ComponentKind::ALL {
            let share = act.by_kind(kind) / act.total();
            if share > 0.0 {
                println!("    {:<10} {:>5.1}%", kind.to_string(), share * 100.0);
            }
        }
        println!(
            "  total {:.1} kg vs top-down LCA {:.1} kg\n",
            act.total().as_kilograms(),
            top_down_ic_estimate(report).as_kilograms()
        );
    }

    // Why cost-based LCAs can't guide design:
    let eio = EioLca::semiconductor_sector();
    println!(
        "EIO-LCA would charge a $450 phone board {:.0} kg regardless of its silicon.\n",
        eio.estimate(450.0).as_kilograms()
    );

    // Table 12: node assumptions matter more than anything else.
    println!("Legacy-node LCA vs ACT at the shipping node:");
    for row in table12(&fab) {
        println!(
            "  {:<12} {:<14} LCA {:>8.2} kg | ACT(modern) {:>7.2} kg | overestimate {:>5.1}x",
            row.row.device,
            row.row.category,
            row.row.lca_kg,
            row.ours_node2.as_kilograms(),
            row.lca_overestimate()
        );
    }
}
