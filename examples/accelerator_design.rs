//! The Reduce case study as a library user would run it: size an AI
//! accelerator for a 30 FPS camera pipeline while minimizing embodied
//! carbon (paper Figures 12–13).
//!
//! ```text
//! cargo run --example accelerator_design
//! ```

use act::accel::{AccelConfig, Network};
use act::core::{DesignPoint, FabScenario, OptimizationMetric};
use act::dse::{argmin_feasible, powers_of_two};

const QOS_FPS: f64 = 30.0;

fn main() {
    let fab = FabScenario::default();
    let network = Network::mobile_vision();
    println!(
        "Network: {} ({:.2} GMACs/inference)\n",
        network.name(),
        network.total_macs() / 1e9
    );

    // Sweep the MAC array and collect design points.
    let sweep: Vec<(AccelConfig, DesignPoint, f64)> = powers_of_two(64, 2048)
        .into_iter()
        .map(|macs| {
            let config = AccelConfig::new(macs);
            let eval = config.evaluate(&network);
            let point = DesignPoint {
                embodied: fab.carbon_per_area(config.node()) * config.area(),
                energy: eval.energy(),
                delay: eval.latency(),
                area: config.area(),
            };
            (config, point, eval.throughput().as_per_second())
        })
        .collect();

    println!("{:>6} {:>8} {:>10} {:>12}", "MACs", "FPS", "energy mJ", "embodied g");
    for (config, point, fps) in &sweep {
        println!(
            "{:>6} {:>8.1} {:>10.2} {:>12.1}",
            config.macs(),
            fps,
            point.energy.as_millijoules(),
            point.embodied.as_grams()
        );
    }

    // What each optimization target would pick.
    println!("\nMetric optima:");
    for metric in OptimizationMetric::ALL {
        let best = sweep
            .iter()
            .min_by(|a, b| metric.score(&a.1).partial_cmp(&metric.score(&b.1)).unwrap())
            .unwrap();
        println!(
            "  {:<5} -> {:>4} MACs ({})",
            metric.to_string(),
            best.0.macs(),
            metric.use_case()
        );
    }

    // The QoS-driven carbon optimum.
    let idx = argmin_feasible(&sweep, |s| s.1.embodied.as_grams(), |s| s.2 >= QOS_FPS)
        .expect("a configuration meets the QoS bar");
    let (config, point, fps) = &sweep[idx];
    println!(
        "\nLeanest design meeting {QOS_FPS} FPS: {} MACs \
         ({fps:.1} FPS, {:.1} g CO2 embodied)",
        config.macs(),
        point.embodied.as_grams()
    );
    let widest = sweep.last().unwrap();
    println!(
        "The performance-optimal {} MAC design costs {:.1}x more embodied carbon.",
        widest.0.macs(),
        widest.1.embodied / point.embodied
    );
}
