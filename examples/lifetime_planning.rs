//! The Recycle case study for fleets: how long should devices live, given
//! that newer hardware is more efficient but each replacement costs
//! embodied carbon (paper Figure 14)?
//!
//! ```text
//! cargo run --example lifetime_planning
//! ```

use act::data::MOBILE_SOCS;
use act::soc::{annual_efficiency_improvement, ReplacementModel};

fn main() {
    let rate = annual_efficiency_improvement(&MOBILE_SOCS);
    println!(
        "Measured annual efficiency improvement across {} SoCs: {:.2}x\n",
        MOBILE_SOCS.len(),
        rate
    );

    let model = ReplacementModel::mobile_study(rate);
    println!(
        "{:>11} {:>8} {:>10} {:>13} {:>8}",
        "lifetime yr", "devices", "embodied", "operational", "total"
    );
    for lifetime in 1..=model.horizon_years {
        println!(
            "{:>11} {:>8} {:>10.2} {:>13.2} {:>8.2}{}",
            lifetime,
            model.devices_needed(lifetime),
            model.embodied_total(lifetime),
            model.operational_total(lifetime),
            model.total(lifetime),
            if lifetime == model.optimal_lifetime_years() { "  <- optimal" } else { "" }
        );
    }

    let opt = model.optimal_lifetime_years();
    let current = (model.total(2) + model.total(3)) / 2.0;
    println!(
        "\nExtending lifetimes from today's 2-3 years to {opt} years cuts the \
         10-year footprint by {:.2}x.",
        current / model.total(opt)
    );

    // Sensitivity: what if hardware stopped improving, or improved faster?
    println!("\nSensitivity to the improvement rate:");
    for rate in [1.05, 1.10, 1.21, 1.40, 1.60] {
        let m = ReplacementModel::mobile_study(rate);
        println!(
            "  {:.2}x/year -> optimal lifetime {} years",
            rate,
            m.optimal_lifetime_years()
        );
    }
}
