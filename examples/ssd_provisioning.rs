//! The Recycle case study: pick an SSD over-provisioning factor that
//! survives a second life, cross-checking the analytical write-amplification
//! model against the FTL simulator (paper Figure 15).
//!
//! ```text
//! cargo run --example ssd_provisioning
//! ```

use act::ssd::{
    analytical_write_amplification, effective_embodied, FtlConfig, FtlSimulator, LifetimeModel,
    OverProvisioning, TracePattern, WriteTrace,
};

fn main() {
    let model = LifetimeModel::default();
    println!(
        "Lifetime model: PEC={}, DWPD={}, Rcompress={}\n",
        model.program_erase_cycles, model.disk_writes_per_day, model.compression_rate
    );

    println!(
        "{:>5} {:>10} {:>10} {:>9} {:>14} {:>14}",
        "PF", "WA model", "WA (sim)", "life yr", "1st-life CO2", "2nd-life CO2"
    );
    let baseline = effective_embodied(OverProvisioning::new(0.04).unwrap(), 2.0, &model);
    let mut best_first = (f64::INFINITY, 0.0);
    let mut best_second = (f64::INFINITY, 0.0);
    for step in 0..7 {
        let pf = OverProvisioning::new(0.04 + 0.06 * f64::from(step)).unwrap();
        let wa = analytical_write_amplification(pf);

        // Empirical cross-check on a small simulated device.
        let config = FtlConfig::small(pf);
        let mut ftl = FtlSimulator::new(config);
        let mut trace = WriteTrace::new(TracePattern::UniformRandom, config.logical_pages(), 1);
        let wa_sim = ftl.measure_steady_state_wa(&mut trace, 30_000);

        let first = effective_embodied(pf, 2.0, &model) / baseline;
        let second = effective_embodied(pf, 4.0, &model) / baseline;
        if first < best_first.0 {
            best_first = (first, pf.get());
        }
        if second < best_second.0 {
            best_second = (second, pf.get());
        }
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>9.2} {:>14.2} {:>14.2}",
            pf.to_string(),
            wa,
            wa_sim,
            model.lifetime_years(pf),
            first,
            second
        );
    }

    println!(
        "\nFirst-life optimum: {:.0}% over-provisioning; \
         enabling a second life requires {:.0}%.",
        best_first.1 * 100.0,
        best_second.1 * 100.0
    );
    println!(
        "Per service-year, the second-life drive embodies {:.2}x less carbon.",
        (best_first.0 / 2.0) / (best_second.0 / 4.0)
    );
}
