//! How fab decarbonization and gaseous abatement change the per-area carbon
//! of every process node — and when a co-processor becomes worth its
//! silicon (paper Figures 6 and 10).
//!
//! ```text
//! cargo run --example green_fab
//! ```

use act::core::{FabScenario, OperationalModel};
use act::data::snapdragon845::{profile, Engine, NODE};
use act::data::{Abatement, EnergySource, ProcessNode};
use act::units::TimeSpan;

fn main() {
    // Per-area carbon across the node roadmap under three fab scenarios.
    println!(
        "{:<12} {:>16} {:>18} {:>14}",
        "node", "Taiwan grid", "25% renewable", "100% solar"
    );
    for node in ProcessNode::ALL {
        println!(
            "{:<12} {:>13.2} kg {:>15.2} kg {:>11.2} kg",
            node.to_string(),
            FabScenario::taiwan_grid().carbon_per_area(node).as_kilograms_per_cm2(),
            FabScenario::default().carbon_per_area(node).as_kilograms_per_cm2(),
            FabScenario::renewable().carbon_per_area(node).as_kilograms_per_cm2(),
        );
    }

    // Abatement bounds at the leading edge.
    let n3 = ProcessNode::N3;
    println!("\n3nm gas emissions per cm^2 by abatement strategy:");
    for abatement in Abatement::ALL {
        println!(
            "  {:<12} {:>6.0} g",
            abatement.to_string(),
            n3.gas_per_area(abatement).as_grams_per_cm2()
        );
    }

    // Reuse trade-off: how many inferences until the GPU co-processor's
    // embodied carbon is paid back, per grid.
    println!("\nGPU co-processor payback (vs CPU inference) by use-phase grid:");
    let fab = FabScenario::default();
    let cpa = fab.carbon_per_area(NODE);
    let extra_embodied = cpa * profile(Engine::Gpu).block_area();
    let saving = profile(Engine::Cpu).energy_per_inference()
        - profile(Engine::Gpu).energy_per_inference();
    for source in
        [EnergySource::Coal, EnergySource::Gas, EnergySource::Solar, EnergySource::Wind]
    {
        let op = OperationalModel::new(source.carbon_intensity());
        let per_inference = op.footprint(saving);
        let inferences = extra_embodied.ratio(per_inference);
        let at_30fps = TimeSpan::seconds(inferences / 30.0);
        println!(
            "  {:<12} {:>12.2e} inferences ({:>6.1} days at 30 FPS)",
            source.to_string(),
            inferences,
            at_30fps.as_seconds() / 86_400.0
        );
    }
    println!("\nGreener grids push the payback horizon out — reuse beats specialization.");
}
