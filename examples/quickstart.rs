//! Quickstart: estimate the carbon footprint of a phone-class system and
//! see how the operational/embodied balance shifts with the grid.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use act::core::{total_footprint, FabScenario, OperationalModel, SystemSpec};
use act::data::{DramTechnology, Location, ProcessNode, SsdTechnology};
use act::units::{Area, Capacity, Power, TimeSpan};

fn main() {
    // 1. Describe the hardware: a 7 nm SoC, 8 GB LPDDR4, 128 GB NAND,
    //    three packaged ICs.
    let phone = SystemSpec::builder()
        .soc("application processor", Area::square_millimeters(90.0), ProcessNode::N7)
        .dram(DramTechnology::Lpddr4, Capacity::gigabytes(8.0))
        .ssd(SsdTechnology::V3NandTlc, Capacity::gigabytes(128.0))
        .packaged_ics(3)
        .build();

    // 2. Embodied emissions under the paper's default fab scenario.
    let embodied = phone.embodied(&FabScenario::default());
    println!("Embodied carbon: {:.2} kg CO2", embodied.total().as_kilograms());
    for component in embodied.components() {
        println!(
            "  {:<12} {:<22} {:7.1} g",
            component.kind.to_string(),
            component.label,
            component.footprint.as_grams()
        );
    }

    // 3. Operational emissions: 2 W average draw, 2 h of active use per
    //    day over a 3-year life, on different grids.
    let daily_energy = Power::watts(2.0) * TimeSpan::hours(2.0);
    let lifetime = TimeSpan::years(3.0);
    let days = lifetime.as_seconds() / TimeSpan::days(1.0).as_seconds();

    println!("\nLifetime footprint (3 years, 2 h/day at 2 W):");
    for location in [Location::India, Location::UnitedStates, Location::Iceland] {
        let op = OperationalModel::new(location.carbon_intensity());
        let opcf = op.footprint(daily_energy * days);
        let total = total_footprint(opcf, embodied.total(), lifetime, lifetime);
        println!(
            "  {:<14} operational {:6.2} kg + embodied {:5.2} kg = {:6.2} kg CO2",
            location.to_string(),
            opcf.as_kilograms(),
            embodied.total().as_kilograms(),
            total.as_kilograms()
        );
    }

    println!(
        "\nTakeaway: on clean grids the embodied share dominates — \
         exactly the shift the ACT paper is about."
    );
}
