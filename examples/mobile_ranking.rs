//! Rank thirteen commodity mobile SoCs under classic and carbon-aware
//! metrics, driving the `act-soc` simulator for the performance side
//! (paper Figure 8).
//!
//! ```text
//! cargo run --example mobile_ranking
//! ```

use act::core::{DesignPoint, FabScenario, OptimizationMetric, SystemSpec};
use act::data::MOBILE_SOCS;
use act::soc::{geekbench_suite, SocSimulator};
use act::units::TimeSpan;

fn main() {
    let fab = FabScenario::default();
    let suite = geekbench_suite();

    let mut rows = Vec::new();
    for soc in &MOBILE_SOCS {
        // Simulate the seven-workload suite on this SoC.
        let result = SocSimulator::new(soc).run_suite(&suite);
        let embodied = SystemSpec::builder()
            .soc(soc.name, soc.die_area(), soc.node)
            .dram(soc.dram, soc.dram_capacity())
            .packaged_ics(2)
            .build()
            .embodied(&fab)
            .total();
        let delay = TimeSpan::seconds(1e6 / result.score);
        let point =
            DesignPoint { embodied, energy: soc.tdp() * delay, delay, area: soc.die_area() };
        rows.push((soc, result, point));
    }

    println!(
        "{:<16} {:>6} {:>9} {:>10} {:>12}",
        "SoC", "node", "score", "energy kJ", "embodied kg"
    );
    for (soc, result, point) in &rows {
        println!(
            "{:<16} {:>6} {:>9.0} {:>10.1} {:>12.2}",
            soc.name,
            soc.node.to_string(),
            result.score,
            point.energy.as_joules() / 1e3,
            point.embodied.as_kilograms()
        );
    }

    println!("\nWinners by metric (simulated performance):");
    for metric in OptimizationMetric::ALL {
        let best = rows
            .iter()
            .min_by(|a, b| metric.score(&a.2).partial_cmp(&metric.score(&b.2)).unwrap())
            .unwrap();
        println!("  {:<5} -> {}", metric.to_string(), best.0.name);
    }
    let min_embodied =
        rows.iter().min_by(|a, b| a.2.embodied.partial_cmp(&b.2.embodied).unwrap()).unwrap();
    println!("  lowest embodied -> {}", min_embodied.0.name);
}
