//! Uncertainty quantification: how confident can a carbon label be?
//! Propagates yield, fab-energy and abatement uncertainty through the
//! embodied model with Monte-Carlo sampling and the Figure-6 bounds.
//!
//! ```text
//! cargo run --example uncertainty
//! ```

use act::core::{FabScenario, SystemSpec};
use act::data::{devices, Abatement};
use act::dse::{monte_carlo, triangular};
use act::units::{CarbonIntensity, Fraction};

fn main() {
    let spec = SystemSpec::from_bom(&devices::IPHONE_11);

    // Point estimate and analytical bounds (Figure 6's band).
    let default_fab = FabScenario::default();
    let point = spec.embodied(&default_fab).total();
    let (lower, upper) = spec.embodied_bounds(&default_fab);
    println!(
        "iPhone 11 ICs — point estimate {:.1} kg CO2, analytical band [{:.1}, {:.1}] kg",
        point.as_kilograms(),
        lower.as_kilograms(),
        upper.as_kilograms()
    );

    // Monte Carlo over the three fab unknowns.
    let stats = monte_carlo(5_000, 2022, |rng| {
        // Yield: expert-judgment triangular around 0.875.
        let y = triangular(rng, 0.7, 0.875, 0.98);
        // Fab energy CI: anywhere between mostly-solar and the full grid.
        let ci = rng.gen_range(150.0..583.0);
        // Abatement: fabs report 95-99 %.
        let abatement = match rng.gen_range(0..3_u32) {
            0 => Abatement::Percent95,
            1 => Abatement::Percent97,
            _ => Abatement::Percent99,
        };
        let fab = FabScenario::with_intensity(CarbonIntensity::grams_per_kwh(ci))
            .with_yield(Fraction::new(y).expect("triangular stays in range"))
            .with_abatement(abatement);
        spec.embodied(&fab).total().as_kilograms()
    });

    println!("\nMonte Carlo over yield x fab CI x abatement ({} samples):", stats.samples);
    println!(
        "  mean {:.1} kg   p05 {:.1} kg   median {:.1} kg   p95 {:.1} kg",
        stats.mean, stats.p05, stats.p50, stats.p95
    );
    println!("  relative p05-p95 spread: {:.0}% of the mean", stats.relative_spread() * 100.0);
    println!(
        "\nA device carbon label quoted without its fab assumptions can be \
         off by tens of percent — publish the scenario with the number."
    );
}
