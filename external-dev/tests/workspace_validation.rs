//! Randomized companions to the workspace validation tests (the
//! deterministic versions live at `tests/validation.rs` in the main
//! workspace): fallible model APIs stay total over randomized in-domain
//! and adversarial inputs.

use act::core::ModelParams;
use act::dse::try_sweep;
use proptest::prelude::*;

proptest! {
    #[test]
    fn in_domain_params_always_yield_finite_nonnegative_footprints(
        exec_s in 60.0f64..1e6,
        lifetime in 0.5f64..10.0,
        area in 1.0f64..500.0,
        use_ci in 10.0f64..1500.0,
        fab_ci in 10.0f64..1500.0,
        fab_yield in 0.5f64..1.0,
        energy in 0.0f64..1e9,
    ) {
        let mut p = ModelParams::mobile_reference();
        p.execution_time_s = exec_s;
        p.lifetime_years = lifetime;
        p.soc_area_mm2 = area;
        p.use_intensity_g_per_kwh = use_ci;
        p.fab_intensity_g_per_kwh = fab_ci;
        p.fab_yield = fab_yield;
        p.energy_j = energy;
        let footprint = p.try_footprint().expect("params are in-domain");
        prop_assert!(footprint.as_grams().is_finite());
        prop_assert!(footprint.as_grams() >= 0.0);
        let embodied = p.try_embodied().expect("params are in-domain");
        prop_assert!(embodied.total().as_grams().is_finite());
    }

    #[test]
    fn arbitrary_lifetime_sweeps_never_panic(
        lifetimes in prop::collection::vec(prop::num::f64::ANY, 0..20),
    ) {
        let n = lifetimes.len();
        let outcome = try_sweep(lifetimes, |lt| {
            let mut p = ModelParams::mobile_reference();
            p.lifetime_years = *lt;
            p.try_footprint()
        });
        prop_assert_eq!(outcome.total_points(), n);
        prop_assert_eq!(outcome.results.len() + outcome.rejected_count(), n);
    }
}
