//! Determinism and equivalence properties of the parallel evaluation
//! engine: `par_sweep == sweep`, parallel-vs-serial Monte-Carlo bitwise
//! equality, and the skyline `pareto_indices` against the quadratic
//! reference oracle.

use act_dse::{
    monte_carlo, par_monte_carlo_with, par_sweep_finite_with, par_sweep_with,
    par_try_monte_carlo_with, par_try_sweep_with, pareto_indices, pareto_indices_reference,
    sweep, sweep_finite, try_monte_carlo, try_sweep, Parallelism,
};
use act_rng::Rng;
use proptest::prelude::*;

fn threads(n: usize) -> Parallelism {
    Parallelism::threads(n)
}

proptest! {
    #[test]
    fn par_sweep_equals_serial_sweep(
        params in proptest::collection::vec(-1e6f64..1e6, 0..200),
        workers in 1usize..9,
    ) {
        let model = |x: &f64| x.mul_add(3.0, 1.0).abs().sqrt();
        let serial = sweep(params.clone(), model);
        let parallel = par_sweep_with(threads(workers), params, model);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn par_try_sweep_equals_serial_try_sweep(
        params in proptest::collection::vec(-100i64..100, 0..200),
        workers in 1usize..9,
    ) {
        let model = |x: &i64| {
            if x % 7 == 0 { Err(format!("multiple of seven: {x}")) } else { Ok(x * x) }
        };
        let serial = try_sweep(params.clone(), model);
        let parallel = par_try_sweep_with(threads(workers), params, model);
        prop_assert_eq!(&serial.results, &parallel.results);
        prop_assert_eq!(&serial.rejected, &parallel.rejected);
    }

    #[test]
    fn par_sweep_finite_equals_serial_sweep_finite(
        params in proptest::collection::vec(-10.0f64..10.0, 0..200),
        workers in 1usize..9,
    ) {
        // Poles at 0 produce infinities that must be rejected identically.
        let model = |x: &f64| 1.0 / x;
        let serial = sweep_finite(params.clone(), model);
        let parallel = par_sweep_finite_with(threads(workers), params, model);
        prop_assert_eq!(&serial.results, &parallel.results);
        prop_assert_eq!(&serial.rejected, &parallel.rejected);
    }

    #[test]
    fn par_monte_carlo_is_bitwise_thread_count_invariant(
        seed in any::<u64>(),
        samples in 1usize..3000,
        workers in 2usize..9,
    ) {
        let model = |rng: &mut Rng| {
            let y: f64 = rng.gen_range(0.5..1.5);
            1370.0 / y
        };
        let serial = par_monte_carlo_with(Parallelism::Serial, samples, seed, model);
        let parallel = par_monte_carlo_with(threads(workers), samples, seed, model);
        // PartialEq on McStats is f64 equality — bit-for-bit stats.
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn par_try_monte_carlo_is_bitwise_thread_count_invariant(
        seed in any::<u64>(),
        samples in 1usize..3000,
        workers in 2usize..9,
    ) {
        let model = |rng: &mut Rng| {
            let y: f64 = rng.gen_range(-0.2..1.0);
            1.0 / y.max(0.0)
        };
        let serial = par_try_monte_carlo_with(Parallelism::Serial, samples, seed, model);
        let parallel = par_try_monte_carlo_with(threads(workers), samples, seed, model);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_apis_unchanged_by_engine(
        seed in any::<u64>(),
        samples in 1usize..500,
    ) {
        // The legacy single-RNG entry points still agree with themselves
        // run-to-run (regression guard for the shared-RNG schedule).
        let model = |rng: &mut Rng| rng.gen_range(0.0..1.0);
        prop_assert_eq!(monte_carlo(samples, seed, model), monte_carlo(samples, seed, model));
        let a = try_monte_carlo(samples, seed, model);
        let b = try_monte_carlo(samples, seed, model);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pareto_skyline_matches_quadratic_oracle_2d(
        points in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 2), 0..120),
    ) {
        prop_assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    }

    #[test]
    fn pareto_skyline_matches_quadratic_oracle_kd(
        dims in 1usize..5,
        n in 0usize..80,
        raw in proptest::collection::vec(-3.0f64..3.0, 0..400),
    ) {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..dims).map(|d| raw.get((i * dims + d) % raw.len().max(1)).copied()
                .unwrap_or(0.0)).collect())
            .collect();
        prop_assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    }

    #[test]
    fn pareto_skyline_keeps_duplicates_like_oracle(
        base in proptest::collection::vec(
            proptest::collection::vec(0.0f64..2.0, 2), 1..40),
        dupes in 1usize..4,
    ) {
        // Duplicate a prefix of the cloud so exact ties are guaranteed.
        let mut points = base.clone();
        for _ in 0..dupes {
            points.extend(base.iter().take(3).cloned());
        }
        prop_assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    }

    #[test]
    fn pareto_skyline_handles_discrete_grids(
        points in proptest::collection::vec(
            proptest::collection::vec(0i8..4, 3), 0..60),
    ) {
        // Integer-valued coordinates force heavy tie/duplicate pressure.
        let points: Vec<Vec<f64>> =
            points.into_iter().map(|p| p.into_iter().map(f64::from).collect()).collect();
        prop_assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    }
}

#[test]
fn pareto_nan_and_signed_zero_edge_cases_match_reference() {
    let clouds: Vec<Vec<Vec<f64>>> = vec![
        vec![vec![f64::NAN, 0.0], vec![0.0, 0.0], vec![1.0, 1.0]],
        vec![vec![-0.0, 0.0], vec![0.0, -0.0], vec![0.0, 0.0]],
        vec![vec![f64::INFINITY, 1.0], vec![1.0, f64::INFINITY], vec![2.0, 2.0]],
        vec![vec![f64::NEG_INFINITY, 5.0], vec![0.0, 5.0]],
    ];
    for cloud in clouds {
        assert_eq!(pareto_indices(&cloud), pareto_indices_reference(&cloud), "cloud {cloud:?}");
    }
}

#[test]
fn one_dimensional_oracle_including_ties() {
    let points: Vec<Vec<f64>> =
        [3.0, 1.0, 2.0, 1.0, 1.0, 9.0].iter().map(|&v| vec![v]).collect();
    assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    assert_eq!(pareto_indices(&points), vec![1, 3, 4]);
}
