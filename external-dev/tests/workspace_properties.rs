//! Cross-crate property-based tests: invariants of the carbon model and
//! the substrates under randomized inputs.

use act::accel::{AccelConfig, Network};
use act::core::{
    total_footprint, DesignPoint, FabScenario, OperationalModel, OptimizationMetric, SystemSpec,
};
use act::data::{DramTechnology, ProcessNode, SsdTechnology};
use act::ssd::{analytical_write_amplification, LifetimeModel, OverProvisioning};
use act::units::{Area, Capacity, CarbonIntensity, Energy, Fraction, MassCo2, TimeSpan};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = ProcessNode> {
    prop::sample::select(ProcessNode::ALL.to_vec())
}

fn any_dram() -> impl Strategy<Value = DramTechnology> {
    prop::sample::select(DramTechnology::ALL.to_vec())
}

fn any_ssd() -> impl Strategy<Value = SsdTechnology> {
    prop::sample::select(SsdTechnology::ALL.to_vec())
}

proptest! {
    #[test]
    fn embodied_is_monotone_in_die_area(
        node in any_node(),
        area in 1.0f64..500.0,
        extra in 1.0f64..500.0,
    ) {
        let fab = FabScenario::default();
        let small = SystemSpec::builder()
            .soc("die", Area::square_millimeters(area), node)
            .build()
            .embodied(&fab)
            .total();
        let big = SystemSpec::builder()
            .soc("die", Area::square_millimeters(area + extra), node)
            .build()
            .embodied(&fab)
            .total();
        prop_assert!(big > small);
    }

    #[test]
    fn embodied_is_additive_over_components(
        node in any_node(),
        dram in any_dram(),
        ssd in any_ssd(),
        area in 1.0f64..400.0,
        dram_gb in 1.0f64..64.0,
        ssd_gb in 8.0f64..2048.0,
        ics in 0u32..64,
    ) {
        let fab = FabScenario::default();
        let combined = SystemSpec::builder()
            .soc("die", Area::square_millimeters(area), node)
            .dram(dram, Capacity::gigabytes(dram_gb))
            .ssd(ssd, Capacity::gigabytes(ssd_gb))
            .packaged_ics(ics)
            .build()
            .embodied(&fab)
            .total();
        let parts = SystemSpec::builder()
            .soc("die", Area::square_millimeters(area), node)
            .build()
            .embodied(&fab)
            .total()
            + SystemSpec::builder()
                .dram(dram, Capacity::gigabytes(dram_gb))
                .build()
                .embodied(&fab)
                .total()
            + SystemSpec::builder()
                .ssd(ssd, Capacity::gigabytes(ssd_gb))
                .build()
                .embodied(&fab)
                .total()
            + SystemSpec::builder().packaged_ics(ics).build().embodied(&fab).total();
        prop_assert!((combined.as_grams() - parts.as_grams()).abs()
            <= combined.as_grams().abs() * 1e-12 + 1e-9);
    }

    #[test]
    fn lower_yield_never_lowers_cpa(
        node in any_node(),
        y1 in 0.3f64..1.0,
        y2 in 0.3f64..1.0,
    ) {
        let (lo, hi) = if y1 <= y2 { (y1, y2) } else { (y2, y1) };
        let low = FabScenario::default().with_yield(Fraction::new(lo).unwrap());
        let high = FabScenario::default().with_yield(Fraction::new(hi).unwrap());
        prop_assert!(low.carbon_per_area(node) >= high.carbon_per_area(node));
    }

    #[test]
    fn cleaner_fab_energy_never_raises_cpa(
        node in any_node(),
        ci1 in 0.0f64..900.0,
        ci2 in 0.0f64..900.0,
    ) {
        let (lo, hi) = if ci1 <= ci2 { (ci1, ci2) } else { (ci2, ci1) };
        let clean = FabScenario::with_intensity(CarbonIntensity::grams_per_kwh(lo));
        let dirty = FabScenario::with_intensity(CarbonIntensity::grams_per_kwh(hi));
        prop_assert!(clean.carbon_per_area(node) <= dirty.carbon_per_area(node));
    }

    #[test]
    fn total_footprint_is_monotone_in_runtime(
        op_g in 0.0f64..1e6,
        emb_g in 0.0f64..1e6,
        t1 in 0.0f64..10.0,
        t2 in 0.0f64..10.0,
        lt in 0.5f64..10.0,
    ) {
        let (short, long) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let f = |t: f64| total_footprint(
            MassCo2::grams(op_g),
            MassCo2::grams(emb_g),
            TimeSpan::years(t),
            TimeSpan::years(lt),
        );
        prop_assert!(f(short) <= f(long));
    }

    #[test]
    fn full_lifetime_use_charges_full_embodied(
        op_g in 0.0f64..1e6,
        emb_g in 0.0f64..1e6,
        lt in 0.5f64..10.0,
    ) {
        let cf = total_footprint(
            MassCo2::grams(op_g),
            MassCo2::grams(emb_g),
            TimeSpan::years(lt),
            TimeSpan::years(lt),
        );
        prop_assert!((cf.as_grams() - (op_g + emb_g)).abs() <= (op_g + emb_g) * 1e-12 + 1e-9);
    }

    #[test]
    fn operational_model_is_linear(
        ci in 0.0f64..1000.0,
        kwh in 0.0f64..1e4,
        k in 0.1f64..10.0,
    ) {
        let op = OperationalModel::new(CarbonIntensity::grams_per_kwh(ci));
        let base = op.footprint(Energy::kilowatt_hours(kwh));
        let scaled = op.footprint(Energy::kilowatt_hours(kwh * k));
        prop_assert!((scaled.as_grams() - base.as_grams() * k).abs()
            <= scaled.as_grams().abs() * 1e-9 + 1e-9);
    }

    #[test]
    fn metric_scores_scale_with_their_exponents(
        c in 1.0f64..1e4,
        e in 1.0f64..1e4,
        d in 1e-3f64..1e2,
        a in 1e-2f64..1e2,
        k in 1.1f64..4.0,
    ) {
        let point = DesignPoint {
            embodied: MassCo2::grams(c),
            energy: Energy::joules(e),
            delay: TimeSpan::seconds(d),
            area: Area::square_centimeters(a),
        };
        let doubled_c = DesignPoint { embodied: MassCo2::grams(c * k), ..point };
        // CDP and CEP are linear in C; C2EP is quadratic.
        let lin = OptimizationMetric::Cep.score(&doubled_c)
            / OptimizationMetric::Cep.score(&point);
        let quad = OptimizationMetric::C2ep.score(&doubled_c)
            / OptimizationMetric::C2ep.score(&point);
        prop_assert!((lin - k).abs() <= k * 1e-9);
        prop_assert!((quad - k * k).abs() <= k * k * 1e-9);
    }

    #[test]
    fn wa_is_monotone_and_floored(pf1 in 0.01f64..1.0, pf2 in 0.01f64..1.0) {
        let (lo, hi) = if pf1 <= pf2 { (pf1, pf2) } else { (pf2, pf1) };
        let wa_lo = analytical_write_amplification(OverProvisioning::new(lo).unwrap());
        let wa_hi = analytical_write_amplification(OverProvisioning::new(hi).unwrap());
        prop_assert!(wa_lo >= wa_hi);
        prop_assert!(wa_hi >= 1.0);
    }

    #[test]
    fn ssd_lifetime_grows_with_over_provisioning(
        pf1 in 0.01f64..1.0,
        pf2 in 0.01f64..1.0,
    ) {
        let (lo, hi) = if pf1 <= pf2 { (pf1, pf2) } else { (pf2, pf1) };
        let model = LifetimeModel::default();
        prop_assert!(
            model.lifetime_years(OverProvisioning::new(lo).unwrap())
                <= model.lifetime_years(OverProvisioning::new(hi).unwrap())
        );
    }

    #[test]
    fn wider_accelerators_are_faster_but_heavier(m in 6u32..11) {
        let narrow = AccelConfig::new(1 << m);
        let wide = AccelConfig::new(1 << (m + 1));
        let network = Network::mobile_vision();
        prop_assert!(wide.evaluate(&network).latency() < narrow.evaluate(&network).latency());
        prop_assert!(wide.area() > narrow.area());
    }

    #[test]
    fn accelerator_energy_bounded_under_node_scaling(nm in 7u32..40) {
        let config = AccelConfig::new(512).with_nanometers(nm);
        let eval = config.evaluate(&Network::mobile_vision());
        prop_assert!(eval.energy().as_joules() > 0.0);
        prop_assert!(eval.energy().as_joules() < 1.0, "runaway energy at {nm} nm");
    }
}
