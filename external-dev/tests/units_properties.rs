//! Property-based tests for the unit algebra.

use act_units::{
    Area, Capacity, CarbonIntensity, Energy, Fraction, MassCo2, MassPerArea, MassPerCapacity,
    Power, Throughput, TimeSpan, UnitErrorKind,
};
use proptest::prelude::*;

/// Magnitudes that every `try_*` constructor must reject: NaN, ±∞ and
/// finite negatives.
fn invalid_magnitude() -> impl Strategy<Value = f64> {
    prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY), -1e12f64..-1e-12,]
}

fn finite() -> impl Strategy<Value = f64> {
    -1e9..1e9
}

fn positive() -> impl Strategy<Value = f64> {
    1e-6..1e9
}

proptest! {
    #[test]
    fn mass_addition_commutes(a in finite(), b in finite()) {
        let (x, y) = (MassCo2::grams(a), MassCo2::grams(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn mass_addition_associates(a in -1e6f64..1e6, b in -1e6f64..1e6, c in -1e6f64..1e6) {
        let (x, y, z) = (MassCo2::grams(a), MassCo2::grams(b), MassCo2::grams(c));
        let lhs = (x + y) + z;
        let rhs = x + (y + z);
        prop_assert!((lhs.as_grams() - rhs.as_grams()).abs() <= 1e-6);
    }

    #[test]
    fn subtraction_inverts_addition(a in finite(), b in finite()) {
        let (x, y) = (MassCo2::grams(a), MassCo2::grams(b));
        let round = (x + y) - y;
        prop_assert!((round.as_grams() - a).abs() <= a.abs().max(b.abs()) * 1e-12 + 1e-12);
    }

    #[test]
    fn kg_gram_round_trip(kg in finite()) {
        let m = MassCo2::kilograms(kg);
        prop_assert!((m.as_kilograms() - kg).abs() <= kg.abs() * 1e-12 + 1e-15);
    }

    #[test]
    fn kwh_joule_round_trip(kwh in finite()) {
        let e = Energy::kilowatt_hours(kwh);
        prop_assert!((e.as_kilowatt_hours() - kwh).abs() <= kwh.abs() * 1e-12 + 1e-15);
    }

    #[test]
    fn area_mm2_cm2_round_trip(mm2 in finite()) {
        let a = Area::square_millimeters(mm2);
        prop_assert!((a.as_square_millimeters() - mm2).abs() <= mm2.abs() * 1e-12 + 1e-15);
    }

    #[test]
    fn years_seconds_round_trip(y in finite()) {
        let t = TimeSpan::years(y);
        prop_assert!((t.as_years() - y).abs() <= y.abs() * 1e-12 + 1e-15);
    }

    #[test]
    fn power_time_energy_consistency(w in positive(), s in positive()) {
        let e = Power::watts(w) * TimeSpan::seconds(s);
        prop_assert!((e.as_joules() - w * s).abs() <= (w * s).abs() * 1e-12);
        let p = e / TimeSpan::seconds(s);
        prop_assert!((p.as_watts() - w).abs() <= w * 1e-9);
    }

    #[test]
    fn intensity_scaling_is_linear(ci in positive(), kwh in positive(), k in 1e-3f64..1e3) {
        let intensity = CarbonIntensity::grams_per_kwh(ci);
        let base = intensity * Energy::kilowatt_hours(kwh);
        let scaled = intensity * Energy::kilowatt_hours(kwh * k);
        prop_assert!((scaled.as_grams() - base.as_grams() * k).abs()
            <= (base.as_grams() * k).abs() * 1e-9);
    }

    #[test]
    fn cpa_distributes_over_area(cpa in positive(), a in positive(), b in positive()) {
        let rate = MassPerArea::grams_per_cm2(cpa);
        let whole = rate * Area::square_centimeters(a + b);
        let parts = rate * Area::square_centimeters(a) + rate * Area::square_centimeters(b);
        prop_assert!((whole.as_grams() - parts.as_grams()).abs()
            <= whole.as_grams().abs() * 1e-9);
    }

    #[test]
    fn cps_monotone_in_capacity(cps in positive(), small in positive(), extra in positive()) {
        let rate = MassPerCapacity::grams_per_gb(cps);
        let lo = rate * Capacity::gigabytes(small);
        let hi = rate * Capacity::gigabytes(small + extra);
        prop_assert!(hi >= lo);
    }

    #[test]
    fn blend_stays_between_endpoints(lo in 0.0f64..500.0, hi in 500.0f64..1000.0, s in 0.0f64..1.0) {
        let a = CarbonIntensity::grams_per_kwh(hi);
        let b = CarbonIntensity::grams_per_kwh(lo);
        let mix = a.blended_with(b, s);
        prop_assert!(mix.as_grams_per_kwh() <= hi + 1e-9);
        prop_assert!(mix.as_grams_per_kwh() >= lo - 1e-9);
    }

    #[test]
    fn fraction_construction_matches_range(v in -2.0f64..3.0) {
        let result = Fraction::new(v);
        prop_assert_eq!(result.is_ok(), (0.0..=1.0).contains(&v));
    }

    #[test]
    fn fraction_complement_involution(v in 0.0f64..=1.0) {
        let f = Fraction::new(v).unwrap();
        prop_assert!((f.complement().complement().get() - v).abs() <= 1e-12);
    }

    #[test]
    fn ratio_is_scale_free(g in positive(), k in 1e-3f64..1e3) {
        let a = MassCo2::grams(g);
        let b = MassCo2::grams(g * k);
        prop_assert!((b.ratio(a) - k).abs() <= k * 1e-9);
    }

    #[test]
    fn try_constructors_reject_invalid_magnitudes(v in invalid_magnitude()) {
        prop_assert!(MassCo2::try_grams(v).is_err());
        prop_assert!(MassCo2::try_kilograms(v).is_err());
        prop_assert!(MassCo2::try_tonnes(v).is_err());
        prop_assert!(Energy::try_joules(v).is_err());
        prop_assert!(Energy::try_kilowatt_hours(v).is_err());
        prop_assert!(Power::try_watts(v).is_err());
        prop_assert!(Area::try_square_centimeters(v).is_err());
        prop_assert!(Area::try_square_millimeters(v).is_err());
        prop_assert!(Capacity::try_gigabytes(v).is_err());
        prop_assert!(Capacity::try_terabytes(v).is_err());
        prop_assert!(TimeSpan::try_seconds(v).is_err());
        prop_assert!(TimeSpan::try_years(v).is_err());
        prop_assert!(Throughput::try_per_second(v).is_err());
        prop_assert!(CarbonIntensity::try_grams_per_kwh(v).is_err());
    }

    #[test]
    fn try_constructor_error_kind_matches_cause(v in invalid_magnitude()) {
        let err = MassCo2::try_grams(v).unwrap_err();
        let expected = if v.is_finite() {
            UnitErrorKind::OutOfDomain
        } else {
            UnitErrorKind::NonFinite
        };
        prop_assert_eq!(err.kind(), expected);
        // The error always carries the offending value verbatim.
        prop_assert!(err.value().is_nan() == v.is_nan());
        if !v.is_nan() {
            prop_assert_eq!(err.value(), v);
        }
    }

    #[test]
    fn try_constructors_accept_valid_magnitudes(v in 0.0f64..1e12) {
        let m = MassCo2::try_grams(v).unwrap();
        prop_assert!((m.as_grams() - v).abs() <= v.abs() * 1e-12);
        prop_assert!(Energy::try_kilowatt_hours(v).is_ok());
        prop_assert!(Area::try_square_millimeters(v).is_ok());
        prop_assert!(TimeSpan::try_years(v).is_ok());
    }

    #[test]
    fn ensure_finite_accepts_finite_products(w in positive(), s in positive()) {
        let e = Power::watts(w) * TimeSpan::seconds(s);
        prop_assert!(e.ensure_finite("energy").is_ok());
    }
}
