//! Property tests pinning the compiled-kernel contract: for every valid
//! `ModelParams` and every subset of free axes, [`CompiledFootprint::eval`]
//! is **bit-for-bit** identical to substituting the point into the params
//! and calling the interpreted oracle [`ModelParams::try_footprint`] — and
//! the `act_core::memo` caches never change a result, under concurrency
//! included.

use act_core::{memo, CompiledFootprint, FreeAxis, ModelParams};
use act_data::{DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_units::Capacity;
use proptest::prelude::*;

/// The seven scalar (non-storage) axes, in a fixed order for masking.
const SCALAR_AXES: [FreeAxis; 7] = [
    FreeAxis::ExecutionTime,
    FreeAxis::Lifetime,
    FreeAxis::SocArea,
    FreeAxis::UseIntensity,
    FreeAxis::FabIntensity,
    FreeAxis::FabYield,
    FreeAxis::Energy,
];

/// Randomized `ModelParams` drawn strictly inside Table 1's valid ranges,
/// with 0–2 entries per storage population.
fn arb_params() -> impl Strategy<Value = ModelParams> {
    let scalars = (
        0.0f64..1e6,    // execution_time_s
        0.1f64..50.0,   // lifetime_years
        0u32..8,        // packaged_ic_count
        0.0f64..1500.0, // soc_area_mm2
        0usize..ProcessNode::ALL.len(),
        0.0f64..2000.0, // use intensity
        0.0f64..2000.0, // fab intensity
        0.05f64..1.0,   // fab yield
        0.0f64..1e9,    // energy_j
    );
    let dram =
        proptest::collection::vec((0usize..DramTechnology::ALL.len(), 0.0f64..2048.0), 0..3);
    let ssd =
        proptest::collection::vec((0usize..SsdTechnology::ALL.len(), 0.0f64..4096.0), 0..3);
    let hdd = proptest::collection::vec((0usize..HddModel::ALL.len(), 0.0f64..8192.0), 0..3);
    (scalars, dram, ssd, hdd).prop_map(
        |((t, lt, nr, area, node, ciu, cif, y, e), dram, ssd, hdd)| ModelParams {
            execution_time_s: t,
            lifetime_years: lt,
            packaged_ic_count: nr,
            soc_area_mm2: area,
            process_node: ProcessNode::ALL[node],
            use_intensity_g_per_kwh: ciu,
            fab_intensity_g_per_kwh: cif,
            fab_yield: y,
            dram: dram.into_iter().map(|(i, gb)| (DramTechnology::ALL[i], gb)).collect(),
            ssd: ssd.into_iter().map(|(i, gb)| (SsdTechnology::ALL[i], gb)).collect(),
            hdd: hdd.into_iter().map(|(i, gb)| (HddModel::ALL[i], gb)).collect(),
            energy_j: e,
        },
    )
}

/// Selects a subset of the axes available for `params` from the bits of
/// `mask`: seven scalar axes first, then one capacity axis per storage
/// population entry.
fn free_axes(params: &ModelParams, mask: u32) -> Vec<FreeAxis> {
    let mut axes = Vec::new();
    let mut bit = 0u32;
    let mut take = |axis: FreeAxis| {
        if mask & (1 << bit) != 0 {
            axes.push(axis);
        }
        bit += 1;
    };
    for axis in SCALAR_AXES {
        take(axis);
    }
    for k in 0..params.dram.len() {
        take(FreeAxis::DramCapacity(k));
    }
    for k in 0..params.ssd.len() {
        take(FreeAxis::SsdCapacity(k));
    }
    for k in 0..params.hdd.len() {
        take(FreeAxis::HddCapacity(k));
    }
    axes
}

/// Maps a unit draw `u ∈ [0, 1)` onto a valid coordinate for `axis`.
fn coordinate(axis: FreeAxis, u: f64) -> f64 {
    match axis {
        FreeAxis::ExecutionTime => u * 1e6,
        FreeAxis::Lifetime => 0.1 + u * 49.0,
        FreeAxis::SocArea => u * 1500.0,
        FreeAxis::UseIntensity | FreeAxis::FabIntensity => u * 2000.0,
        FreeAxis::FabYield => 0.05 + u * 0.95,
        FreeAxis::Energy => u * 1e9,
        FreeAxis::DramCapacity(_) | FreeAxis::SsdCapacity(_) | FreeAxis::HddCapacity(_) => {
            u * 4096.0
        }
    }
}

/// The interpreted oracle: substitute the point into a clone of `params`
/// field-by-field, then run the full per-point pipeline.
fn oracle(params: &ModelParams, axes: &[FreeAxis], point: &[f64]) -> f64 {
    let mut substituted = params.clone();
    for (axis, value) in axes.iter().zip(point) {
        match axis {
            FreeAxis::ExecutionTime => substituted.execution_time_s = *value,
            FreeAxis::Lifetime => substituted.lifetime_years = *value,
            FreeAxis::SocArea => substituted.soc_area_mm2 = *value,
            FreeAxis::UseIntensity => substituted.use_intensity_g_per_kwh = *value,
            FreeAxis::FabIntensity => substituted.fab_intensity_g_per_kwh = *value,
            FreeAxis::FabYield => substituted.fab_yield = *value,
            FreeAxis::Energy => substituted.energy_j = *value,
            FreeAxis::DramCapacity(k) => substituted.dram[*k].1 = *value,
            FreeAxis::SsdCapacity(k) => substituted.ssd[*k].1 = *value,
            FreeAxis::HddCapacity(k) => substituted.hdd[*k].1 = *value,
        }
    }
    substituted.try_footprint().expect("substituted params stay valid").as_grams()
}

proptest! {
    /// The headline property: any axis subset, any in-range point —
    /// compiled and interpreted paths agree to the last bit.
    #[test]
    fn compiled_eval_matches_try_footprint_bitwise(
        params in arb_params(),
        mask in any::<u32>(),
        draws in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let axes = free_axes(&params, mask);
        let kernel = match CompiledFootprint::try_compile(&params, &axes) {
            Ok(kernel) => kernel,
            Err(err) => panic!("valid params must compile: {err}"),
        };
        prop_assert_eq!(kernel.arity(), axes.len());
        prop_assert_eq!(kernel.axes(), axes.as_slice());
        let point: Vec<f64> = axes
            .iter()
            .zip(&draws)
            .map(|(axis, u)| coordinate(*axis, *u))
            .collect();
        let compiled = kernel.eval(&point);
        let interpreted = oracle(&params, &axes, &point);
        prop_assert_eq!(
            compiled.to_bits(),
            interpreted.to_bits(),
            "axes {:?}: compiled {} vs interpreted {}",
            axes, compiled, interpreted
        );
    }

    /// Arity-zero kernels fold the whole model into one constant equal to
    /// the oracle's result for the baseline.
    #[test]
    fn fully_folded_kernel_matches_baseline_footprint(params in arb_params()) {
        let kernel = match CompiledFootprint::try_compile(&params, &[]) {
            Ok(kernel) => kernel,
            Err(err) => panic!("valid params must compile: {err}"),
        };
        let baseline = params.try_footprint().expect("valid params evaluate").as_grams();
        prop_assert_eq!(kernel.eval(&[]).to_bits(), baseline.to_bits());
    }

    /// `try_eval` never disagrees with `eval` on in-range points.
    #[test]
    fn try_eval_agrees_with_eval_on_valid_points(
        params in arb_params(),
        mask in any::<u32>(),
        draws in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let axes = free_axes(&params, mask);
        let kernel = match CompiledFootprint::try_compile(&params, &axes) {
            Ok(kernel) => kernel,
            Err(err) => panic!("valid params must compile: {err}"),
        };
        let point: Vec<f64> = axes
            .iter()
            .zip(&draws)
            .map(|(axis, u)| coordinate(*axis, *u))
            .collect();
        let unchecked = kernel.eval(&point);
        match kernel.try_eval(&point) {
            Ok(checked) => prop_assert_eq!(checked.to_bits(), unchecked.to_bits()),
            // `try_eval` additionally rejects non-finite totals; `eval`
            // must then have produced exactly such a value.
            Err(_) => prop_assert!(!unchecked.is_finite()),
        }
    }

    /// The memo caches are transparent: kernels compiled with interning
    /// disabled and enabled evaluate identically (the cache may only ever
    /// return what the direct computation would).
    #[test]
    fn memoization_never_changes_a_compiled_result(
        params in arb_params(),
        mask in any::<u32>(),
        draws in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let axes = free_axes(&params, mask);
        let point: Vec<f64> = axes
            .iter()
            .zip(&draws)
            .map(|(axis, u)| coordinate(*axis, *u))
            .collect();
        memo::set_enabled(false);
        let cold = CompiledFootprint::compile(&params, &axes).eval(&point);
        memo::set_enabled(true);
        let warm = CompiledFootprint::compile(&params, &axes).eval(&point);
        prop_assert_eq!(cold.to_bits(), warm.to_bits());
    }
}

/// Hammers the sharded caches from eight threads with a shared key set and
/// checks every hit against the direct computation, bit for bit.
#[test]
fn memo_cache_is_bitwise_consistent_under_concurrent_access() {
    memo::set_enabled(true);
    let params = ModelParams::mobile_reference();
    let fab = params.try_fab_scenario().expect("reference fab scenario");
    let capacities = [0.0, 1.0, 8.0, 128.0, 2048.0];

    // Direct (uncached) expectations, computed once up front.
    let expected_cpa: Vec<u64> = ProcessNode::ALL
        .iter()
        .map(|node| fab.carbon_per_area(*node).as_grams_per_cm2().to_bits())
        .collect();
    let expected_dram: Vec<u64> = capacities
        .iter()
        .map(|gb| {
            (DramTechnology::Lpddr4.carbon_per_gb() * Capacity::gigabytes(*gb))
                .as_grams()
                .to_bits()
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..200 {
                    for (node, want) in ProcessNode::ALL.iter().zip(&expected_cpa) {
                        let got = memo::carbon_per_area(&fab, *node).as_grams_per_cm2();
                        assert_eq!(got.to_bits(), *want, "cpa({node:?}) diverged");
                    }
                    for (gb, want) in capacities.iter().zip(&expected_dram) {
                        let got = memo::dram_embodied(
                            DramTechnology::Lpddr4,
                            Capacity::gigabytes(*gb),
                        )
                        .as_grams();
                        assert_eq!(got.to_bits(), *want, "dram({gb} GB) diverged");
                    }
                }
            });
        }
    });
}
