//! Intentionally empty: this package exists to host the proptest test
//! suites (`tests/`) and criterion benchmarks (`benches/`) that need
//! registry dependencies. The main workspace is hermetic — see the
//! manifest header and DESIGN.md ("Dependency policy") for why these
//! suites cannot live next to the code they test.
