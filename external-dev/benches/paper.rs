//! One benchmark per paper artifact: each iteration regenerates the full
//! figure/table and prints nothing. The measured time is the cost of the
//! complete reproduction pipeline (model evaluation, sweeps, simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("bench_fig1", |b| b.iter(|| black_box(act_experiments::fig1::run())));
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("bench_fig4", |b| b.iter(|| black_box(act_experiments::fig4::run())));
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("bench_fig6", |b| b.iter(|| black_box(act_experiments::fig6::run())));
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("bench_fig7", |b| b.iter(|| black_box(act_experiments::fig7::run())));
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("bench_fig8", |b| b.iter(|| black_box(act_experiments::fig8::run())));
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("bench_fig9", |b| b.iter(|| black_box(act_experiments::fig9::run())));
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("bench_fig10", |b| b.iter(|| black_box(act_experiments::fig10::run())));
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("bench_fig11", |b| b.iter(|| black_box(act_experiments::fig11::run())));
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("bench_fig12", |b| b.iter(|| black_box(act_experiments::fig12::run())));
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("bench_fig13", |b| b.iter(|| black_box(act_experiments::fig13::run())));
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("bench_fig14", |b| b.iter(|| black_box(act_experiments::fig14::run())));
}

fn bench_fig15(c: &mut Criterion) {
    // The FTL simulation makes this the heaviest artifact; keep sampling
    // modest so `cargo bench` stays interactive.
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group
        .bench_function("bench_fig15", |b| b.iter(|| black_box(act_experiments::fig15::run())));
    group.finish();
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("bench_fig16", |b| b.iter(|| black_box(act_experiments::fig16::run())));
}

fn bench_fig17(c: &mut Criterion) {
    c.bench_function("bench_fig17", |b| b.iter(|| black_box(act_experiments::fig17::run())));
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("bench_table4", |b| b.iter(|| black_box(act_experiments::table4::run())));
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("bench_tables", |b| {
        b.iter(|| black_box(act_experiments::tables::run().to_string()))
    });
}

fn bench_table12(c: &mut Criterion) {
    c.bench_function("bench_table12", |b| {
        b.iter(|| black_box(act_experiments::table12::run()))
    });
}

criterion_group!(
    paper,
    bench_fig1,
    bench_fig4,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_table4,
    bench_tables,
    bench_table12,
);
criterion_main!(paper);
