//! Compiled-kernel benchmarks: the per-point footprint pipeline versus
//! [`CompiledFootprint`] over a 10k-point single-axis sweep — the numbers
//! behind the ISSUE acceptance bar (≥5× on the compiled path) and the
//! `cargo xtask bench` regression guard. Every bench cross-checks that the
//! fast path is bit-identical to the slow one before timing it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use act_core::{memo, CompiledFootprint, FreeAxis, ModelParams};
use act_dse::{
    logspace, par_monte_carlo_compiled_with, sweep_compiled, BatchOutput, McBuffer,
    Parallelism, PointBatch,
};

/// Point count for the headline single-axis sweep.
const SWEEP_POINTS: usize = 10_000;

/// The swept axis: SoC area in mm² across a mobile-to-server range.
fn area_axis() -> Vec<f64> {
    logspace(10.0, 1000.0, SWEEP_POINTS)
}

/// Per-point reference evaluation: clone the params, substitute the axis
/// value, run the full pipeline.
fn naive_eval(params: &ModelParams, area_mm2: f64) -> f64 {
    let mut point = params.clone();
    point.soc_area_mm2 = area_mm2;
    point.footprint().as_grams()
}

/// The per-point path: full `ModelParams` pipeline per evaluation (fab
/// scenario, system spec, component vector rebuilt every point).
fn per_point_sweep(c: &mut Criterion) {
    let params = ModelParams::mobile_reference();
    let areas = area_axis();
    c.bench_function("footprint_sweep_per_point_10k", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for area in &areas {
                total += naive_eval(&params, *area);
            }
            black_box(total)
        })
    });
}

/// The compiled path: partial evaluation once, then a handful of FLOPs per
/// point with zero heap allocation.
fn compiled_sweep(c: &mut Criterion) {
    let params = ModelParams::mobile_reference();
    let areas = area_axis();
    let kernel = CompiledFootprint::compile(&params, &[FreeAxis::SocArea]);
    // Cross-check bit-identity against the per-point path before timing.
    for area in &areas {
        assert_eq!(
            kernel.eval(&[*area]).to_bits(),
            naive_eval(&params, *area).to_bits(),
            "compiled kernel diverged from the per-point pipeline"
        );
    }
    let batch = PointBatch::single_axis(areas);
    let mut out = BatchOutput::new();
    c.bench_function("footprint_sweep_compiled_10k", |b| {
        b.iter(|| {
            sweep_compiled(&batch, |point| kernel.eval(point), &mut out);
            black_box(out.values().last().copied())
        })
    });
}

/// The memoized per-point path (`--naive` off, cache hot): measures how
/// much of the gap interning alone closes without compiling.
fn memoized_per_point_sweep(c: &mut Criterion) {
    let params = ModelParams::mobile_reference();
    let areas = area_axis();
    memo::set_enabled(true);
    c.bench_function("footprint_sweep_memoized_10k", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for area in &areas {
                total += naive_eval(&params, *area);
            }
            black_box(total)
        })
    });
}

/// Compiled Monte-Carlo: uncertain fab yield through a two-axis kernel,
/// reusing the sample buffer across iterations.
fn compiled_monte_carlo(c: &mut Criterion) {
    let params = ModelParams::mobile_reference();
    let kernel = CompiledFootprint::compile(&params, &[FreeAxis::SocArea, FreeAxis::FabYield]);
    let mut buf = McBuffer::new();
    c.bench_function("footprint_mc_compiled_20k", |b| {
        b.iter(|| {
            let result = par_monte_carlo_compiled_with(
                Parallelism::Serial,
                20_000,
                42,
                2,
                |rng, point| {
                    point[0] = rng.gen_range(60.0..120.0);
                    point[1] = rng.gen_range(0.7..1.0);
                },
                |point| kernel.eval(point),
                &mut buf,
            );
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(err) => panic!("mobile reference stays finite: {err}"),
            };
            black_box(outcome.stats.mean)
        })
    });
}

criterion_group!(
    benches,
    per_point_sweep,
    memoized_per_point_sweep,
    compiled_sweep,
    compiled_monte_carlo
);
criterion_main!(benches);
