//! Parallel-engine benchmarks: serial-vs-parallel sweep throughput,
//! Monte-Carlo scaling, and the skyline `pareto_indices` against the
//! quadratic reference. These are the numbers behind the ISSUE acceptance
//! bar (>=2x on a 10k-point sweep) and feed `cargo xtask bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use act_dse::{
    monte_carlo, par_monte_carlo_with, par_sweep_with, pareto_indices,
    pareto_indices_reference, sweep, Parallelism,
};
use act_rng::Rng;

/// Point count for the headline sweep comparison.
const SWEEP_POINTS: usize = 10_000;
/// Monte-Carlo sample count.
const MC_SAMPLES: usize = 20_000;
/// Point-cloud size where the quadratic reference is still affordable.
const PARETO_POINTS: usize = 5_000;
/// Larger cloud for the skyline-only scaling measurement.
const PARETO_POINTS_LARGE: usize = 50_000;

/// A deliberately arithmetic-heavy per-point model, shaped like one
/// embodied-carbon evaluation (hundreds of flops, no allocation).
fn heavy_model(x: &f64) -> f64 {
    let mut acc = *x;
    for _ in 0..256 {
        acc = (acc + 1.0).sqrt() + (acc + 2.0).ln();
    }
    acc
}

/// Deterministic 2-D point cloud from a splitmix-style generator so the
/// pareto benches measure the same input every run without `rand`.
fn point_cloud(n: usize) -> Vec<Vec<f64>> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mantissa = (state >> 11) as f64;
        mantissa / (1u64 << 53) as f64
    };
    (0..n).map(|_| vec![next(), next()]).collect()
}

fn bench_sweep_10k(c: &mut Criterion) {
    let inputs = act_dse::logspace(1.0, 1_000.0, SWEEP_POINTS);
    let mut group = c.benchmark_group("sweep_10k");
    group.sample_size(10);
    group
        .bench_function("serial", |b| b.iter(|| black_box(sweep(inputs.clone(), heavy_model))));
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(par_sweep_with(Parallelism::Auto, inputs.clone(), heavy_model)))
    });
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let model = |rng: &mut Rng| {
        let yield_fraction: f64 = rng.gen_range(0.5..1.0);
        let energy: f64 = rng.gen_range(10.0..100.0);
        energy / yield_fraction
    };
    let mut group = c.benchmark_group("monte_carlo_20k");
    group.sample_size(10);
    group.bench_function("serial_legacy", |b| {
        b.iter(|| black_box(monte_carlo(MC_SAMPLES, 7, model)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(par_monte_carlo_with(Parallelism::Auto, MC_SAMPLES, 7, model)))
    });
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let cloud = point_cloud(PARETO_POINTS);
    let large = point_cloud(PARETO_POINTS_LARGE);
    let mut group = c.benchmark_group("pareto");
    group.sample_size(10);
    group.bench_function("reference_quadratic_5k", |b| {
        b.iter(|| black_box(pareto_indices_reference(&cloud)))
    });
    group.bench_function("skyline_5k", |b| b.iter(|| black_box(pareto_indices(&cloud))));
    group.bench_function("skyline_50k", |b| b.iter(|| black_box(pareto_indices(&large))));
    group.finish();
}

criterion_group!(engine, bench_sweep_10k, bench_monte_carlo, bench_pareto);
criterion_main!(engine);
