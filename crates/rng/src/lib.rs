//! Deterministic pseudo-random number generation for the ACT workspace.
//!
//! Monte-Carlo uncertainty propagation and SSD trace synthesis need a
//! reproducible stream of draws — not cryptographic randomness — and they
//! need it without pulling the `rand` crate into the hermetic tier-1 build.
//! This crate provides:
//!
//! * [`Rng`] — a xoshiro256++ generator seeded through SplitMix64 state
//!   expansion, the textbook construction from Blackman & Vigna. Seeding
//!   from a `u64` is total (every seed, including 0, yields a well-mixed
//!   non-zero state).
//! * [`split_seed`] — the per-sample seed-splitting function the
//!   Monte-Carlo engine uses to give every sample index its own
//!   statistically independent stream, which is what makes results
//!   bit-for-bit identical across any thread count.
//! * Uniform, range, Bernoulli and normal (Box-Muller) draws with the same
//!   method names the `rand` crate used (`gen`, `gen_range`, `gen_bool`),
//!   so call sites migrate without churn.
//!
//! Determinism contract: the output of every method on [`Rng`] for a given
//! seed is **pinned** — regression tests in this crate hard-code reference
//! draws, and the workspace's Monte-Carlo golden values depend on them.
//! Any change to the algorithms here is a breaking change to every
//! committed golden value and must regenerate them in the same commit.
//!
//! # Examples
//!
//! ```
//! use act_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let u: f64 = rng.gen();            // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&u));
//! let lane = rng.gen_range(0..8u64); // unbiased integer range
//! assert!(lane < 8);
//! // Same seed, same stream:
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.gen::<f64>(), u);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Weyl-sequence increment for SplitMix64 (the fractional part of the
/// golden ratio scaled to 64 bits).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One step of the SplitMix64 output function: mixes `state` into a
/// uniformly distributed `u64`. Pure — the caller owns the Weyl increment.
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the independent per-sample seed for `index` under `master`.
///
/// This is the seed-splitting contract behind deterministic parallel
/// Monte-Carlo: sample `i` always draws from `Rng::seed_from_u64(
/// split_seed(master, i))` regardless of which thread evaluates it, so
/// results are bit-for-bit identical across thread counts.
#[inline]
#[must_use]
pub fn split_seed(master: u64, index: u64) -> u64 {
    splitmix64(master.wrapping_add(index.wrapping_mul(GOLDEN_GAMMA)))
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// State is 256 bits expanded from a 64-bit seed via SplitMix64, which
/// guarantees the all-zero state (a fixed point of xoshiro) is unreachable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds a generator from a single `u64`. Every seed is valid.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0_u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(GOLDEN_GAMMA);
            *slot = splitmix64(state);
        }
        Self { s }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw of type `T` — `rng.gen::<f64>()` yields `[0, 1)`.
    ///
    /// The name matches the `rand` crate's method so migrated call sites
    /// read identically.
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from a half-open range, e.g. `rng.gen_range(0.0..1.0)`
    /// or `rng.gen_range(0..pages)`. Integer ranges use rejection sampling
    /// (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A standard-normal draw via Box-Muller.
    ///
    /// Consumes exactly two uniform draws per call (the second transform
    /// output is discarded so the per-call draw count stays fixed — that
    /// keeps interleaved draw sequences easy to reason about in tests).
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1]: avoids ln(0) without branching on a rejection loop.
        let u1 = 1.0 - self.gen::<f64>();
        let u2: f64 = self.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }
}

/// Types with a canonical "standard" distribution under [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard(rng: &mut Rng) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the high 53 bits (the full mantissa).
    #[inline]
    fn sample_standard(rng: &mut Rng) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let mantissa = (rng.next_u64() >> 11) as f64;
        mantissa * (1.0 / (1_u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut Rng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Types drawable from a half-open `Range` under [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range(rng: &mut Rng, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    #[inline]
    fn sample_range(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end - range.start;
        range.start + span * rng.gen::<f64>()
    }
}

impl SampleRange for u64 {
    fn sample_range(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end - range.start;
        range.start + sample_below(rng, span)
    }
}

impl SampleRange for usize {
    fn sample_range(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = (range.end - range.start) as u64;
        let drawn = sample_below(rng, span);
        // span came from a usize subtraction, so drawn < span fits usize.
        range.start + drawn as usize
    }
}

impl SampleRange for u32 {
    fn sample_range(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = u64::from(range.end - range.start);
        let drawn = sample_below(rng, span);
        // drawn < span <= u32::MAX + 1, so the narrowing is lossless.
        range.start + drawn as u32
    }
}

/// Uniform draw in `[0, bound)` by rejection sampling: reject the final
/// partial block of the u64 space so every residue is equally likely.
#[inline]
fn sample_below(rng: &mut Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Values at or above `limit` fall in the biased partial block.
    let limit = u64::MAX - u64::MAX % bound;
    loop {
        let draw = rng.next_u64();
        if draw < limit {
            return draw % bound;
        }
    }
}

/// A uniform `[0, bound)` sampler with the per-`bound` arithmetic hoisted
/// out of the draw loop.
///
/// `Rng::gen_range(0..bound)` spends two 64-bit divisions per draw (the
/// rejection limit and the reduction itself), which profiling showed
/// dominated trace generation in the SSD simulator. `UniformU64::new`
/// pays those once: the limit is cached and the reduction becomes a
/// 128-bit multiply by a precomputed magic (Lemire's exact fast-modulo).
///
/// Determinism contract: `sample` consumes the generator and maps draws
/// **bit-for-bit identically** to `rng.gen_range(0..bound)` — same
/// rejection rule, same residues — so the two are interchangeable under
/// every committed golden value.
///
/// # Examples
///
/// ```
/// use act_rng::{Rng, UniformU64};
///
/// let dist = UniformU64::new(10_000);
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// for _ in 0..100 {
///     assert_eq!(dist.sample(&mut a), b.gen_range(0..10_000));
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformU64 {
    bound: u64,
    /// Power-of-two bounds reduce with a mask, exactly like `gen_range`.
    is_pow2: bool,
    /// `bound - 1` when `bound` is a power of two, else unused.
    mask: u64,
    /// First draw value falling in the biased partial block (non-pow2 path).
    limit: u64,
    /// `ceil(2^128 / bound)`: multiplying a draw by this and taking the
    /// high 128 bits of the product times `bound` yields `draw % bound`
    /// exactly for every `u64` draw (bound < 2^64).
    magic: u128,
}

impl UniformU64 {
    /// Builds the sampler for `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero, matching `gen_range`'s empty-range
    /// contract.
    #[must_use]
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "cannot sample empty range");
        if bound.is_power_of_two() {
            Self { bound, is_pow2: true, mask: bound - 1, limit: u64::MAX, magic: 0 }
        } else {
            Self {
                bound,
                is_pow2: false,
                mask: 0,
                limit: u64::MAX - u64::MAX % bound,
                magic: u128::MAX / u128::from(bound) + 1,
            }
        }
    }

    /// The exclusive upper bound.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draws one value uniformly from `[0, bound)`.
    #[inline]
    #[must_use]
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.is_pow2 {
            return rng.next_u64() & self.mask;
        }
        loop {
            let draw = rng.next_u64();
            if draw < self.limit {
                // draw % bound via the magic: high 128 bits of
                // (magic * draw mod 2^128) * bound.
                let lowbits = self.magic.wrapping_mul(u128::from(draw));
                return mul_high_128(lowbits, self.bound);
            }
        }
    }
}

/// `floor(a * b / 2^128)` for a 128-bit `a` and 64-bit `b`, without
/// overflow: split `a` and recombine the partial products.
#[inline]
fn mul_high_128(a: u128, b: u64) -> u64 {
    let a_hi = (a >> 64) as u64;
    let a_lo = a as u64;
    let carry = (u128::from(a_lo) * u128::from(b)) >> 64;
    #[allow(clippy::cast_possible_truncation)]
    {
        ((u128::from(a_hi) * u128::from(b) + carry) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The magic-multiply reduction must equal `%` for every draw — spot
    /// checked across awkward bounds (tiny, near-pow2, huge) and the full
    /// edge set of draw values.
    #[test]
    fn uniform_magic_matches_modulo_exactly() {
        let bounds = [
            1,
            2,
            3,
            5,
            7,
            63,
            64,
            65,
            12_800,
            15_753,
            u32::MAX as u64,
            u64::MAX / 2 + 1,
            u64::MAX,
        ];
        let mut rng = Rng::seed_from_u64(99);
        for &bound in &bounds {
            let dist = UniformU64::new(bound);
            assert_eq!(dist.bound(), bound);
            let mut twin_a = Rng::seed_from_u64(bound);
            let mut twin_b = twin_a.clone();
            for _ in 0..4096 {
                assert_eq!(
                    dist.sample(&mut twin_a),
                    twin_b.gen_range(0..bound),
                    "bound {bound}"
                );
            }
            if !bound.is_power_of_two() {
                // Direct reduction check on raw values, including extremes.
                for draw in [
                    0,
                    1,
                    bound - 1,
                    bound,
                    bound.saturating_add(1),
                    u64::MAX - 1,
                    u64::MAX,
                    rng.next_u64(),
                ] {
                    let lowbits = dist.magic.wrapping_mul(u128::from(draw));
                    assert_eq!(mul_high_128(lowbits, bound), draw % bound, "bound {bound}");
                }
            }
        }
    }

    /// The reference output pins the implementation: xoshiro256++ seeded
    /// with SplitMix64(seed = 1). Changing either algorithm breaks this
    /// test *and* every Monte-Carlo golden value in the workspace — see
    /// the crate docs before touching it.
    #[test]
    fn raw_stream_is_pinned() {
        let mut rng = Rng::seed_from_u64(1);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            draws,
            vec![
                0xcfc5_d07f_6f03_c29b,
                0xbf42_4132_963f_e08d,
                0x19a3_7d57_57aa_f520,
                0xbf08_119f_05cd_56d6,
            ]
        );
    }

    #[test]
    fn seeding_is_total_and_deterministic() {
        for seed in [0, 1, u64::MAX, 0xDEAD_BEEF] {
            let mut a = Rng::seed_from_u64(seed);
            let mut b = Rng::seed_from_u64(seed);
            assert_ne!(a.s, [0, 0, 0, 0], "seed {seed} produced the zero state");
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(8);
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn unit_uniform_stays_in_half_open_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u} outside [0,1)");
        }
    }

    #[test]
    fn unit_uniform_mean_is_centered() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} far from 0.5");
    }

    #[test]
    fn float_range_covers_and_respects_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        let (mut lo_third, mut hi_third) = (0_u32, 0_u32);
        for _ in 0..30_000 {
            let v = rng.gen_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&v));
            if v < 0.0 {
                lo_third += 1;
            }
            if v > 2.0 {
                hi_third += 1;
            }
        }
        assert!(lo_third > 8_000, "low third undersampled: {lo_third}");
        assert!(hi_third > 8_000, "high third undersampled: {hi_third}");
    }

    #[test]
    fn integer_ranges_are_exhaustive_and_unbiased() {
        let mut rng = Rng::seed_from_u64(9);
        let mut counts = [0_u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7_usize)] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(&count),
                "value {value} drawn {count} times (expected ~10000)"
            );
        }
        // Power-of-two fast path and u64/u32 surfaces.
        for _ in 0..1_000 {
            assert!(rng.gen_range(0..8_u64) < 8);
            assert!((3..13_u32).contains(&rng.gen_range(3..13_u32)));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(1);
        let _ = rng.gen_range(5..5_usize);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "p=0.25 hit {hits}/100000");
        let mut rng = Rng::seed_from_u64(13);
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        let mut rng = Rng::seed_from_u64(13);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        #[allow(clippy::cast_precision_loss)]
        let count = n as f64;
        let mean = draws.iter().sum::<f64>() / count;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / count;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "normal variance {var}");
        let scaled = Rng::seed_from_u64(17).normal_with(10.0, 2.0);
        let base = Rng::seed_from_u64(17).normal();
        assert!((scaled - (10.0 + 2.0 * base)).abs() < 1e-12);
    }

    #[test]
    fn split_seed_matches_splitmix_weyl_sequence() {
        let master: u64 = 0x1234_5678_9ABC_DEF0;
        for index in [0_u64, 1, 2, 1_000_000] {
            let expected = splitmix64(master.wrapping_add(index.wrapping_mul(GOLDEN_GAMMA)));
            assert_eq!(split_seed(master, index), expected);
        }
        // Adjacent indices yield unrelated seeds.
        assert_ne!(split_seed(master, 0), split_seed(master, 1));
        assert_ne!(
            split_seed(master, 0) ^ split_seed(master, 1),
            split_seed(master, 1) ^ split_seed(master, 2)
        );
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = Rng::seed_from_u64(23);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
