//! The energy model: MAC switching energy, DRAM traffic with small-buffer
//! refetch, and array leakage.

use act_units::{Energy, Power, TimeSpan};

use crate::config::AccelConfig;
use crate::layer::Network;

/// Energy per MAC operation at 16 nm, picojoules (datapath + local SRAM).
const MAC_ENERGY_PJ: f64 = 1.5;

/// DRAM energy per inference at 16 nm for the 3.8 GMAC reference network
/// when the on-chip buffer holds a full weight tile, millijoules.
const DRAM_BASE_MJ: f64 = 1.9;

/// MACs per inference of the reference network the DRAM constant is
/// calibrated for; other networks scale proportionally.
const REFERENCE_MACS: f64 = 3.8e9;

/// Array width at which the conv buffer first holds a full weight tile;
/// narrower arrays re-fetch weights from DRAM.
const REFETCH_KNEE_MACS: f64 = 512.0;

/// Refetch growth exponent below the knee.
const REFETCH_EXP: f64 = 1.1;

/// Fixed leakage of the controller/buffer block at 16 nm, milliwatts.
const STATIC_BASE_MW: f64 = 20.0;

/// Per-MAC leakage at 16 nm, milliwatts.
const STATIC_PER_MAC_MW: f64 = 0.35;

/// Total energy for one inference of a `batch`-element batch: the weight
/// refetch component amortizes over the batch.
pub(crate) fn per_inference_batched(
    config: &AccelConfig,
    network: &Network,
    latency: TimeSpan,
    batch: u32,
) -> Energy {
    // Switching energy scales linearly with feature size (lower V at
    // smaller nodes), leakage with the node scale as well.
    let s = config.node_scale();
    let macs = network.total_macs();

    let compute = Energy::joules(macs * MAC_ENERGY_PJ * 1e-12 * s);

    let refetch = ((REFETCH_KNEE_MACS / f64::from(config.macs())).powf(REFETCH_EXP).max(1.0)
        - 1.0)
        / f64::from(batch)
        + 1.0;
    let dram = Energy::millijoules(DRAM_BASE_MJ * (macs / REFERENCE_MACS) * refetch);

    let static_power =
        Power::milliwatts((STATIC_BASE_MW + STATIC_PER_MAC_MW * f64::from(config.macs())) * s);
    let leakage = static_power * latency;

    compute + dram + leakage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_amortizes_refetch_on_narrow_arrays() {
        let net = Network::mobile_vision();
        let narrow = AccelConfig::new(64);
        let single = narrow.evaluate(&net).energy();
        let batched = narrow.evaluate_batched(&net, 8).energy();
        assert!(batched < single * 0.7, "batched {batched} vs single {single}");
        // Wide arrays have nothing to amortize.
        let wide = AccelConfig::new(2048);
        let wide_single = wide.evaluate(&net).energy();
        let wide_batched = wide.evaluate_batched(&net, 8).energy();
        assert!((wide_batched.ratio(wide_single) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unit_batch_equals_single_inference() {
        let net = Network::mobile_vision();
        let c = AccelConfig::new(256);
        assert_eq!(c.evaluate(&net), c.evaluate_batched(&net, 1));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _ = AccelConfig::new(64).evaluate_batched(&Network::mobile_vision(), 0);
    }

    fn energy(macs: u32) -> f64 {
        AccelConfig::new(macs).evaluate(&Network::mobile_vision()).energy().as_millijoules()
    }

    #[test]
    fn energy_magnitudes_are_millijoule_scale() {
        for m in [64, 256, 1024] {
            let e = energy(m);
            assert!((5.0..60.0).contains(&e), "{m} MACs -> {e} mJ");
        }
    }

    #[test]
    fn narrow_arrays_pay_dram_refetch() {
        // Below the 512-MAC knee energy rises steeply as arrays narrow.
        assert!(energy(64) > 1.5 * energy(256));
        assert!(energy(128) > 1.2 * energy(256));
    }

    #[test]
    fn wide_arrays_pay_leakage() {
        assert!(energy(2048) > energy(512));
    }

    #[test]
    fn refetch_ratio_between_256_and_512_matches_calibration() {
        // The CEP/CE2P split in Figure 12 depends on this ratio sitting
        // between 1.15 and 1.33 (see DESIGN.md).
        let ratio = energy(256) / energy(512);
        assert!((1.15..=1.33).contains(&ratio), "E(256)/E(512) = {ratio}");
    }

    #[test]
    fn older_node_consumes_more_energy() {
        let net = Network::mobile_vision();
        let e16 = AccelConfig::new(512).evaluate(&net).energy();
        let e28 = AccelConfig::new(512).with_nanometers(28).evaluate(&net).energy();
        assert!(e28 > e16);
    }
}
