//! DNN layer shapes and networks for the accelerator model.

/// One layer of a neural network, described by the quantities the
/// accelerator model needs: its MAC count and its available parallelism.
#[derive(Clone, Debug, PartialEq)]
pub enum Layer {
    /// A 2-D convolution.
    Conv {
        /// Layer label.
        name: String,
        /// Output feature-map height.
        out_h: u32,
        /// Output feature-map width.
        out_w: u32,
        /// Output channels.
        out_c: u32,
        /// Input channels.
        in_c: u32,
        /// Kernel height.
        k_h: u32,
        /// Kernel width.
        k_w: u32,
    },
    /// A fully connected layer.
    Fc {
        /// Layer label.
        name: String,
        /// Input features.
        in_features: u32,
        /// Output features.
        out_features: u32,
    },
}

impl act_json::ToJson for Layer {
    fn to_json(&self) -> act_json::JsonValue {
        match self {
            Self::Conv { name, out_h, out_w, out_c, in_c, k_h, k_w } => act_json::obj! {
                "Conv": act_json::obj! {
                    "name": name,
                    "out_h": out_h,
                    "out_w": out_w,
                    "out_c": out_c,
                    "in_c": in_c,
                    "k_h": k_h,
                    "k_w": k_w,
                },
            },
            Self::Fc { name, in_features, out_features } => act_json::obj! {
                "Fc": act_json::obj! {
                    "name": name,
                    "in_features": in_features,
                    "out_features": out_features,
                },
            },
        }
    }
}

impl act_json::FromJson for Layer {
    fn from_json(value: &act_json::JsonValue) -> Result<Self, act_json::JsonError> {
        use act_json::JsonError;
        let object = value
            .as_object()
            .ok_or_else(|| JsonError::type_mismatch("a layer object", value))?;
        let field = |body: &act_json::JsonValue, name: &str| {
            body.get(name).cloned().ok_or_else(|| JsonError::missing_field(name))
        };
        if let Some(body) = object.get("Conv") {
            Ok(Self::Conv {
                name: String::from_json(&field(body, "name")?)?,
                out_h: u32::from_json(&field(body, "out_h")?)?,
                out_w: u32::from_json(&field(body, "out_w")?)?,
                out_c: u32::from_json(&field(body, "out_c")?)?,
                in_c: u32::from_json(&field(body, "in_c")?)?,
                k_h: u32::from_json(&field(body, "k_h")?)?,
                k_w: u32::from_json(&field(body, "k_w")?)?,
            })
        } else if let Some(body) = object.get("Fc") {
            Ok(Self::Fc {
                name: String::from_json(&field(body, "name")?)?,
                in_features: u32::from_json(&field(body, "in_features")?)?,
                out_features: u32::from_json(&field(body, "out_features")?)?,
            })
        } else {
            Err(JsonError::new("expected a `Conv` or `Fc` layer variant"))
        }
    }
}

/// Mapping-efficiency scale: how many MACs one unit of layer parallelism
/// keeps busy. Calibrated so a 2048-MAC array reaches the ~65 % aggregate
/// utilization NVDLA-class accelerators report on vision networks.
const PARALLELISM_SCALE: f64 = 3.0;

impl Layer {
    /// Shorthand for a square-kernel convolution.
    #[must_use]
    pub fn conv(name: &str, out_hw: u32, out_c: u32, in_c: u32, k: u32) -> Self {
        Self::Conv {
            name: name.to_owned(),
            out_h: out_hw,
            out_w: out_hw,
            out_c,
            in_c,
            k_h: k,
            k_w: k,
        }
    }

    /// Shorthand for a fully connected layer.
    #[must_use]
    pub fn fc(name: &str, in_features: u32, out_features: u32) -> Self {
        Self::Fc { name: name.to_owned(), in_features, out_features }
    }

    /// The layer's label.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Self::Conv { name, .. } | Self::Fc { name, .. } => name,
        }
    }

    /// Multiply-accumulate operations the layer performs.
    #[must_use]
    pub fn macs(&self) -> f64 {
        match *self {
            Self::Conv { out_h, out_w, out_c, in_c, k_h, k_w, .. } => {
                f64::from(out_h)
                    * f64::from(out_w)
                    * f64::from(out_c)
                    * f64::from(in_c)
                    * f64::from(k_h)
                    * f64::from(k_w)
            }
            Self::Fc { in_features, out_features, .. } => {
                f64::from(in_features) * f64::from(out_features)
            }
        }
    }

    /// Effective parallelism the layer exposes to the MAC array: output
    /// channels × kernel area (the NVDLA atomic-K / atomic-C mapping axes),
    /// scaled by the mapping efficiency.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        let axes = match *self {
            Self::Conv { out_c, k_h, k_w, .. } => {
                f64::from(out_c) * f64::from(k_h) * f64::from(k_w)
            }
            Self::Fc { out_features, .. } => f64::from(out_features),
        };
        axes * PARALLELISM_SCALE
    }

    /// Array utilization of an `m`-MAC array on this layer: `P / (P + m)`.
    /// A layer with abundant parallelism keeps even a wide array near-busy;
    /// a narrow layer starves it.
    #[must_use]
    pub fn utilization(&self, m: u32) -> f64 {
        let p = self.parallelism();
        p / (p + f64::from(m))
    }
}

/// A feed-forward network: an ordered list of layers.
#[derive(Clone, Debug, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

act_json::impl_to_json!(Network { name, layers });
act_json::impl_from_json!(Network { name, layers });

impl Network {
    /// Creates a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Self { name: name.into(), layers }
    }

    /// The ~3.8 GMAC mobile vision network used by the Reduce case study:
    /// a VGG-style stack of 3×3 convolution groups at 56/28/14/7-pixel
    /// resolutions, representative of the paper's 30 FPS image-processing
    /// QoS scenario.
    #[must_use]
    pub fn mobile_vision() -> Self {
        let mut layers = vec![Layer::conv("stem", 56, 64, 3, 7)];
        for (group, (hw, ch)) in
            [(56u32, 64u32), (28, 128), (14, 256), (7, 512)].into_iter().enumerate()
        {
            for i in 0..8 {
                let in_c = if i == 0 && group > 0 { ch / 2 } else { ch };
                layers.push(Layer::conv(&format!("conv{}_{i}", group + 1), hw, ch, in_c, 3));
            }
        }
        layers.push(Layer::fc("classifier", 512, 1000));
        Self::new("mobile-vision", layers)
    }

    /// A ResNet-50-like 4.1 GMAC classifier: bottleneck-style stacks with
    /// 1×1 and 3×3 convolutions at 56/28/14/7-pixel resolutions.
    #[must_use]
    pub fn resnet50() -> Self {
        let mut layers = vec![Layer::conv("stem", 112, 64, 3, 7)];
        for (stage, (hw, ch, blocks)) in
            [(56u32, 64u32, 3u32), (28, 128, 4), (14, 256, 6), (7, 512, 3)]
                .into_iter()
                .enumerate()
        {
            for block in 0..blocks {
                layers.push(Layer::conv(
                    &format!("s{}b{block}_reduce", stage + 1),
                    hw,
                    ch,
                    ch * 4 / if block == 0 && stage > 0 { 2 } else { 1 },
                    1,
                ));
                layers.push(Layer::conv(&format!("s{}b{block}_3x3", stage + 1), hw, ch, ch, 3));
                layers.push(Layer::conv(
                    &format!("s{}b{block}_expand", stage + 1),
                    hw,
                    ch * 4,
                    ch,
                    1,
                ));
            }
        }
        layers.push(Layer::fc("classifier", 2048, 1000));
        Self::new("resnet50-like", layers)
    }

    /// A MobileNet-class ~0.6 GMAC network: narrow early layers, pointwise-
    /// heavy later stages. Exercises the QoS study at the light end.
    #[must_use]
    pub fn mobilenet() -> Self {
        let mut layers = vec![Layer::conv("stem", 112, 32, 3, 3)];
        for (i, (hw, out_c, in_c)) in [
            (112u32, 64u32, 32u32),
            (56, 128, 64),
            (56, 128, 128),
            (28, 256, 128),
            (28, 256, 256),
            (14, 512, 256),
            (14, 512, 512),
            (14, 512, 512),
            (7, 1024, 512),
        ]
        .into_iter()
        .enumerate()
        {
            layers.push(Layer::conv(&format!("pw{i}"), hw, out_c, in_c, 1));
        }
        layers.push(Layer::fc("classifier", 1024, 1000));
        Self::new("mobilenet-like", layers)
    }

    /// Network label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total MACs per inference.
    #[must_use]
    pub fn total_macs(&self) -> f64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// MAC-weighted aggregate utilization of an `m`-MAC array: total work
    /// divided by total busy-adjusted work.
    #[must_use]
    pub fn aggregate_utilization(&self, m: u32) -> f64 {
        let total: f64 = self.total_macs();
        let adjusted: f64 = self.layers.iter().map(|l| l.macs() / l.utilization(m)).sum();
        total / adjusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_mac_count() {
        let l = Layer::conv("c", 56, 64, 64, 3);
        assert!((l.macs() - 56.0 * 56.0 * 64.0 * 64.0 * 9.0).abs() < 1.0);
    }

    #[test]
    fn fc_mac_count() {
        let l = Layer::fc("f", 512, 1000);
        assert!((l.macs() - 512_000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_decreases_with_array_width() {
        let l = Layer::conv("c", 28, 128, 128, 3);
        assert!(l.utilization(64) > l.utilization(512));
        assert!(l.utilization(512) > l.utilization(4096));
    }

    #[test]
    fn utilization_in_unit_range() {
        let l = Layer::conv("c", 7, 512, 512, 3);
        for m in [1, 64, 2048, 1 << 20] {
            let u = l.utilization(m);
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn wide_layers_feed_wide_arrays_better() {
        let narrow = Layer::conv("narrow", 56, 64, 64, 3);
        let wide = Layer::conv("wide", 7, 512, 512, 3);
        assert!(wide.utilization(2048) > narrow.utilization(2048));
    }

    #[test]
    fn mobile_vision_totals_about_3_8_gmac() {
        let n = Network::mobile_vision();
        let gmacs = n.total_macs() / 1e9;
        assert!((3.3..=4.0).contains(&gmacs), "network is {gmacs} GMACs");
        assert_eq!(n.layers().len(), 34);
    }

    #[test]
    fn mobile_vision_aggregate_utilization_matches_calibration() {
        let n = Network::mobile_vision();
        let u256 = n.aggregate_utilization(256);
        let u2048 = n.aggregate_utilization(2048);
        assert!((0.90..=0.96).contains(&u256), "util(256) = {u256}");
        assert!((0.58..=0.70).contains(&u2048), "util(2048) = {u2048}");
        assert!(u256 > u2048);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_rejected() {
        let _ = Network::new("empty", vec![]);
    }

    #[test]
    fn resnet50_is_about_4_gmacs() {
        let gmacs = Network::resnet50().total_macs() / 1e9;
        assert!((3.0..=5.5).contains(&gmacs), "{gmacs} GMACs");
    }

    #[test]
    fn mobilenet_is_light() {
        let mobile = Network::mobilenet().total_macs();
        let vision = Network::mobile_vision().total_macs();
        assert!(mobile < 0.3 * vision, "mobilenet {mobile} vs vision {vision}");
    }

    #[test]
    fn pointwise_networks_starve_wide_arrays_harder() {
        // 1x1 convolutions expose 9x less kernel parallelism than 3x3.
        let mobilenet = Network::mobilenet().aggregate_utilization(2048);
        let vision = Network::mobile_vision().aggregate_utilization(2048);
        assert!(mobilenet < vision, "mobilenet {mobilenet} vs vision {vision}");
    }

    #[test]
    fn layer_names_accessible() {
        let n = Network::mobile_vision();
        assert_eq!(n.layers()[0].name(), "stem");
        assert_eq!(n.name(), "mobile-vision");
    }
}
