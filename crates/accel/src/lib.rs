//! An NVDLA-like analytical DNN-accelerator model: the substrate behind
//! ACT's Reduce case study (Figures 12 and 13).
//!
//! The paper sweeps an NVDLA-based neural processing unit from 64 to 2048
//! multiply-accumulate units (MACs) and asks which configuration each
//! optimization metric selects. We do not have NVDLA RTL; this crate models
//! the three quantities the study needs analytically:
//!
//! * **Area** — a fixed controller/buffer block plus per-MAC datapath and
//!   SRAM, with process-node scaling (logic scales near-quadratically with
//!   feature size, the fixed block sub-linearly because IO and analog scale
//!   poorly).
//! * **Performance** — per-layer cycle counts with an array-utilization
//!   term: a layer with available parallelism `P` keeps an `M`-MAC array
//!   `P/(P+M)` busy, so wide arrays see diminishing returns on narrow
//!   layers.
//! * **Energy** — MAC switching energy, DRAM traffic with a weight-refetch
//!   penalty for arrays whose buffers are too small to hold a tile
//!   (vanishing once the array/buffer reaches 512 MACs), and static leakage
//!   that grows with array size.
//!
//! # Examples
//!
//! ```
//! use act_accel::{AccelConfig, Network};
//!
//! let network = Network::mobile_vision();
//! let small = AccelConfig::new(256).evaluate(&network);
//! let large = AccelConfig::new(2048).evaluate(&network);
//! assert!(large.throughput() > small.throughput());
//! assert!(AccelConfig::new(2048).area() > AccelConfig::new(256).area());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod energy;
mod layer;
mod perf;

pub use config::AccelConfig;
pub use layer::{Layer, Network};
pub use perf::{layer_breakdown, Evaluation, LayerReport};
