//! Accelerator hardware configuration and its area model.

use act_data::ProcessNode;
use act_units::{Area, UnitError};

use crate::layer::Network;
use crate::perf::Evaluation;

/// Feature size the area/energy constants are calibrated at (the paper's
/// 16 nm NVDLA).
const BASE_NM: f64 = 16.0;

/// Fixed controller/buffer/IO block at 16 nm, mm².
const FIXED_AREA_MM2: f64 = 0.5;

/// Per-MAC datapath + SRAM area at 16 nm, mm².
const MAC_AREA_MM2: f64 = 0.95e-3;

/// Exponent for per-MAC area scaling with feature size (logic scales
/// slightly sub-quadratically once SRAM is included).
const MAC_SCALING_EXP: f64 = 1.8;

/// Exponent for fixed-block scaling (IO and analog barely scale).
const FIXED_SCALING_EXP: f64 = 0.6;

/// An NVDLA-like accelerator configuration: MAC-array width, process node
/// and clock.
///
/// # Examples
///
/// ```
/// use act_accel::AccelConfig;
///
/// let nvdla_large = AccelConfig::new(2048);
/// let in_28nm = AccelConfig::new(2048).with_nanometers(28);
/// assert!(in_28nm.area() > nvdla_large.area());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccelConfig {
    macs: u32,
    nanometers: u32,
    frequency_ghz: f64,
}

act_json::impl_to_json!(AccelConfig { macs, nanometers, frequency_ghz });
act_json::impl_from_json!(AccelConfig { macs, nanometers, frequency_ghz });

impl AccelConfig {
    /// A 16 nm configuration at the 500 MHz the study assumes.
    ///
    /// # Panics
    ///
    /// Panics if `macs` is zero.
    #[must_use]
    pub fn new(macs: u32) -> Self {
        assert!(macs > 0, "an accelerator needs at least one MAC");
        Self { macs, nanometers: 16, frequency_ghz: 0.5 }
    }

    /// Checked variant of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`UnitError`] if `macs` is zero.
    pub fn try_new(macs: u32) -> Result<Self, UnitError> {
        if macs == 0 {
            return Err(UnitError::out_of_domain("MAC count", 0.0, "at least 1"));
        }
        Ok(Self::new(macs))
    }

    /// Re-targets the configuration to another feature size (e.g. 28 nm for
    /// Figure 13's technology comparison).
    ///
    /// # Panics
    ///
    /// Panics if `nanometers` is zero.
    #[must_use]
    pub fn with_nanometers(mut self, nanometers: u32) -> Self {
        assert!(nanometers > 0, "feature size must be positive");
        self.nanometers = nanometers;
        self
    }

    /// Checked variant of [`Self::with_nanometers`].
    ///
    /// # Errors
    ///
    /// Returns a [`UnitError`] if `nanometers` is zero.
    pub fn try_with_nanometers(self, nanometers: u32) -> Result<Self, UnitError> {
        if nanometers == 0 {
            return Err(UnitError::out_of_domain(
                "feature size",
                0.0,
                "a positive number of nanometers",
            ));
        }
        Ok(self.with_nanometers(nanometers))
    }

    /// Overrides the clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive.
    #[must_use]
    pub fn with_frequency_ghz(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        self.frequency_ghz = ghz;
        self
    }

    /// Checked variant of [`Self::with_frequency_ghz`].
    ///
    /// # Errors
    ///
    /// Returns a [`UnitError`] if `ghz` is NaN, infinite or not positive.
    pub fn try_with_frequency_ghz(self, ghz: f64) -> Result<Self, UnitError> {
        if !ghz.is_finite() {
            return Err(UnitError::non_finite("clock frequency", ghz));
        }
        if ghz <= 0.0 {
            return Err(UnitError::out_of_domain(
                "clock frequency",
                ghz,
                "a positive GHz value",
            ));
        }
        Ok(self.with_frequency_ghz(ghz))
    }

    /// MAC-array width.
    #[must_use]
    pub fn macs(&self) -> u32 {
        self.macs
    }

    /// Nominal feature size in nanometers.
    #[must_use]
    pub fn nanometers(&self) -> u32 {
        self.nanometers
    }

    /// Clock frequency in GHz.
    #[must_use]
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// The characterized process node used for carbon accounting.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        ProcessNode::from_nanometers(self.nanometers)
    }

    /// Feature-size scale factor relative to the 16 nm calibration point.
    pub(crate) fn node_scale(&self) -> f64 {
        f64::from(self.nanometers) / BASE_NM
    }

    /// Die area of the accelerator: fixed block plus MAC array, scaled by
    /// feature size.
    #[must_use]
    pub fn area(&self) -> Area {
        let s = self.node_scale();
        let fixed = FIXED_AREA_MM2 * s.powf(FIXED_SCALING_EXP);
        let array = f64::from(self.macs) * MAC_AREA_MM2 * s.powf(MAC_SCALING_EXP);
        Area::square_millimeters(fixed + array)
    }

    /// Evaluates latency, throughput and energy on a network.
    #[must_use]
    pub fn evaluate(&self, network: &Network) -> Evaluation {
        Evaluation::compute(self, network)
    }

    /// Evaluates a batched inference: weights fetched once serve the whole
    /// batch, so the per-inference DRAM refetch penalty is divided by the
    /// batch size while latency per inference is unchanged (NVDLA processes
    /// batch elements back to back).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn evaluate_batched(&self, network: &Network, batch: u32) -> Evaluation {
        Evaluation::compute_batched(self, network, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_calibration_at_16nm() {
        // 256 MACs: 0.5 + 256 * 0.95e-3 = 0.743 mm².
        let a = AccelConfig::new(256).area().as_square_millimeters();
        assert!((a - 0.7432).abs() < 1e-3, "{a}");
        // 2048 MACs: 0.5 + 1.9456 = 2.446 mm².
        let a = AccelConfig::new(2048).area().as_square_millimeters();
        assert!((a - 2.4456).abs() < 1e-3, "{a}");
    }

    #[test]
    fn area_grows_with_macs_and_feature_size() {
        assert!(AccelConfig::new(512).area() > AccelConfig::new(256).area());
        assert!(
            AccelConfig::new(512).with_nanometers(28).area() > AccelConfig::new(512).area()
        );
    }

    #[test]
    fn mac_area_scales_superlinearly_with_nm() {
        // The 28 nm per-MAC area should be (28/16)^1.8 = 2.74x the 16 nm one.
        let a16 = AccelConfig::new(2048).area().as_square_millimeters()
            - AccelConfig::new(1024).area().as_square_millimeters();
        let a28 = AccelConfig::new(2048).with_nanometers(28).area().as_square_millimeters()
            - AccelConfig::new(1024).with_nanometers(28).area().as_square_millimeters();
        assert!((a28 / a16 - 2.74).abs() < 0.02, "{}", a28 / a16);
    }

    #[test]
    fn node_mapping_uses_characterized_nodes() {
        assert_eq!(AccelConfig::new(64).node(), ProcessNode::N14);
        assert_eq!(AccelConfig::new(64).with_nanometers(28).node(), ProcessNode::N28);
    }

    #[test]
    #[should_panic(expected = "at least one MAC")]
    fn zero_macs_rejected() {
        let _ = AccelConfig::new(0);
    }

    #[test]
    fn builder_overrides() {
        let c = AccelConfig::new(64).with_frequency_ghz(1.0).with_nanometers(7);
        assert_eq!(c.frequency_ghz(), 1.0);
        assert_eq!(c.nanometers(), 7);
        assert_eq!(c.macs(), 64);
    }

    #[test]
    fn try_builders_error_instead_of_panicking() {
        assert_eq!(AccelConfig::try_new(64).unwrap(), AccelConfig::new(64));
        assert!(AccelConfig::try_new(0).is_err());
        assert!(AccelConfig::new(64).try_with_nanometers(0).is_err());
        assert_eq!(
            AccelConfig::new(64).try_with_nanometers(28).unwrap(),
            AccelConfig::new(64).with_nanometers(28)
        );
        assert!(AccelConfig::new(64).try_with_frequency_ghz(0.0).is_err());
        assert!(AccelConfig::new(64).try_with_frequency_ghz(f64::NAN).is_err());
        assert_eq!(
            AccelConfig::new(64).try_with_frequency_ghz(1.0).unwrap(),
            AccelConfig::new(64).with_frequency_ghz(1.0)
        );
    }
}
