//! The performance model: per-layer cycle counts with array-utilization
//! derating.

use act_units::{Energy, Throughput, TimeSpan};

use crate::config::AccelConfig;
use crate::energy;
use crate::layer::Network;

/// Per-layer cycle accounting: where an inference spends its time.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerReport {
    /// Layer label.
    pub name: String,
    /// Cycles spent in the layer.
    pub cycles: f64,
    /// Array utilization during the layer.
    pub utilization: f64,
    /// Fraction of total inference cycles.
    pub share: f64,
}

act_json::impl_to_json!(LayerReport { name, cycles, utilization, share });
act_json::impl_from_json!(LayerReport { name, cycles, utilization, share });

/// Per-layer breakdown of an inference — the view a designer uses to find
/// the layers that starve a wide array.
///
/// # Examples
///
/// ```
/// use act_accel::{layer_breakdown, AccelConfig, Network};
///
/// let report = layer_breakdown(&AccelConfig::new(2048), &Network::mobile_vision());
/// let total: f64 = report.iter().map(|l| l.share).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn layer_breakdown(config: &AccelConfig, network: &Network) -> Vec<LayerReport> {
    let mut reports: Vec<LayerReport> = network
        .layers()
        .iter()
        .map(|layer| {
            let utilization = layer.utilization(config.macs());
            let cycles = layer.macs() / (f64::from(config.macs()) * utilization);
            LayerReport { name: layer.name().to_owned(), cycles, utilization, share: 0.0 }
        })
        .collect();
    let total: f64 = reports.iter().map(|r| r.cycles).sum();
    for r in &mut reports {
        r.share = r.cycles / total;
    }
    reports
}

/// The result of running a network on an accelerator configuration.
///
/// # Examples
///
/// ```
/// use act_accel::{AccelConfig, Network};
///
/// let eval = AccelConfig::new(256).evaluate(&Network::mobile_vision());
/// // A 256-MAC array at 500 MHz clears the paper's 30 FPS QoS bar.
/// assert!(eval.throughput().as_per_second() > 30.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    latency: TimeSpan,
    energy: Energy,
}

act_json::impl_to_json!(Evaluation { latency, energy });
act_json::impl_from_json!(Evaluation { latency, energy });

impl Evaluation {
    pub(crate) fn compute(config: &AccelConfig, network: &Network) -> Self {
        Self::compute_batched(config, network, 1)
    }

    pub(crate) fn compute_batched(config: &AccelConfig, network: &Network, batch: u32) -> Self {
        assert!(batch > 0, "batch size must be at least one");
        let mut cycles = 0.0;
        for layer in network.layers() {
            let utilization = layer.utilization(config.macs());
            cycles += layer.macs() / (f64::from(config.macs()) * utilization);
        }
        let latency = TimeSpan::seconds(cycles / (config.frequency_ghz() * 1e9));
        let energy = energy::per_inference_batched(config, network, latency, batch);
        Self { latency, energy }
    }

    /// Single-inference latency.
    #[must_use]
    pub fn latency(&self) -> TimeSpan {
        self.latency
    }

    /// Inference throughput (`1 / latency`).
    #[must_use]
    pub fn throughput(&self) -> Throughput {
        Throughput::per_second(1.0 / self.latency.as_seconds())
    }

    /// Energy per inference.
    #[must_use]
    pub fn energy(&self) -> Energy {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_dse_shim::powers_of_two;

    // Tiny local copy to avoid a dev-dependency cycle; mirrors
    // `act_dse::powers_of_two`.
    mod act_dse_shim {
        pub fn powers_of_two(lo: u32, hi: u32) -> Vec<u32> {
            let mut v = Vec::new();
            let mut x = lo;
            while x <= hi {
                v.push(x);
                x *= 2;
            }
            v
        }
    }

    fn eval(macs: u32) -> Evaluation {
        AccelConfig::new(macs).evaluate(&Network::mobile_vision())
    }

    #[test]
    fn performance_improves_monotonically_with_macs() {
        let mut last = f64::INFINITY;
        for m in powers_of_two(64, 2048) {
            let lat = eval(m).latency().as_seconds();
            assert!(lat < last, "{m} MACs should be faster");
            last = lat;
        }
    }

    #[test]
    fn scaling_is_sublinear_at_the_wide_end() {
        // Diminishing returns: 8x the MACs buys well under 8x the speed.
        let speedup = eval(256).latency().ratio(eval(2048).latency());
        assert!((4.0..7.9).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn qos_boundary_sits_between_128_and_256_macs() {
        // Figure 13 (left): 256 MACs is the leanest config at 30 FPS.
        assert!(eval(128).throughput().as_per_second() < 30.0);
        assert!(eval(256).throughput().as_per_second() > 30.0);
    }

    #[test]
    fn energy_per_inference_has_interior_minimum() {
        // Small arrays pay DRAM refetch, large arrays pay leakage: the
        // energy bowl bottoms out at the 512-MAC configuration.
        let energies: Vec<f64> = powers_of_two(64, 2048)
            .into_iter()
            .map(|m| eval(m).energy().as_millijoules())
            .collect();
        let min_idx =
            energies.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(min_idx, 3, "energy minimum should be 512 MACs: {energies:?}");
    }

    #[test]
    fn layer_breakdown_reconciles_with_total_latency() {
        let config = AccelConfig::new(512);
        let network = Network::mobile_vision();
        let report = layer_breakdown(&config, &network);
        assert_eq!(report.len(), network.layers().len());
        let cycles: f64 = report.iter().map(|l| l.cycles).sum();
        let latency = cycles / (config.frequency_ghz() * 1e9);
        let direct = config.evaluate(&network).latency().as_seconds();
        assert!((latency - direct).abs() < direct * 1e-12);
    }

    #[test]
    fn narrow_early_layers_dominate_wide_arrays() {
        // On a 2048-MAC array, the low-parallelism stem/early layers have
        // the worst utilization in the report.
        let report = layer_breakdown(&AccelConfig::new(2048), &Network::mobile_vision());
        let min_util = report
            .iter()
            .min_by(|a, b| a.utilization.partial_cmp(&b.utilization).unwrap())
            .unwrap();
        assert!(
            min_util.name == "stem"
                || min_util.name.starts_with("conv1")
                || min_util.name == "classifier",
            "worst-utilized layer {}",
            min_util.name
        );
    }

    #[test]
    fn higher_clock_means_lower_latency() {
        let net = Network::mobile_vision();
        let slow = AccelConfig::new(512).evaluate(&net);
        let fast = AccelConfig::new(512).with_frequency_ghz(1.0).evaluate(&net);
        assert!((slow.latency().ratio(fast.latency()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_latency_inverse() {
        let e = eval(512);
        let product = e.latency().as_seconds() * e.throughput().as_per_second();
        assert!((product - 1.0).abs() < 1e-12);
    }
}
