//! Criterion benchmark harness for the ACT reproduction.
//!
//! Two bench targets exist:
//!
//! * `paper` — one benchmark per figure/table; each iteration regenerates
//!   the artifact end to end (`bench_fig1` … `bench_table12`).
//! * `ablations` — the design-choice sensitivity studies DESIGN.md calls
//!   out (yield, abatement, fab energy source, WA model, DRAM-node
//!   assignment).
//!
//! Run with `cargo bench --workspace`.
