//! Criterion benchmark harness for the ACT reproduction.
//!
//! Three bench targets exist:
//!
//! * `paper` — one benchmark per figure/table; each iteration regenerates
//!   the artifact end to end (`bench_fig1` … `bench_table12`).
//! * `ablations` — the design-choice sensitivity studies DESIGN.md calls
//!   out (yield, abatement, fab energy source, WA model, DRAM-node
//!   assignment).
//! * `engine` — the parallel evaluation engine: serial-vs-parallel sweep
//!   and Monte-Carlo throughput, and the skyline `pareto_indices` against
//!   the quadratic reference.
//!
//! Run with `cargo bench --workspace`. For the machine-readable
//! wall-clock trajectory (figure timings, sweep throughput, `act all`
//! speedup) use `cargo xtask bench`, which writes `BENCH_results.json`.
