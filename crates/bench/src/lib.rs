//! Std-only benchmark harness for the ACT reproduction.
//!
//! The workspace builds hermetically — no registry dependencies — so the
//! bench targets cannot link criterion. This module is the replacement: a
//! small wall-clock harness with the same command-line contract the CI
//! smoke pass and `cargo xtask bench --criterion` already rely on
//! (`cargo bench ... -- --test` runs every benchmark once as a smoke
//! test). The full criterion suites still exist for statistically rigorous
//! runs; they live in the excluded `external-dev/` workspace and need
//! network access once to fetch criterion itself.
//!
//! Four bench targets exist:
//!
//! * `paper` — one benchmark per figure/table; each iteration regenerates
//!   the artifact end to end (`bench_fig1` … `bench_table12`).
//! * `ablations` — the design-choice sensitivity studies DESIGN.md calls
//!   out (yield, abatement, fab energy source, WA model, DRAM-node
//!   assignment).
//! * `engine` — the parallel evaluation engine: serial-vs-parallel sweep
//!   and Monte-Carlo throughput, and the skyline `pareto_indices` against
//!   the quadratic reference.
//! * `compiled` — the per-point footprint pipeline versus the compiled
//!   kernel, with bit-identity cross-checks before timing.
//!
//! Run with `cargo bench --workspace`. For the machine-readable
//! wall-clock trajectory (figure timings, sweep throughput, `act all`
//! speedup) use `cargo xtask bench`, which writes `BENCH_results.json`.

use std::time::Instant;

pub use std::hint::black_box;

/// How a bench target runs: full timing or a single-iteration smoke pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Adaptive timing: iterate until the measurement window fills.
    Measure,
    /// `-- --test`: one iteration per benchmark, correctness only.
    Smoke,
}

/// Minimum measured wall-clock per benchmark before reporting, in
/// milliseconds. Cheap bodies run many iterations inside this window;
/// expensive ones (the FTL simulation) stop at [`MAX_ITERS`].
const MEASURE_WINDOW_MS: f64 = 200.0;
/// Iteration floor so the mean is never a single noisy sample.
const MIN_ITERS: u32 = 3;
/// Iteration ceiling so trivially cheap bodies terminate promptly.
const MAX_ITERS: u32 = 1_000;

/// A registered-and-run benchmark's outcome.
#[derive(Clone, Debug)]
struct Record {
    name: String,
    iters: u32,
    mean_ns: f64,
}

/// The bench runner: parses the libtest/criterion-style argument tail and
/// times each registered closure.
///
/// # Examples
///
/// ```
/// let mut harness = act_bench::Harness::new(["--test".to_owned()]);
/// harness.bench("square", || act_bench::black_box(7_u64 * 7));
/// harness.finish();
/// ```
#[derive(Debug)]
pub struct Harness {
    mode: Mode,
    /// Positional substring filters; empty = run everything.
    filters: Vec<String>,
    records: Vec<Record>,
    skipped: usize,
}

impl Harness {
    /// Builds a harness from an explicit argument list (testing hook).
    /// Recognizes `--test` (smoke mode), ignores the flags criterion
    /// accepted (`--bench`, `--noplot`, …), and treats bare words as
    /// substring filters on benchmark names.
    #[must_use]
    pub fn new(args: impl IntoIterator<Item = String>) -> Self {
        let mut mode = Mode::Measure;
        let mut filters = Vec::new();
        for arg in args {
            match arg.as_str() {
                "--test" => mode = Mode::Smoke,
                flag if flag.starts_with('-') => {}
                word => filters.push(word.to_owned()),
            }
        }
        Self { mode, filters, records: Vec::new(), skipped: 0 }
    }

    /// Builds a harness from the process arguments (the normal entry).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1))
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Runs one benchmark. The closure's return value is passed through
    /// [`black_box`] so the optimizer cannot delete the body.
    pub fn bench<T>(&mut self, name: &str, mut body: impl FnMut() -> T) {
        if !self.selected(name) {
            self.skipped += 1;
            return;
        }
        match self.mode {
            Mode::Smoke => {
                black_box(body());
                println!("test {name} ... ok");
            }
            Mode::Measure => {
                // Warm-up iteration: page in code and data, fill caches.
                black_box(body());
                let started = Instant::now();
                let mut iters = 0u32;
                loop {
                    black_box(body());
                    iters += 1;
                    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                    if (elapsed_ms >= MEASURE_WINDOW_MS && iters >= MIN_ITERS)
                        || iters >= MAX_ITERS
                    {
                        break;
                    }
                }
                let mean_ns = started.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
                println!("bench {name:<44} {:>12} ns/iter ({iters} iters)", format_ns(mean_ns));
                self.records.push(Record { name: name.to_owned(), iters, mean_ns });
            }
        }
    }

    /// Prints the closing summary line. Call last in `main`.
    pub fn finish(self) {
        match self.mode {
            Mode::Smoke => println!("\nbench smoke ok ({} skipped)", self.skipped),
            Mode::Measure => {
                let total_ms: f64 =
                    self.records.iter().map(|r| r.mean_ns * f64::from(r.iters) / 1e6).sum();
                let slowest = self
                    .records
                    .iter()
                    .max_by(|a, b| a.mean_ns.total_cmp(&b.mean_ns))
                    .map_or_else(String::new, |r| format!(" (slowest: {})", r.name));
                println!(
                    "\n{} benchmarks, {} skipped, {:.0} ms measured{slowest}",
                    self.records.len(),
                    self.skipped,
                    total_ms
                );
            }
        }
    }
}

/// Renders a nanosecond mean with thousands separators (readability only).
fn format_ns(ns: f64) -> String {
    let whole = ns.round().max(0.0);
    // f64 → u128 after rounding and clamping non-negative is exact for any
    // plausible bench duration.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let mut value = whole as u128;
    let mut groups = Vec::new();
    loop {
        let group = value % 1000;
        value /= 1000;
        if value == 0 {
            groups.push(group.to_string());
            break;
        }
        groups.push(format!("{group:03}"));
    }
    groups.reverse();
    groups.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut harness = Harness::new(["--test".to_owned()]);
        let mut calls = 0u32;
        harness.bench("counting", || calls += 1);
        assert_eq!(calls, 1);
        harness.finish();
    }

    #[test]
    fn filters_select_by_substring() {
        let mut harness = Harness::new(["--test".to_owned(), "pareto".to_owned()]);
        let mut ran = Vec::new();
        harness.bench("pareto_skyline", || ran.push("skyline"));
        harness.bench("sweep_10k", || ran.push("sweep"));
        assert_eq!(ran, ["skyline"]);
        assert_eq!(harness.skipped, 1);
    }

    #[test]
    fn unknown_flags_are_ignored_like_criterion_did() {
        let harness = Harness::new(["--bench".to_owned(), "--noplot".to_owned()]);
        assert_eq!(harness.mode, Mode::Measure);
        assert!(harness.filters.is_empty());
    }

    #[test]
    fn measure_mode_respects_the_iteration_floor() {
        let mut harness = Harness::new(Vec::new());
        let mut calls = 0u32;
        harness.bench("cheap", || calls += 1);
        // Warm-up + at least MIN_ITERS measured iterations.
        assert!(calls > MIN_ITERS, "calls {calls}");
        assert_eq!(harness.records.len(), 1);
        assert!(harness.records[0].mean_ns >= 0.0);
    }

    #[test]
    fn ns_formatting_groups_thousands() {
        assert_eq!(format_ns(999.0), "999");
        assert_eq!(format_ns(1_234.0), "1,234");
        assert_eq!(format_ns(12_345_678.0), "12,345,678");
    }
}
