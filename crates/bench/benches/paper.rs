//! One benchmark per paper artifact: each iteration regenerates the full
//! figure/table and prints nothing. The measured time is the cost of the
//! complete reproduction pipeline (model evaluation, sweeps, simulation).

use act_bench::{black_box, Harness};

fn main() {
    let mut h = Harness::from_env();
    h.bench("bench_fig1", || black_box(act_experiments::fig1::run()));
    h.bench("bench_fig4", || black_box(act_experiments::fig4::run()));
    h.bench("bench_fig6", || black_box(act_experiments::fig6::run()));
    h.bench("bench_fig7", || black_box(act_experiments::fig7::run()));
    h.bench("bench_fig8", || black_box(act_experiments::fig8::run()));
    h.bench("bench_fig9", || black_box(act_experiments::fig9::run()));
    h.bench("bench_fig10", || black_box(act_experiments::fig10::run()));
    h.bench("bench_fig11", || black_box(act_experiments::fig11::run()));
    h.bench("bench_fig12", || black_box(act_experiments::fig12::run()));
    h.bench("bench_fig13", || black_box(act_experiments::fig13::run()));
    h.bench("bench_fig14", || black_box(act_experiments::fig14::run()));
    // The FTL simulation makes fig15 the heaviest artifact; the harness's
    // measurement window bounds it the way criterion's sample_size=10 did.
    h.bench("bench_fig15", || black_box(act_experiments::fig15::run()));
    h.bench("bench_fig16", || black_box(act_experiments::fig16::run()));
    h.bench("bench_fig17", || black_box(act_experiments::fig17::run()));
    h.bench("bench_table4", || black_box(act_experiments::table4::run()));
    h.bench("bench_tables", || black_box(act_experiments::tables::run().to_string()));
    h.bench("bench_table12", || black_box(act_experiments::table12::run()));
    h.finish();
}
