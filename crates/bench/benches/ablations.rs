//! Ablation benches for the design choices DESIGN.md calls out: each bench
//! sweeps one modeling assumption and measures the cost of re-evaluating
//! the affected artifact, while the printed-once summary shows the
//! sensitivity.

use act_bench::{black_box, Harness};
use act_core::{FabScenario, SystemSpec};
use act_data::{Abatement, DramTechnology, ProcessNode};
use act_ssd::{
    analytical_write_amplification, FtlConfig, FtlSimulator, OverProvisioning, TracePattern,
    WriteTrace,
};
use act_units::{Area, Capacity, Fraction};

fn main() {
    let mut h = Harness::from_env();

    // Yield sensitivity: ECF of a 7 nm flagship die across Y in [0.5, 1.0].
    h.bench("ablate_yield", || {
        let mut total = 0.0;
        for y in [0.5, 0.625, 0.75, 0.875, 1.0] {
            let fab = FabScenario::default().with_yield(Fraction::new_const(y));
            total += (fab.carbon_per_area(ProcessNode::N7) * Area::square_millimeters(90.0))
                .as_grams();
        }
        black_box(total)
    });

    // Abatement sensitivity: CPA across all nodes under 95/97/99 % abatement.
    h.bench("ablate_abatement", || {
        let mut total = 0.0;
        for abatement in Abatement::ALL {
            let fab = FabScenario::default().with_abatement(abatement);
            for node in ProcessNode::ALL {
                total += fab.carbon_per_area(node).as_grams_per_cm2();
            }
        }
        black_box(total)
    });

    // Fab energy-source sensitivity: device embodied footprint under four
    // fab scenarios.
    let spec = SystemSpec::from_bom(&act_data::devices::IPHONE_11);
    h.bench("ablate_fab_ci", || {
        let mut total = 0.0;
        for fab in [
            FabScenario::coal(),
            FabScenario::taiwan_grid(),
            FabScenario::default(),
            FabScenario::renewable(),
        ] {
            total += spec.embodied(&fab).total().as_kilograms();
        }
        black_box(total)
    });

    // Analytical vs simulated write amplification at the first-life optimum.
    let pf = OverProvisioning::new_const(0.16);
    h.bench("ablate_wa_model/analytical", || black_box(analytical_write_amplification(pf)));
    h.bench("ablate_wa_model/ftl_simulated", || {
        let config = FtlConfig::small(pf);
        let mut ftl = FtlSimulator::new(config);
        let mut trace = WriteTrace::new(TracePattern::UniformRandom, config.logical_pages(), 3);
        black_box(ftl.measure_steady_state_wa(&mut trace, 20_000))
    });

    // DRAM-node assignment sensitivity: a 4 GB phone's memory footprint
    // under every characterized DRAM technology.
    h.bench("ablate_dram_node", || {
        let mut total = 0.0;
        for tech in DramTechnology::ALL {
            total += (tech.carbon_per_gb() * Capacity::gigabytes(4.0)).as_grams();
        }
        black_box(total)
    });

    h.finish();
}
