//! Byte-level golden pin for the Figure 15 study.
//!
//! The fig15 FTL hot loop has been rewritten for speed several times
//! (cached geometry, incremental GC scan keys, bulk victim copies, the
//! precomputed trace sampler in `act-rng`). Every one of those rewrites
//! claims bit-identical behavior; this test is the claim's enforcement.
//! The expected text below is the **exact** renderer output from the
//! pre-optimization implementation — if any refactor shifts a single
//! simulated write, a WA value changes and this fails byte-for-byte.
//!
//! Regenerating (only valid after an *intentional* semantic change, e.g.
//! a new trace seed or grid): `act fig15` and paste the output here, in
//! the same commit that justifies the change.

use act_experiments::fig15;

const GOLDEN: &str = "\
== Figure 15: SSD over-provisioning study ==
   PF  WA (model)  WA (FTL sim)  lifetime yr  1st life CO2  2nd life CO2
  ------------------------------------------------------------------------
   4%       13.00          7.44         0.51          1.00          2.00
  10%        5.50          4.32         1.26          0.42          0.85
  16%        3.62          3.17         2.02          0.28          0.56
  22%        2.77          2.55         2.78          0.30          0.43
  28%        2.29          2.23         3.54          0.31          0.35
  34%        1.97          1.99         4.30          0.33          0.33
  40%        1.75          1.82         5.06          0.34          0.34
  first-life optimal PF 16% | second-life optimal PF 34% | per-year reduction 1.73x
";

#[test]
fn rendered_study_is_byte_identical_to_the_golden() {
    assert_eq!(fig15::run().to_string(), GOLDEN);
}

#[test]
fn simulated_wa_values_are_pinned_to_full_precision_within_display_rounding() {
    // The table rounds to 2 decimals; additionally pin the raw simulated
    // WA of the heaviest point so sub-rounding drift is caught too.
    let rows = fig15::run().rows;
    let wa0 = rows[0].wa_simulated;
    assert!((wa0 - 7.44).abs() < 0.005, "PF 4% simulated WA drifted: {wa0}");
    // Determinism: a second run is bit-identical to the first.
    let again = fig15::run().rows;
    for (a, b) in rows.iter().zip(&again) {
        assert!(a.wa_simulated.to_bits() == b.wa_simulated.to_bits());
    }
}
