//! Figure 1 (left): the shift from operational to embodied emissions
//! between an iPhone 3 (2009) and an iPhone 11 (2019).

use std::fmt;

use act_data::reports::{ProductReport, IPHONE_11, IPHONE_3};

use crate::render::TextTable;

/// Life-cycle phase shares for the two generations.
#[derive(Clone, Debug)]
pub struct Fig1Result {
    /// The 2009-era report.
    pub iphone3: ProductReport,
    /// The 2019-era report.
    pub iphone11: ProductReport,
}

act_json::impl_to_json!(Fig1Result { iphone3, iphone11 });

impl Fig1Result {
    /// How much the operational footprint shrank across the decade
    /// (the paper reports ~2.5×).
    #[must_use]
    pub fn operational_reduction(&self) -> f64 {
        self.iphone3.operational().ratio(self.iphone11.operational())
    }
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig1Result {
    Fig1Result { iphone3: IPHONE_3, iphone11: IPHONE_11 }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 1 (left): life-cycle emission shares",
            &["device", "manufacturing", "use", "transport", "end-of-life"],
        );
        for r in [&self.iphone3, &self.iphone11] {
            t.row(vec![
                r.name.to_owned(),
                format!("{:.0}%", r.manufacturing_share * 100.0),
                format!("{:.0}%", r.use_share * 100.0),
                format!("{:.0}%", r.transport_share * 100.0),
                format!("{:.0}%", r.end_of_life_share * 100.0),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "  operational footprint reduced {:.1}x across the decade",
            self.operational_reduction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manufacturing_share_shifts_from_45_to_79_percent() {
        let r = run();
        assert!((r.iphone3.manufacturing_share - 0.45).abs() < 1e-9);
        assert!((r.iphone11.manufacturing_share - 0.79).abs() < 1e-9);
        assert!((r.iphone3.use_share - 0.49).abs() < 1e-9);
        assert!((r.iphone11.use_share - 0.17).abs() < 1e-9);
    }

    #[test]
    fn operational_footprint_shrinks_about_2_5x() {
        let reduction = run().operational_reduction();
        assert!((2.0..=3.0).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn renders_both_devices() {
        let s = run().to_string();
        assert!(s.contains("iPhone 3") && s.contains("iPhone 11"));
    }
}
