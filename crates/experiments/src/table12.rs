//! Table 12: published LCA values next to ACT re-estimates under the
//! legacy-node ("node 1") and actual-node ("node 2") assumptions.

use std::fmt;

use act_core::FabScenario;
use act_lca::{table12, NodeComparison};

use crate::render::TextTable;

/// The comparison table.
#[derive(Clone, Debug)]
pub struct Table12Result {
    /// One comparison per published row.
    pub rows: Vec<NodeComparison>,
}

act_json::impl_to_json!(Table12Result { rows });

/// Runs the comparison under the default fab scenario.
#[must_use]
pub fn run() -> Table12Result {
    Table12Result { rows: table12(&FabScenario::default()) }
}

impl fmt::Display for Table12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table 12: LCA vs ACT (kg CO2); paper values in parentheses",
            &["device", "IC", "LCA", "ACT node1", "ACT node2", "LCA/node2"],
        );
        for c in &self.rows {
            t.row(vec![
                c.row.device.to_owned(),
                c.row.category.to_owned(),
                format!("{:.2}", c.row.lca_kg),
                format!("{:.2} ({:.2})", c.ours_node1.as_kilograms(), c.row.act_node1_kg),
                format!("{:.2} ({:.2})", c.ours_node2.as_kilograms(), c.row.act_node2_kg),
                format!("{:.1}x", c.lca_overestimate()),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_present() {
        assert_eq!(run().rows.len(), 8);
    }

    #[test]
    fn legacy_lcas_overestimate_memory_by_severalfold() {
        for c in run().rows {
            if c.row.category == "RAM" || c.row.category == "Flash + RAM" {
                assert!(
                    c.lca_overestimate() > 5.0,
                    "{} {}: {}",
                    c.row.device,
                    c.row.category,
                    c.lca_overestimate()
                );
            }
        }
    }

    #[test]
    fn renders_paper_reference_values() {
        let s = run().to_string();
        assert!(s.contains("533") || s.contains("533.00"));
        assert!(s.contains("Fairphone 3") && s.contains("Dell R740"));
    }
}
