//! Table 4: Snapdragon 845 mobile AI inference — latency, power,
//! operational and embodied footprint of CPU, GPU and DSP engines, plus the
//! break-even utilizations the prose derives from them.

use crate::Present;
use std::fmt;

use act_core::{FabScenario, OperationalModel};
use act_data::snapdragon845::{profile, Engine, EngineProfile, NODE, PROFILES};
use act_data::EnergySource;
use act_units::{CarbonIntensity, Energy, MassCo2, TimeSpan};

use crate::render::TextTable;

/// The carbon intensity the paper assumes during use: the average United
/// States grid at the time, 300 g CO₂/kWh.
pub const US_INTENSITY: CarbonIntensity = CarbonIntensity::grams_per_kwh(300.0);

/// Assumed device lifetime for amortization.
pub const LIFETIME_YEARS: f64 = 3.0;

/// One row of Table 4 with computed footprints.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// The engine.
    pub engine: Engine,
    /// Measured profile (latency, power, block area).
    pub profile: &'static EngineProfile,
    /// Energy per inference.
    pub energy: Energy,
    /// Operational footprint per inference at the US grid.
    pub opcf: MassCo2,
    /// Embodied footprint of the engine's own silicon block.
    pub ecf_block: MassCo2,
    /// Embodied footprint of the provisioned system (co-processors include
    /// the host CPU block).
    pub ecf_system: MassCo2,
}

act_json::impl_to_json!(Table4Row { engine, profile, energy, opcf, ecf_block, ecf_system });

/// The full provisioning study.
#[derive(Clone, Debug)]
pub struct Table4Result {
    /// Rows in Table 4 order (CPU, DSP, GPU).
    pub rows: Vec<Table4Row>,
}

act_json::impl_to_json!(Table4Result { rows });

/// Runs the study under the paper's default fab scenario.
#[must_use]
pub fn run() -> Table4Result {
    let fab = FabScenario::default();
    let op = OperationalModel::new(US_INTENSITY);
    let cpa = act_core::memo::carbon_per_area(&fab, NODE);
    let cpu_block = cpa * profile(Engine::Cpu).block_area();
    let rows = PROFILES
        .iter()
        .map(|p| {
            let energy = p.energy_per_inference();
            let ecf_block = cpa * p.block_area();
            let ecf_system =
                if p.engine == Engine::Cpu { ecf_block } else { ecf_block + cpu_block };
            Table4Row {
                engine: p.engine,
                profile: p,
                energy,
                opcf: op.footprint(energy),
                ecf_block,
                ecf_system,
            }
        })
        .collect();
    Table4Result { rows }
}

impl Table4Result {
    /// Row lookup.
    #[must_use]
    pub fn row(&self, engine: Engine) -> &Table4Row {
        self.rows.iter().find(|r| r.engine == engine).present("all engines present")
    }

    /// Lifetime utilization at which a co-processor's energy savings have
    /// paid back its additional embodied carbon, under a use-phase carbon
    /// intensity. Returns `None` if the engine saves no energy versus the
    /// CPU (the break-even never arrives).
    #[must_use]
    pub fn break_even_utilization(
        &self,
        engine: Engine,
        intensity: CarbonIntensity,
    ) -> Option<f64> {
        let cpu = self.row(Engine::Cpu);
        let co = self.row(engine);
        let saving_per_inference = intensity * (cpu.energy - co.energy);
        if saving_per_inference <= MassCo2::ZERO {
            return None;
        }
        let inferences_needed = co.ecf_block / saving_per_inference;
        // Utilization: fraction of the lifetime the *CPU-latency* workload
        // stream must run to reach that inference count.
        let busy = cpu.profile.latency() * inferences_needed;
        Some(busy.ratio(TimeSpan::years(LIFETIME_YEARS)))
    }
}

impl fmt::Display for Table4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table 4: Snapdragon 845 AI inference provisioning",
            &["engine", "latency ms", "power W", "OPCF ug", "ECF g (system)"],
        );
        for r in &self.rows {
            let ecf = if r.engine == Engine::Cpu {
                format!("{:.0}", r.ecf_system.as_grams())
            } else {
                format!(
                    "{:.0} (+{:.0})",
                    r.ecf_block.as_grams(),
                    (r.ecf_system - r.ecf_block).as_grams()
                )
            };
            t.row(vec![
                r.engine.to_string(),
                format!("{:.1}", r.profile.latency_ms),
                format!("{:.1}", r.profile.power_w),
                format!("{:.1}", r.opcf.as_micrograms()),
                ecf,
            ]);
        }
        write!(f, "{t}")?;
        writeln!(f, "  break-even lifetime utilization (US grid / solar):")?;
        for engine in [Engine::Gpu, Engine::Dsp] {
            let us = self.break_even_utilization(engine, US_INTENSITY);
            let solar =
                self.break_even_utilization(engine, EnergySource::Solar.carbon_intensity());
            writeln!(
                f,
                "    {engine}: {} / {}",
                us.map_or("never".into(), |u| format!("{:.1}%", u * 100.0)),
                solar.map_or("never".into(), |u| format!("{:.1}%", u * 100.0)),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcf_matches_printed_table() {
        let r = run();
        assert!((r.row(Engine::Cpu).opcf.as_micrograms() - 3.3).abs() < 0.05);
        // 12.1 ms x 2.9 W x 300 g/kWh = 2.92 ug; the paper prints 3.1
        // (its latency/power values are rounded).
        assert!((r.row(Engine::Dsp).opcf.as_micrograms() - 3.1).abs() < 0.25);
        assert!((r.row(Engine::Gpu).opcf.as_micrograms() - 1.5).abs() < 0.05);
    }

    #[test]
    fn ecf_matches_printed_table() {
        let r = run();
        assert!((r.row(Engine::Cpu).ecf_system.as_grams() - 253.0).abs() < 3.0);
        assert!((r.row(Engine::Gpu).ecf_block.as_grams() - 189.0).abs() < 3.0);
        assert!((r.row(Engine::Dsp).ecf_block.as_grams() - 205.0).abs() < 3.0);
    }

    #[test]
    fn co_processor_systems_raise_embodied_by_about_1_8x() {
        // "the GPU's and DSP's additional silicon area increases the
        // embodied footprint by 1.9x and 1.8x" (vs the CPU block alone).
        let r = run();
        let cpu = r.row(Engine::Cpu).ecf_system;
        let gpu = r.row(Engine::Gpu).ecf_system.ratio(cpu);
        let dsp = r.row(Engine::Dsp).ecf_system.ratio(cpu);
        assert!((1.6..=2.0).contains(&gpu), "GPU system ratio {gpu}");
        assert!((1.6..=2.0).contains(&dsp), "DSP system ratio {dsp}");
    }

    #[test]
    fn break_even_utilizations_are_single_digit_percent() {
        // The paper reports "higher than 5% and 1%" for the co-processors
        // (note: its Table 4 GPU/DSP rows appear swapped relative to the
        // prose — see EXPERIMENTS.md). As printed, the GPU saves the most
        // energy and breaks even well below the DSP.
        let r = run();
        let gpu = r.break_even_utilization(Engine::Gpu, US_INTENSITY).unwrap();
        let dsp = r.break_even_utilization(Engine::Dsp, US_INTENSITY).unwrap();
        assert!((0.004..=0.02).contains(&gpu), "GPU break-even {gpu}");
        assert!((0.02..=0.08).contains(&dsp), "DSP break-even {dsp}");
        assert!(gpu < dsp);
    }

    #[test]
    fn renewable_use_raises_break_even_linearly() {
        // "These reuse frequencies linearly increase in the presence of
        // renewable energy during operation" — solar is 300/41 = 7.3x.
        let r = run();
        let us = r.break_even_utilization(Engine::Dsp, US_INTENSITY).unwrap();
        let solar = r
            .break_even_utilization(Engine::Dsp, EnergySource::Solar.carbon_intensity())
            .unwrap();
        assert!((solar / us - 300.0 / 41.0).abs() < 1e-6);
    }

    #[test]
    fn no_break_even_without_energy_savings() {
        let r = run();
        // Against a zero-carbon grid no co-processor ever pays back.
        assert!(r
            .break_even_utilization(Engine::Gpu, CarbonIntensity::grams_per_kwh(0.0))
            .is_none());
    }

    #[test]
    fn renders_table_and_break_evens() {
        let s = run().to_string();
        assert!(s.contains("break-even") && s.contains("DSP(+CPU)"));
    }
}
