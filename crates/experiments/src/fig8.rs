//! Figure 8: the carbon-optimization design space of thirteen commodity
//! mobile SoCs — performance (a), energy (b), embodied carbon (c), and the
//! optimization-metric view (d).
//!
//! Performance and TDP come from the measured-score database in `act-data`;
//! the `act-soc` simulator independently reproduces the trends (its score is
//! included per row as a cross-check). Embodied carbon is the ACT model on
//! each SoC's die, era-appropriate DRAM and packaging.

use crate::Present;
use std::fmt;

use act_core::{DesignPoint, FabScenario, OptimizationMetric, SystemSpec};
use act_data::{SocFamily, SocSpec, MOBILE_SOCS};
use act_soc::{geekbench_suite, SocSimulator};
use act_units::{MassCo2, TimeSpan};

use crate::render::{kg, TextTable};

/// Work quantum: the suite is taken to run for `SCORE_TIME_CONSTANT /
/// score` seconds, so faster SoCs finish the same work sooner.
const SCORE_TIME_CONSTANT: f64 = 1e6;

/// One SoC's coordinates in the design space.
#[derive(Clone, Debug)]
pub struct SocRow {
    /// The SoC under evaluation.
    pub soc: &'static SocSpec,
    /// Embodied footprint of SoC die + DRAM + packaging.
    pub embodied: MassCo2,
    /// Cross-check: the `act-soc` simulator's suite score.
    pub simulated_score: f64,
    /// The design point used for metric evaluation.
    pub design: DesignPoint,
}

act_json::impl_to_json!(SocRow { soc, embodied, simulated_score, design });

/// The full survey.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// One row per SoC, in the paper's plotting order.
    pub rows: Vec<SocRow>,
}

act_json::impl_to_json!(Fig8Result { rows });

/// Runs the survey under the default fab scenario.
#[must_use]
pub fn run() -> Fig8Result {
    let fab = FabScenario::default();
    let suite = geekbench_suite();
    let rows = MOBILE_SOCS
        .iter()
        .map(|soc| {
            let embodied = SystemSpec::builder()
                .soc(soc.name, soc.die_area(), soc.node)
                .dram(soc.dram, soc.dram_capacity())
                .packaged_ics(2)
                .build()
                .embodied(&fab)
                .total();
            let delay = TimeSpan::seconds(SCORE_TIME_CONSTANT / soc.reference_score);
            let energy = soc.tdp() * delay;
            let simulated_score = SocSimulator::new(soc).run_suite(&suite).score;
            SocRow {
                soc,
                embodied,
                simulated_score,
                design: DesignPoint { embodied, energy, delay, area: soc.die_area() },
            }
        })
        .collect();
    Fig8Result { rows }
}

impl Fig8Result {
    /// The SoC a metric selects across all families.
    #[must_use]
    pub fn winner(&self, metric: OptimizationMetric) -> &SocRow {
        self.rows
            .iter()
            .min_by(|a, b| metric.score(&a.design).total_cmp(&metric.score(&b.design)))
            .present("survey is nonempty")
    }

    /// The SoC with the lowest embodied footprint (Figure 8c's minimum).
    #[must_use]
    pub fn embodied_minimum(&self) -> &SocRow {
        self.rows
            .iter()
            .min_by(|a, b| a.embodied.total_cmp(&b.embodied))
            .present("survey is nonempty")
    }

    /// Figure 8(d): metric values within one family, normalized to the
    /// newest member.
    #[must_use]
    pub fn normalized(
        &self,
        family: SocFamily,
        metric: OptimizationMetric,
    ) -> Vec<(String, f64)> {
        let in_family: Vec<&SocRow> =
            self.rows.iter().filter(|r| r.soc.family == family).collect();
        let newest = in_family.iter().max_by_key(|r| r.soc.year).present("family is nonempty");
        let base = metric.score(&newest.design);
        in_family
            .iter()
            .map(|r| (r.soc.name.to_owned(), metric.score(&r.design) / base))
            .collect()
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 8: mobile SoC survey",
            &["SoC", "node", "score", "sim score", "TDP W", "embodied kg"],
        );
        for r in &self.rows {
            t.row(vec![
                r.soc.name.to_owned(),
                r.soc.node.to_string(),
                format!("{:.0}", r.soc.reference_score),
                format!("{:.0}", r.simulated_score),
                format!("{:.1}", r.soc.tdp_w),
                kg(r.embodied),
            ]);
        }
        write!(f, "{t}")?;

        // Figure 8(d): per-family metric series normalized to the newest
        // member.
        let mut d = TextTable::new(
            "Figure 8(d): metrics normalized to each family's newest SoC",
            &["SoC", "EDP", "EDAP", "CDP", "CEP", "C2EP"],
        );
        for family in SocFamily::ALL {
            let series: Vec<Vec<(String, f64)>> = [
                OptimizationMetric::Edp,
                OptimizationMetric::Edap,
                OptimizationMetric::Cdp,
                OptimizationMetric::Cep,
                OptimizationMetric::C2ep,
            ]
            .iter()
            .map(|m| self.normalized(family, *m))
            .collect();
            for (i, (name, _)) in series[0].iter().enumerate() {
                let mut cells = vec![name.clone()];
                for metric_series in &series {
                    cells.push(format!("{:.2}", metric_series[i].1));
                }
                d.row(cells);
            }
        }
        write!(f, "{d}")?;

        writeln!(f, "  metric winners:")?;
        for metric in OptimizationMetric::ALL {
            writeln!(f, "    {metric:<5} -> {}", self.winner(metric).soc.name)?;
        }
        writeln!(f, "    lowest embodied -> {}", self.embodied_minimum().soc.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_winners_match_the_paper() {
        // "The optimal hardware in terms of EDP, EDAP, embodied carbon,
        // CEP, and C2EP are the Kirin 990, Snapdragon 865, Snapdragon 835,
        // Kirin 980, and Kirin 980, respectively."
        let r = run();
        assert_eq!(r.winner(OptimizationMetric::Edp).soc.name, "Kirin 990");
        assert_eq!(r.winner(OptimizationMetric::Edap).soc.name, "Snapdragon 865");
        assert_eq!(r.embodied_minimum().soc.name, "Snapdragon 835");
        assert_eq!(r.winner(OptimizationMetric::Cep).soc.name, "Kirin 980");
        assert_eq!(r.winner(OptimizationMetric::C2ep).soc.name, "Kirin 980");
    }

    #[test]
    fn energy_and_carbon_metrics_disagree() {
        // The headline of Section 4: carbon-aware optimization selects
        // different hardware than energy-centric optimization.
        let r = run();
        assert_ne!(
            r.winner(OptimizationMetric::Edp).soc.name,
            r.winner(OptimizationMetric::Cep).soc.name
        );
    }

    #[test]
    fn embodied_carbon_fluctuates_across_snapdragon_generations() {
        // Figure 8(c): Snapdragon embodied carbon is non-monotonic in time.
        let r = run();
        let snapdragons: Vec<&SocRow> = {
            let mut v: Vec<&SocRow> =
                r.rows.iter().filter(|row| row.soc.family == SocFamily::Snapdragon).collect();
            v.sort_by_key(|row| row.soc.year);
            v
        };
        let series: Vec<f64> = snapdragons.iter().map(|r| r.embodied.as_kilograms()).collect();
        let monotonic_up = series.windows(2).all(|w| w[1] >= w[0]);
        let monotonic_down = series.windows(2).all(|w| w[1] <= w[0]);
        assert!(!monotonic_up && !monotonic_down, "series {series:?}");
    }

    #[test]
    fn energy_and_carbon_series_diverge_within_every_family() {
        // Figure 8(d)'s arrows: in each family some older SoC looks worse
        // than the newest under EDP but *better* under C2EP.
        let r = run();
        for family in SocFamily::ALL {
            let edp = r.normalized(family, OptimizationMetric::Edp);
            let c2ep = r.normalized(family, OptimizationMetric::C2ep);
            let diverges = edp.iter().zip(&c2ep).any(|((name_e, e), (name_c, c))| {
                assert_eq!(name_e, name_c);
                *e > 1.0 && *c < 1.0
            });
            assert!(diverges, "{family}: no divergent SoC");
        }
    }

    #[test]
    fn normalization_anchors_the_newest_soc_at_one() {
        let r = run();
        for family in SocFamily::ALL {
            let series = r.normalized(family, OptimizationMetric::Cdp);
            let newest = act_data::newest_in_family(family);
            let anchor = series.iter().find(|(n, _)| n == newest.name).unwrap();
            assert!((anchor.1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn simulator_cross_check_tracks_reference_scores() {
        for row in run().rows {
            let ratio = row.simulated_score / row.soc.reference_score;
            assert!((0.65..=1.35).contains(&ratio), "{}: sim/ref ratio {ratio}", row.soc.name);
        }
    }

    #[test]
    fn embodied_magnitudes_are_mobile_ic_scale() {
        for row in run().rows {
            let kg = row.embodied.as_kilograms();
            assert!((1.0..=3.5).contains(&kg), "{}: {kg} kg", row.soc.name);
        }
    }

    #[test]
    fn renders_thirteen_rows_and_winners() {
        let s = run().to_string();
        assert!(s.contains("Kirin 990") && s.contains("metric winners"));
    }
}
