//! Figure 15: SSD over-provisioning — write amplification and lifetime
//! (top), effective embodied carbon for first- and second-life horizons
//! (bottom), with the FTL simulator cross-checking the analytical WA curve.

use crate::Present;
use std::fmt;

use act_dse::{sweep_compiled, BatchOutput, PointBatch};
use act_ssd::{
    analytical_write_amplification, effective_embodied, FtlConfig, FtlSimulator, LifetimeModel,
    OverProvisioning, TracePattern, WriteTrace,
};

use crate::render::TextTable;

/// First-life deployment horizon in years.
pub const FIRST_LIFE_YEARS: f64 = 2.0;

/// Second-life (recycled) deployment horizon in years.
pub const SECOND_LIFE_YEARS: f64 = 4.0;

/// The over-provisioning grid of the study (4 % … 40 % in 6 % steps).
#[must_use]
pub fn op_grid() -> Vec<OverProvisioning> {
    (0..7).map(|i| OverProvisioning::new_const(0.04 + 0.06 * f64::from(i))).collect()
}

/// One over-provisioning point.
#[derive(Clone, Debug)]
pub struct OpRow {
    /// The over-provisioning factor.
    pub pf: OverProvisioning,
    /// Analytical write amplification.
    pub wa_analytical: f64,
    /// FTL-simulator-measured write amplification (uniform random writes).
    pub wa_simulated: f64,
    /// Lifetime under the Meza model with analytical WA.
    pub lifetime_years: f64,
    /// Effective embodied carbon for a first-life horizon, normalized to
    /// the 4 % baseline.
    pub first_life: f64,
    /// Effective embodied carbon for a second-life horizon, normalized to
    /// the 4 % baseline at the first-life horizon.
    pub second_life: f64,
}

act_json::impl_to_json!(OpRow {
    pf,
    wa_analytical,
    wa_simulated,
    lifetime_years,
    first_life,
    second_life
});

/// The full study.
#[derive(Clone, Debug)]
pub struct Fig15Result {
    /// Rows over the over-provisioning grid.
    pub rows: Vec<OpRow>,
}

act_json::impl_to_json!(Fig15Result { rows });

/// Runs the study.
#[must_use]
pub fn run() -> Fig15Result {
    let model = LifetimeModel::default();
    let grid = op_grid();
    // The carbon terms evaluate on the compiled batch path: two interleaved
    // points per PF (first- and second-life horizons) in a structure-of-
    // arrays batch, one `effective_embodied` kernel call each. The FTL
    // simulation below stays per-point — it is a stateful simulator, not a
    // closed-form carbon term. PF values round-trip through the column
    // bit-exactly, so results match the per-point path to the last bit.
    let batch = PointBatch::from_columns(vec![
        grid.iter().flat_map(|pf| [pf.get(), pf.get()]).collect(),
        grid.iter().flat_map(|_| [FIRST_LIFE_YEARS, SECOND_LIFE_YEARS]).collect(),
    ]);
    let mut carbon = BatchOutput::new();
    sweep_compiled(
        &batch,
        |point| effective_embodied(OverProvisioning::new_const(point[0]), point[1], &model),
        &mut carbon,
    );
    let baseline = carbon.values()[0];
    let rows = grid
        .into_iter()
        .enumerate()
        .map(|(i, pf)| {
            let config = FtlConfig::small(pf);
            let mut ftl = FtlSimulator::new(config);
            let mut trace =
                WriteTrace::new(TracePattern::UniformRandom, config.logical_pages(), 7);
            let wa_simulated = ftl.measure_steady_state_wa(&mut trace, 40_000);
            OpRow {
                pf,
                wa_analytical: analytical_write_amplification(pf),
                wa_simulated,
                lifetime_years: model.lifetime_years(pf),
                first_life: carbon.values()[2 * i] / baseline,
                second_life: carbon.values()[2 * i + 1] / baseline,
            }
        })
        .collect();
    Fig15Result { rows }
}

impl Fig15Result {
    fn optimal_by<F: Fn(&OpRow) -> f64>(&self, cost: F) -> &OpRow {
        self.rows.iter().min_by(|a, b| cost(a).total_cmp(&cost(b))).present("grid is nonempty")
    }

    /// The first-life-optimal over-provisioning (paper: 16 %).
    #[must_use]
    pub fn first_life_optimal(&self) -> &OpRow {
        self.optimal_by(|r| r.first_life)
    }

    /// The second-life-optimal over-provisioning (paper: 34 %).
    #[must_use]
    pub fn second_life_optimal(&self) -> &OpRow {
        self.optimal_by(|r| r.second_life)
    }

    /// Per-service-year embodied reduction of the second-life optimum over
    /// the first-life optimum (paper: ≈1.8×).
    #[must_use]
    pub fn second_life_reduction(&self) -> f64 {
        let first = self.first_life_optimal();
        let second = self.second_life_optimal();
        (first.first_life / FIRST_LIFE_YEARS) / (second.second_life / SECOND_LIFE_YEARS)
    }
}

impl fmt::Display for Fig15Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 15: SSD over-provisioning study",
            &[
                "PF",
                "WA (model)",
                "WA (FTL sim)",
                "lifetime yr",
                "1st life CO2",
                "2nd life CO2",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.pf.to_string(),
                format!("{:.2}", r.wa_analytical),
                format!("{:.2}", r.wa_simulated),
                format!("{:.2}", r.lifetime_years),
                format!("{:.2}", r.first_life),
                format!("{:.2}", r.second_life),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "  first-life optimal PF {} | second-life optimal PF {} | per-year reduction {:.2}x",
            self.first_life_optimal().pf,
            self.second_life_optimal().pf,
            self.second_life_reduction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_life_optimum_is_16_percent() {
        let r = run();
        assert!((r.first_life_optimal().pf.get() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn second_life_optimum_is_34_percent() {
        let r = run();
        assert!((r.second_life_optimal().pf.get() - 0.34).abs() < 1e-9);
    }

    #[test]
    fn second_life_reduces_per_year_embodied_by_about_1_8x() {
        let reduction = run().second_life_reduction();
        assert!((1.6..=2.0).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn wa_falls_and_lifetime_grows_along_the_grid() {
        let r = run();
        for pair in r.rows.windows(2) {
            assert!(pair[1].wa_analytical < pair[0].wa_analytical);
            assert!(pair[1].lifetime_years > pair[0].lifetime_years);
        }
    }

    #[test]
    fn ftl_simulation_tracks_the_analytical_curve() {
        for row in run().rows {
            let ratio = row.wa_simulated / row.wa_analytical;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "PF {}: simulated {} vs analytical {}",
                row.pf,
                row.wa_simulated,
                row.wa_analytical
            );
        }
    }

    #[test]
    fn under_provisioning_is_penalized_by_replacements() {
        // The 4 % baseline wears out in ~half a year: its effective
        // embodied carbon towers over the optimum.
        let r = run();
        assert!(r.rows[0].first_life > 2.0 * r.first_life_optimal().first_life);
    }

    #[test]
    fn renders_grid_and_optima() {
        let s = run().to_string();
        assert!(s.contains("16%") && s.contains("34%"));
    }
}
