//! **Extension study** (not a paper artifact): embodied IC carbon across
//! device classes — wearable, phone, tablet, laptop, server — with the
//! Figure-6 fab uncertainty band. Mirrors the Gupta et al. HPCA'21 survey
//! the paper builds its motivation on.

use std::fmt;

use act_core::{FabScenario, SystemSpec};
use act_data::devices;
use act_units::MassCo2;

use crate::render::{kg, TextTable};

/// One device class.
#[derive(Clone, Debug)]
pub struct DeviceClassRow {
    /// Device name.
    pub name: String,
    /// Point estimate under the default fab.
    pub embodied: MassCo2,
    /// Lower bound (solar fab, 99 % abatement).
    pub lower: MassCo2,
    /// Upper bound (Taiwan grid, 95 % abatement).
    pub upper: MassCo2,
}

act_json::impl_to_json!(DeviceClassRow { name, embodied, lower, upper });

/// The survey.
#[derive(Clone, Debug)]
pub struct DevicesResult {
    /// Rows ordered smallest to largest device class.
    pub rows: Vec<DeviceClassRow>,
}

act_json::impl_to_json!(DevicesResult { rows });

/// Runs the survey.
#[must_use]
pub fn run() -> DevicesResult {
    let fab = FabScenario::default();
    let rows = [
        &devices::WEARABLE,
        &devices::FAIRPHONE_3,
        &devices::IPHONE_11,
        &devices::IPAD,
        &devices::LAPTOP,
        &devices::DELL_R740,
    ]
    .into_iter()
    .map(|bom| {
        let spec = SystemSpec::from_bom(bom);
        let (lower, upper) = spec.embodied_bounds(&fab);
        DeviceClassRow {
            name: bom.name.to_owned(),
            embodied: spec.embodied(&fab).total(),
            lower,
            upper,
        }
    })
    .collect();
    DevicesResult { rows }
}

impl fmt::Display for DevicesResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Extension: embodied IC carbon by device class (kg CO2)",
            &["device", "low", "estimate", "high"],
        );
        for r in &self.rows {
            t.row(vec![r.name.clone(), kg(r.lower), kg(r.embodied), kg(r.upper)]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_classes_are_ordered_by_footprint() {
        let r = run();
        for pair in r.rows.windows(2) {
            assert!(
                pair[1].embodied > pair[0].embodied,
                "{} ({}) should exceed {} ({})",
                pair[1].name,
                pair[1].embodied,
                pair[0].name,
                pair[0].embodied
            );
        }
    }

    #[test]
    fn wearable_to_server_spans_two_orders_of_magnitude() {
        let r = run();
        let smallest = r.rows.first().unwrap().embodied;
        let largest = r.rows.last().unwrap().embodied;
        assert!(largest.ratio(smallest) > 50.0, "span {}", largest.ratio(smallest));
    }

    #[test]
    fn bounds_bracket_every_estimate() {
        for row in run().rows {
            assert!(row.lower < row.embodied && row.embodied < row.upper, "{}", row.name);
        }
    }

    #[test]
    fn renders_all_classes() {
        let s = run().to_string();
        assert!(s.contains("smartwatch") && s.contains("Dell R740"));
    }
}
