//! The reproduction harness: one module per figure/table of the ACT paper.
//!
//! Every module exposes a `run()` function returning a typed result struct
//! whose `Display` implementation prints the same rows/series the paper
//! reports. Tests in each module pin the paper's qualitative claims: who
//! wins under each metric, by roughly what factor, and where crossovers
//! fall. EXPERIMENTS.md records paper-vs-measured for each.
//!
//! # Examples
//!
//! ```
//! let fig12 = act_experiments::fig12::run();
//! assert_eq!(fig12.optimum(act_core::OptimizationMetric::Cdp), 1024);
//! println!("{fig12}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod ext_datacenter;
pub mod ext_devices;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod render;
pub mod table12;
pub mod table4;
pub mod tables;

/// Experiment IDs in paper order, as accepted by [`render_experiment`].
pub const EXPERIMENT_IDS: [&str; 21] = [
    "fig1",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table4",
    "table5-11",
    "table12",
    "ablations",
    "datacenter",
    "devices",
    "all",
];

/// Renders one experiment (or `"all"`) to text. Returns `None` for an
/// unknown ID.
#[must_use]
pub fn render_experiment(id: &str) -> Option<String> {
    let out = match id {
        "fig1" => fig1::run().to_string(),
        "fig4" => fig4::run().to_string(),
        "fig6" => fig6::run().to_string(),
        "fig7" => fig7::run().to_string(),
        "fig8" => fig8::run().to_string(),
        "fig9" => fig9::run().to_string(),
        "fig10" => fig10::run().to_string(),
        "fig11" => fig11::run().to_string(),
        "fig12" => fig12::run().to_string(),
        "fig13" => fig13::run().to_string(),
        "fig14" => fig14::run().to_string(),
        "fig15" => fig15::run().to_string(),
        "fig16" => fig16::run().to_string(),
        "fig17" => fig17::run().to_string(),
        "table4" => table4::run().to_string(),
        "table5-11" => tables::run().to_string(),
        "table12" => table12::run().to_string(),
        "ablations" => ablations::run().to_string(),
        "datacenter" => ext_datacenter::run().to_string(),
        "devices" => ext_devices::run().to_string(),
        "all" => {
            let mut out = String::new();
            for text in EXPERIMENT_IDS
                .iter()
                .filter(|id| **id != "all")
                .filter_map(|id| render_experiment(id))
            {
                out.push_str(&text);
                out.push('\n');
            }
            out
        }
        _ => return None,
    };
    Some(out)
}

/// Serializes a result struct to one compact JSON line — experiment
/// results contain only plain data, and `ToJson` is total, so this cannot
/// fail. Compact (not pretty) so each experiment is a single line on
/// stdout: `act --json a b c` emits newline-delimited JSON that per-line
/// consumers (`jq`, the CLI tests) can parse without a streaming parser.
fn json<T: act_json::ToJson>(value: &T) -> String {
    value.to_json().render_compact()
}

/// Serializes one experiment's typed result to compact JSON. For `"all"`,
/// emits a JSON array of `{"id": ..., "result": ...}` objects, one per
/// concrete experiment in paper order. Returns `None` for unknown IDs.
///
/// # Panics
///
/// Panics if serialization fails (experiment results contain only plain
/// data and always serialize).
#[must_use]
pub fn render_experiment_json(id: &str) -> Option<String> {
    let out = match id {
        "fig1" => json(&fig1::run()),
        "fig4" => json(&fig4::run()),
        "fig6" => json(&fig6::run()),
        "fig7" => json(&fig7::run()),
        "fig8" => json(&fig8::run()),
        "fig9" => json(&fig9::run()),
        "fig10" => json(&fig10::run()),
        "fig11" => json(&fig11::run()),
        "fig12" => json(&fig12::run()),
        "fig13" => json(&fig13::run()),
        "fig14" => json(&fig14::run()),
        "fig15" => json(&fig15::run()),
        "fig16" => json(&fig16::run()),
        "fig17" => json(&fig17::run()),
        "table4" => json(&table4::run()),
        "table5-11" => json(&tables::run()),
        "table12" => json(&table12::run()),
        "ablations" => json(&ablations::run()),
        "datacenter" => json(&ext_datacenter::run()),
        "devices" => json(&ext_devices::run()),
        "all" => {
            let entries: Vec<act_json::JsonValue> = EXPERIMENT_IDS
                .iter()
                .filter(|id| **id != "all")
                .filter_map(|id| {
                    let body = render_experiment_json(id)?;
                    let result = act_json::JsonValue::parse(&body).ok()?;
                    Some(act_json::obj! { "id": id, "result": result })
                })
                .collect();
            json(&entries)
        }
        _ => return None,
    };
    Some(out)
}

/// Output format accepted by [`try_render_experiment`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputFormat {
    /// The human-readable rendering of [`render_experiment`].
    Text,
    /// The compact one-line JSON rendering of [`render_experiment_json`].
    Json,
}

/// Error returned by [`try_render_experiment`]: either the ID is unknown,
/// or the experiment itself failed (panicked) while running.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The requested ID is not in [`EXPERIMENT_IDS`].
    UnknownId(String),
    /// The experiment started but failed; `message` carries the panic
    /// payload so callers can report a structured diagnostic.
    Failed {
        /// The experiment that failed.
        id: String,
        /// The captured panic message.
        message: String,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownId(id) => {
                write!(f, "unknown experiment `{id}` (try `act list`)")
            }
            Self::Failed { id, message } => {
                write!(f, "experiment `{id}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Postfix lookup for elements that exist by construction of the result
/// structs (every `run()` builds its rows from fixed configuration tables).
/// A miss means the experiment itself is broken, so this panics with a
/// message naming the violated invariant instead of a bare `expect`.
pub(crate) trait Present<T> {
    /// Unwraps, naming the construction invariant that guarantees presence.
    fn present(self, invariant: &str) -> T;
}

impl<T> Present<T> for Option<T> {
    fn present(self, invariant: &str) -> T {
        match self {
            Some(value) => value,
            None => panic!("experiment invariant violated: {invariant}"),
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_owned()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "experiment panicked".to_owned()
    }
}

/// Fault-isolating variant of [`render_experiment`] /
/// [`render_experiment_json`]: an unknown ID or a panicking experiment
/// becomes an [`ExperimentError`] instead of aborting the caller, so a
/// batch run can report one failure and keep rendering the rest.
///
/// # Errors
///
/// Returns [`ExperimentError::UnknownId`] when `id` is not in
/// [`EXPERIMENT_IDS`], and [`ExperimentError::Failed`] when the experiment
/// panics while running.
///
/// # Examples
///
/// ```
/// use act_experiments::{try_render_experiment, ExperimentError, OutputFormat};
///
/// let out = try_render_experiment("fig12", OutputFormat::Text).unwrap();
/// assert!(!out.is_empty());
/// let err = try_render_experiment("bogus", OutputFormat::Text).unwrap_err();
/// assert!(matches!(err, ExperimentError::UnknownId(_)));
/// ```
pub fn try_render_experiment(
    id: &str,
    format: OutputFormat,
) -> Result<String, ExperimentError> {
    if !EXPERIMENT_IDS.contains(&id) {
        return Err(ExperimentError::UnknownId(id.to_owned()));
    }
    let rendered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match format {
        OutputFormat::Text => render_experiment(id),
        OutputFormat::Json => render_experiment_json(id),
    }));
    match rendered {
        Ok(Some(out)) => Ok(out),
        Ok(None) => Err(ExperimentError::UnknownId(id.to_owned())),
        Err(payload) => Err(ExperimentError::Failed {
            id: id.to_owned(),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// The concrete experiment IDs — [`EXPERIMENT_IDS`] without the `"all"`
/// meta-entry — in paper order.
#[must_use]
pub fn concrete_experiment_ids() -> Vec<&'static str> {
    EXPERIMENT_IDS.iter().copied().filter(|id| *id != "all").collect()
}

/// Wraps a concrete experiment's failure as an `"all"` failure, preserving
/// the serial contract (a failure inside `all` is reported against `all`)
/// while keeping the failing sub-experiment named in the message.
fn lift_all_error(err: &ExperimentError) -> ExperimentError {
    ExperimentError::Failed { id: "all".to_owned(), message: err.to_string() }
}

/// Parallel variant of [`try_render_experiment`].
///
/// For a concrete ID this is exactly [`try_render_experiment`]. For
/// `"all"` the concrete experiments evaluate **concurrently** — each one
/// fault-isolated in its worker — and the output is assembled in paper
/// order, byte-identical to the serial rendering whenever every
/// experiment succeeds. [`Parallelism::Serial`] reproduces the serial
/// schedule exactly (no threads are spawned).
///
/// # Errors
///
/// Returns [`ExperimentError::UnknownId`] for IDs outside
/// [`EXPERIMENT_IDS`]. A failing sub-experiment of `"all"` surfaces as
/// [`ExperimentError::Failed`] with `id == "all"` (matching the serial
/// contract, where the panic unwinds out of the whole `all` rendering)
/// and a message naming the concrete experiment that failed.
///
/// # Examples
///
/// ```
/// use act_dse::Parallelism;
/// use act_experiments::{par_try_render_experiment, try_render_experiment, OutputFormat};
///
/// let parallel =
///     par_try_render_experiment("fig12", OutputFormat::Text, Parallelism::Auto).unwrap();
/// assert_eq!(parallel, try_render_experiment("fig12", OutputFormat::Text).unwrap());
/// ```
pub fn par_try_render_experiment(
    id: &str,
    format: OutputFormat,
    parallelism: act_dse::Parallelism,
) -> Result<String, ExperimentError> {
    if id != "all" {
        return try_render_experiment(id, format);
    }
    let ids = concrete_experiment_ids();
    let parts = act_dse::par_map_ordered(parallelism, &ids, |_, sub| {
        try_render_experiment(sub, format)
    });
    match format {
        OutputFormat::Text => {
            let mut out = String::new();
            for part in parts {
                match part {
                    Ok(text) => {
                        out.push_str(&text);
                        out.push('\n');
                    }
                    Err(err) => return Err(lift_all_error(&err)),
                }
            }
            Ok(out)
        }
        OutputFormat::Json => {
            let mut entries = Vec::with_capacity(ids.len());
            for (sub, part) in ids.iter().zip(parts) {
                match part {
                    Ok(body) => {
                        // Mirrors the serial assembly, which also skips
                        // (never observed) unparseable bodies.
                        let Ok(result) = act_json::JsonValue::parse(&body) else {
                            continue;
                        };
                        entries.push(act_json::obj! { "id": sub, "result": result });
                    }
                    Err(err) => return Err(lift_all_error(&err)),
                }
            }
            Ok(json(&entries))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_renders_nonempty_text() {
        for id in EXPERIMENT_IDS {
            let text = render_experiment(id).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(text.len() > 80, "{id} rendered only {} bytes", text.len());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(render_experiment("fig99").is_none());
    }

    #[test]
    fn every_concrete_experiment_serializes_to_json() {
        for id in EXPERIMENT_IDS.iter().filter(|id| **id != "all") {
            let json =
                render_experiment_json(id).unwrap_or_else(|| panic!("{id} should serialize"));
            let parsed =
                act_json::JsonValue::parse(&json).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(parsed.is_object() || parsed.is_array() || parsed.is_null(), "{id}");
        }
    }

    #[test]
    fn all_serializes_to_a_json_array_of_every_experiment() {
        let json = render_experiment_json("all").expect("`all` should serialize");
        let parsed = act_json::JsonValue::parse(&json).unwrap();
        let entries = parsed.as_array().expect("`all` should be a JSON array");
        assert_eq!(entries.len(), EXPERIMENT_IDS.len() - 1);
        for (entry, id) in entries.iter().zip(EXPERIMENT_IDS) {
            assert_eq!(entry["id"], id, "entries should follow paper order");
            assert!(!entry["result"].is_null(), "{id} result should be present");
        }
    }

    #[test]
    fn try_render_distinguishes_unknown_ids() {
        let err = try_render_experiment("fig99", OutputFormat::Json).unwrap_err();
        assert_eq!(err, ExperimentError::UnknownId("fig99".to_owned()));
        assert!(err.to_string().contains("fig99"));
        let text = try_render_experiment("fig12", OutputFormat::Text).unwrap();
        assert_eq!(text, render_experiment("fig12").unwrap());
        let json = try_render_experiment("fig12", OutputFormat::Json).unwrap();
        assert_eq!(json, render_experiment_json("fig12").unwrap());
    }

    #[test]
    fn parallel_all_matches_serial_all_byte_for_byte() {
        use act_dse::Parallelism;
        for format in [OutputFormat::Text, OutputFormat::Json] {
            let serial = try_render_experiment("all", format).unwrap();
            let seq = par_try_render_experiment("all", format, Parallelism::Serial).unwrap();
            let par =
                par_try_render_experiment("all", format, Parallelism::threads(4)).unwrap();
            assert_eq!(serial, seq, "{format:?}");
            assert_eq!(serial, par, "{format:?}");
        }
    }

    #[test]
    fn parallel_concrete_ids_delegate_to_serial() {
        use act_dse::Parallelism;
        let serial = try_render_experiment("table4", OutputFormat::Json).unwrap();
        let par =
            par_try_render_experiment("table4", OutputFormat::Json, Parallelism::Auto).unwrap();
        assert_eq!(serial, par);
        let err = par_try_render_experiment("fig99", OutputFormat::Text, Parallelism::Auto)
            .unwrap_err();
        assert_eq!(err, ExperimentError::UnknownId("fig99".to_owned()));
    }

    #[test]
    fn concrete_ids_exclude_the_all_meta_entry() {
        let ids = concrete_experiment_ids();
        assert_eq!(ids.len(), EXPERIMENT_IDS.len() - 1);
        assert!(!ids.contains(&"all"));
        assert_eq!(ids[0], "fig1");
    }

    #[test]
    fn panic_messages_are_extracted_from_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("boom: {}", 42)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "boom: 42");
        let caught = std::panic::catch_unwind(|| panic!("static payload")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static payload");
    }
}
