//! Figure 14: the lifetime-extension study — annual efficiency gains
//! (left) vs the embodied/operational trade-off of replacement cadence
//! (right).

use std::fmt;

use act_data::MOBILE_SOCS;
use act_soc::{annual_efficiency_improvement, ReplacementModel};

use crate::render::TextTable;

/// One lifetime choice of the sweep.
#[derive(Clone, Debug)]
pub struct LifetimeRow {
    /// Replacement cadence in years.
    pub lifetime_years: u32,
    /// Devices consumed over the horizon.
    pub devices: u32,
    /// Embodied total (relative units).
    pub embodied: f64,
    /// Operational total (relative units).
    pub operational: f64,
}

act_json::impl_to_json!(LifetimeRow { lifetime_years, devices, embodied, operational });

impl LifetimeRow {
    /// Combined footprint.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.embodied + self.operational
    }
}

/// The full study.
#[derive(Clone, Debug)]
pub struct Fig14Result {
    /// Measured annual efficiency improvement (paper: ≈1.21×).
    pub annual_improvement: f64,
    /// The replacement model used for the sweep.
    pub model: ReplacementModel,
    /// Rows for 1…10-year lifetimes.
    pub rows: Vec<LifetimeRow>,
}

act_json::impl_to_json!(Fig14Result { annual_improvement, model, rows });

/// Runs the study with the efficiency trend measured from the SoC database.
#[must_use]
pub fn run() -> Fig14Result {
    let annual_improvement = annual_efficiency_improvement(&MOBILE_SOCS);
    let model = ReplacementModel::mobile_study(annual_improvement);
    let rows = (1..=model.horizon_years)
        .map(|lt| LifetimeRow {
            lifetime_years: lt,
            devices: model.devices_needed(lt),
            embodied: model.embodied_total(lt),
            operational: model.operational_total(lt),
        })
        .collect();
    Fig14Result { annual_improvement, model, rows }
}

impl Fig14Result {
    /// The footprint-minimizing lifetime.
    #[must_use]
    pub fn optimal_lifetime(&self) -> u32 {
        self.model.optimal_lifetime_years()
    }

    /// Improvement of the optimum over today's 2–3-year replacement
    /// cadence (paper: up to 1.26×).
    #[must_use]
    pub fn improvement_over_current_lifetimes(&self) -> f64 {
        let current = (self.model.total(2) + self.model.total(3)) / 2.0;
        current / self.model.total(self.optimal_lifetime())
    }
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14 (left): annual energy-efficiency improvement {:.2}x",
            self.annual_improvement
        )?;
        let mut t = TextTable::new(
            "Figure 14 (right): lifetime sweep over a 10-year horizon",
            &["lifetime yr", "devices", "embodied", "operational", "total"],
        );
        for r in &self.rows {
            t.row(vec![
                r.lifetime_years.to_string(),
                r.devices.to_string(),
                format!("{:.2}", r.embodied),
                format!("{:.2}", r.operational),
                format!("{:.2}", r.total()),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "  optimal lifetime {} years ({:.2}x better than 2-3 year cadence)",
            self.optimal_lifetime(),
            self.improvement_over_current_lifetimes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annual_improvement_matches_papers_1_21x() {
        let r = run();
        assert!(
            (1.12..=1.30).contains(&r.annual_improvement),
            "improvement {}",
            r.annual_improvement
        );
    }

    #[test]
    fn optimal_lifetime_is_about_five_years() {
        let opt = run().optimal_lifetime();
        assert!((4..=6).contains(&opt), "optimum {opt}");
    }

    #[test]
    fn optimum_beats_current_cadence_by_about_1_26x() {
        let improvement = run().improvement_over_current_lifetimes();
        assert!((1.15..=1.40).contains(&improvement), "improvement {improvement}");
    }

    #[test]
    fn embodied_and_operational_pull_in_opposite_directions() {
        let r = run();
        for pair in r.rows.windows(2) {
            assert!(pair[1].embodied <= pair[0].embodied);
            assert!(pair[1].operational >= pair[0].operational);
        }
    }

    #[test]
    fn total_is_interior_minimized() {
        // Neither extreme (annual replacement, never replace) is optimal.
        let r = run();
        let opt = r.optimal_lifetime();
        assert!(opt > 1 && opt < 10);
    }

    #[test]
    fn renders_sweep() {
        let s = run().to_string();
        assert!(s.contains("optimal lifetime") && s.contains("devices"));
    }
}
