//! Figure 10: how renewable energy during *use* (top) and during
//! *manufacturing* (bottom) moves the optimal provisioning choice between
//! general-purpose CPUs and specialized co-processors.

use crate::Present;
use std::fmt;

use act_core::{FabScenario, OperationalModel};
use act_data::snapdragon845::{profile, Engine, NODE, PROFILES};
use act_data::{EnergySource, Location};
use act_units::{CarbonIntensity, MassCo2, TimeSpan};

use crate::render::TextTable;

/// Lifetime utilization of the AI workload stream (relative to the CPU
/// engine running continuously). Mobile AI runs a few percent of the time.
pub const UTILIZATION: f64 = 0.04;

/// Device lifetime.
pub const LIFETIME_YEARS: f64 = 3.0;

/// A named carbon-intensity level of the sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntensityLevel {
    /// Label as printed on the figure's x-axis.
    pub label: &'static str,
    /// The intensity.
    pub intensity: CarbonIntensity,
}

act_json::impl_to_json!(IntensityLevel { label, intensity });

/// Per-engine per-inference footprint under one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioCell {
    /// The engine.
    pub engine: Engine,
    /// Amortized embodied footprint per inference.
    pub embodied: MassCo2,
    /// Operational footprint per inference.
    pub operational: MassCo2,
}

act_json::impl_to_json!(ScenarioCell { engine, embodied, operational });

impl ScenarioCell {
    /// Combined per-inference footprint.
    #[must_use]
    pub fn total(&self) -> MassCo2 {
        self.embodied + self.operational
    }
}

/// One x-axis group: an intensity level with all three engines.
#[derive(Clone, Debug)]
pub struct ScenarioGroup {
    /// The swept intensity level.
    pub level: IntensityLevel,
    /// CPU, DSP, GPU cells.
    pub cells: Vec<ScenarioCell>,
}

act_json::impl_to_json!(ScenarioGroup { level, cells });

impl ScenarioGroup {
    /// The engine with the lowest combined footprint.
    #[must_use]
    pub fn winner(&self) -> Engine {
        self.cells
            .iter()
            .min_by(|a, b| a.total().total_cmp(&b.total()))
            .present("nonempty")
            .engine
    }
}

/// Both sweeps of Figure 10.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// Top: use-phase intensity sweep with a Taiwan-grid fab.
    pub use_sweep: Vec<ScenarioGroup>,
    /// Bottom: fab intensity sweep with solar-powered use.
    pub fab_sweep: Vec<ScenarioGroup>,
}

act_json::impl_to_json!(Fig10Result { use_sweep, fab_sweep });

fn levels_use() -> [IntensityLevel; 4] {
    [
        IntensityLevel { label: "Coal", intensity: EnergySource::Coal.carbon_intensity() },
        IntensityLevel {
            label: "US grid",
            intensity: Location::UnitedStates.carbon_intensity(),
        },
        IntensityLevel {
            label: "Renewable",
            intensity: EnergySource::Solar.carbon_intensity(),
        },
        IntensityLevel { label: "Carbon Free", intensity: CarbonIntensity::grams_per_kwh(0.0) },
    ]
}

fn levels_fab() -> [IntensityLevel; 4] {
    [
        IntensityLevel { label: "Coal", intensity: EnergySource::Coal.carbon_intensity() },
        IntensityLevel { label: "Taiwan grid", intensity: Location::Taiwan.carbon_intensity() },
        IntensityLevel {
            label: "Renewable",
            intensity: EnergySource::Solar.carbon_intensity(),
        },
        IntensityLevel { label: "Carbon Free", intensity: CarbonIntensity::grams_per_kwh(0.0) },
    ]
}

/// The workload volume: inferences served over the lifetime at the study's
/// utilization (counted against the CPU engine's latency, so every engine
/// serves the same task stream).
fn lifetime_inferences() -> f64 {
    let lifetime = TimeSpan::years(LIFETIME_YEARS);
    (lifetime * UTILIZATION).as_seconds() / profile(Engine::Cpu).latency().as_seconds()
}

fn group(
    fab: &FabScenario,
    use_intensity: CarbonIntensity,
    level: IntensityLevel,
) -> ScenarioGroup {
    let op = OperationalModel::new(use_intensity);
    let cpa = act_core::memo::carbon_per_area(fab, NODE);
    let n = lifetime_inferences();
    let cpu_block = cpa * profile(Engine::Cpu).block_area();
    let cells = PROFILES
        .iter()
        .map(|p| {
            let system = if p.engine == Engine::Cpu {
                cpu_block
            } else {
                cpu_block + cpa * p.block_area()
            };
            ScenarioCell {
                engine: p.engine,
                embodied: system / n,
                operational: op.footprint(p.energy_per_inference()),
            }
        })
        .collect();
    ScenarioGroup { level, cells }
}

/// Runs both sweeps.
#[must_use]
pub fn run() -> Fig10Result {
    let taiwan_fab = FabScenario::taiwan_grid();
    let use_sweep = levels_use()
        .into_iter()
        .map(|level| group(&taiwan_fab, level.intensity, level))
        .collect();
    let solar_use = EnergySource::Solar.carbon_intensity();
    let fab_sweep = levels_fab()
        .into_iter()
        .map(|level| group(&FabScenario::with_intensity(level.intensity), solar_use, level))
        .collect();
    Fig10Result { use_sweep, fab_sweep }
}

impl Fig10Result {
    /// The 1.8× headline: with carbon-free use, the CPU system's footprint
    /// advantage over the best co-processor system.
    #[must_use]
    pub fn carbon_free_cpu_advantage(&self) -> f64 {
        let group = self
            .use_sweep
            .iter()
            .find(|g| g.level.label == "Carbon Free")
            .present("carbon-free level present");
        let cpu =
            group.cells.iter().find(|c| c.engine == Engine::Cpu).present("CPU present").total();
        let best_co = group
            .cells
            .iter()
            .filter(|c| c.engine != Engine::Cpu)
            .map(ScenarioCell::total)
            .min_by(|a, b| a.total_cmp(b))
            .present("co-processors present");
        best_co.ratio(cpu)
    }
}

fn write_sweep(
    f: &mut fmt::Formatter<'_>,
    title: &str,
    sweep: &[ScenarioGroup],
) -> fmt::Result {
    let mut t = TextTable::new(
        title,
        &["intensity", "engine", "embodied ug", "operational ug", "total ug", "winner"],
    );
    for g in sweep {
        let winner = g.winner();
        for c in &g.cells {
            t.row(vec![
                g.level.label.to_owned(),
                c.engine.to_string(),
                format!("{:.3}", c.embodied.as_micrograms()),
                format!("{:.3}", c.operational.as_micrograms()),
                format!("{:.3}", c.total().as_micrograms()),
                if c.engine == winner { "*".into() } else { String::new() },
            ]);
        }
    }
    write!(f, "{t}")
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_sweep(
            f,
            "Figure 10 (top): use-phase intensity sweep, Taiwan-grid fab",
            &self.use_sweep,
        )?;
        write_sweep(
            f,
            "Figure 10 (bottom): fab intensity sweep, solar-powered use",
            &self.fab_sweep,
        )?;
        writeln!(
            f,
            "  carbon-free use: CPU wins by {:.2}x over the best co-processor",
            self.carbon_free_cpu_advantage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renewable_use_shifts_the_winner_to_the_cpu() {
        // Top sweep: co-processors win on dirty grids, the CPU wins once
        // operation is renewable/carbon-free.
        let r = run();
        let winners: Vec<Engine> = r.use_sweep.iter().map(ScenarioGroup::winner).collect();
        assert_ne!(winners[0], Engine::Cpu, "coal use should favor a co-processor");
        assert_ne!(winners[1], Engine::Cpu, "US grid use should favor a co-processor");
        assert_eq!(winners[2], Engine::Cpu, "renewable use should favor the CPU");
        assert_eq!(winners[3], Engine::Cpu, "carbon-free use should favor the CPU");
    }

    #[test]
    fn green_fabs_shift_the_winner_to_specialized_hardware() {
        // Bottom sweep: dirty fabs penalize the extra co-processor silicon;
        // green fabs make specialization cheap.
        let r = run();
        let winners: Vec<Engine> = r.fab_sweep.iter().map(ScenarioGroup::winner).collect();
        assert_eq!(winners[0], Engine::Cpu, "coal fab should favor the CPU");
        assert_eq!(winners[1], Engine::Cpu, "Taiwan-grid fab should favor the CPU");
        assert_ne!(winners[2], Engine::Cpu, "renewable fab should favor a co-processor");
        assert_ne!(winners[3], Engine::Cpu, "carbon-free fab should favor a co-processor");
    }

    #[test]
    fn cpu_advantage_at_carbon_free_use_is_about_1_8x() {
        let advantage = run().carbon_free_cpu_advantage();
        assert!((1.6..=2.0).contains(&advantage), "advantage {advantage}");
    }

    #[test]
    fn operational_share_falls_along_the_use_sweep() {
        let r = run();
        for engine_idx in 0..3 {
            let shares: Vec<f64> = r
                .use_sweep
                .iter()
                .map(|g| {
                    let c = &g.cells[engine_idx];
                    c.operational.ratio(c.total())
                })
                .collect();
            for pair in shares.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-12);
            }
        }
    }

    #[test]
    fn embodied_is_constant_along_the_use_sweep() {
        let r = run();
        for engine_idx in 0..3 {
            let first = r.use_sweep[0].cells[engine_idx].embodied;
            for g in &r.use_sweep {
                assert_eq!(g.cells[engine_idx].embodied, first);
            }
        }
    }

    #[test]
    fn renders_both_sweeps() {
        let s = run().to_string();
        assert!(s.contains("(top)") && s.contains("(bottom)") && s.contains("Carbon Free"));
    }
}
