//! Appendix Tables 5–11: the model's data tables, rendered.

use std::fmt;

use act_data::{
    Abatement, DramTechnology, EnergySource, HddModel, Location, ProcessNode, SsdTechnology,
    MPA,
};

use crate::render::TextTable;

/// A marker result whose `Display` prints every appendix table.
#[derive(Clone, Copy, Debug, Default)]
pub struct TablesResult;

impl act_json::ToJson for TablesResult {
    /// A marker object. The former `Serialize` derive rendered this unit
    /// struct as `null`, which contradicted the `all`-rendering contract
    /// that every experiment contributes a non-null result; the appendix
    /// tables are text-only (`Display`), so the JSON form just points
    /// there.
    fn to_json(&self) -> act_json::JsonValue {
        act_json::obj! {
            "tables": vec!["table5", "table6", "table7", "table8", "table9", "table10", "table11"],
            "format": "text",
        }
    }
}

/// Runs the experiment (the data is static; this exists for symmetry).
#[must_use]
pub fn run() -> TablesResult {
    TablesResult
}

impl fmt::Display for TablesResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t5 = TextTable::new(
            "Table 5: carbon efficiency of energy sources",
            &["source", "g CO2/kWh", "payback months"],
        );
        for s in EnergySource::ALL {
            t5.row(vec![
                s.to_string(),
                format!("{:.0}", s.carbon_intensity().as_grams_per_kwh()),
                format!("{:.0}", s.energy_payback_months()),
            ]);
        }
        write!(f, "{t5}")?;

        let mut t6 = TextTable::new(
            "Table 6: grid carbon intensity by geography",
            &["location", "g CO2/kWh"],
        );
        for l in Location::ALL {
            t6.row(vec![
                l.to_string(),
                format!("{:.0}", l.carbon_intensity().as_grams_per_kwh()),
            ]);
        }
        write!(f, "{t6}")?;

        let mut t7 = TextTable::new(
            "Table 7: fab energy and gas per area by node",
            &["node", "EPA kWh/cm^2", "GPA 95% g/cm^2", "GPA 99% g/cm^2"],
        );
        for n in ProcessNode::ALL {
            t7.row(vec![
                n.to_string(),
                format!("{:.3}", n.energy_per_area().as_kwh_per_cm2()),
                format!("{:.0}", n.gas_per_area(Abatement::Percent95).as_grams_per_cm2()),
                format!("{:.0}", n.gas_per_area(Abatement::Percent99).as_grams_per_cm2()),
            ]);
        }
        write!(f, "{t7}")?;
        writeln!(f, "Table 8: raw materials (MPA) = {:.0} g CO2/cm^2", MPA.as_grams_per_cm2())?;

        let mut t9 =
            TextTable::new("Table 9: DRAM embodied carbon", &["technology", "g CO2/GB"]);
        for d in DramTechnology::ALL {
            t9.row(vec![d.to_string(), format!("{:.0}", d.carbon_per_gb().as_grams_per_gb())]);
        }
        write!(f, "{t9}")?;

        let mut t10 =
            TextTable::new("Table 10: SSD embodied carbon", &["technology", "g CO2/GB"]);
        for s in SsdTechnology::ALL {
            t10.row(vec![s.to_string(), format!("{:.2}", s.carbon_per_gb().as_grams_per_gb())]);
        }
        write!(f, "{t10}")?;

        let mut t11 = TextTable::new(
            "Table 11: Seagate HDD embodied carbon",
            &["model", "type", "g CO2/GB"],
        );
        for h in HddModel::ALL {
            t11.row(vec![
                h.to_string(),
                format!("{:?}", h.class()),
                format!("{:.2}", h.carbon_per_gb().as_grams_per_gb()),
            ]);
        }
        write!(f, "{t11}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_seven_tables() {
        let s = run().to_string();
        for title in
            ["Table 5", "Table 6", "Table 7", "Table 8", "Table 9", "Table 10", "Table 11"]
        {
            assert!(s.contains(title), "missing {title}");
        }
    }

    #[test]
    fn contains_key_anchor_values() {
        let s = run().to_string();
        assert!(s.contains("820")); // coal
        assert!(s.contains("583")); // Taiwan
        assert!(s.contains("2.750")); // 3nm EPA
        assert!(s.contains("600")); // 50nm DDR3
    }
}
