//! Figure 7: embodied carbon per gigabyte for DRAM (left), NAND/SSD
//! (center) and HDD (right) technologies.

use std::fmt;

use act_data::{DramTechnology, HddModel, SsdTechnology};

use crate::render::TextTable;

/// One bar of the figure.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Technology/product label.
    pub label: String,
    /// Carbon per GB in grams.
    pub grams_per_gb: f64,
    /// `true` for device-level characterization (black bars), `false` for
    /// component-level analyses (grey bars).
    pub device_level: bool,
}

act_json::impl_to_json!(Bar { label, grams_per_gb, device_level });

/// The three panels.
#[derive(Clone, Debug)]
pub struct Fig7Result {
    /// DRAM technologies (left panel).
    pub dram: Vec<Bar>,
    /// SSD/NAND technologies (center panel).
    pub ssd: Vec<Bar>,
    /// HDD products (right panel).
    pub hdd: Vec<Bar>,
}

act_json::impl_to_json!(Fig7Result { dram, ssd, hdd });

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig7Result {
    Fig7Result {
        dram: DramTechnology::ALL
            .iter()
            .map(|t| Bar {
                label: t.to_string(),
                grams_per_gb: t.carbon_per_gb().as_grams_per_gb(),
                device_level: true,
            })
            .collect(),
        ssd: SsdTechnology::ALL
            .iter()
            .map(|t| Bar {
                label: t.to_string(),
                grams_per_gb: t.carbon_per_gb().as_grams_per_gb(),
                device_level: t.is_device_level(),
            })
            .collect(),
        hdd: HddModel::ALL
            .iter()
            .map(|m| Bar {
                label: m.to_string(),
                grams_per_gb: m.carbon_per_gb().as_grams_per_gb(),
                device_level: false,
            })
            .collect(),
    }
}

impl Fig7Result {
    fn max(bars: &[Bar]) -> f64 {
        bars.iter().map(|b| b.grams_per_gb).fold(0.0, f64::max)
    }

    /// Peak DRAM intensity (g CO₂/GB).
    #[must_use]
    pub fn dram_peak(&self) -> f64 {
        Self::max(&self.dram)
    }

    /// Peak SSD intensity (g CO₂/GB).
    #[must_use]
    pub fn ssd_peak(&self) -> f64 {
        Self::max(&self.ssd)
    }

    /// Peak HDD intensity (g CO₂/GB).
    #[must_use]
    pub fn hdd_peak(&self) -> f64 {
        Self::max(&self.hdd)
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (panel, bars) in [("DRAM", &self.dram), ("SSD", &self.ssd), ("HDD", &self.hdd)] {
            let mut t = TextTable::new(
                &format!("Figure 7 ({panel}): embodied carbon per GB"),
                &["technology", "g CO2/GB", "characterization"],
            );
            for b in bars {
                t.row(vec![
                    b.label.clone(),
                    format!("{:.2}", b.grams_per_gb),
                    if b.device_level {
                        "device-level".into()
                    } else {
                        "component-level".into()
                    },
                ]);
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_sizes_match_appendix_tables() {
        let r = run();
        assert_eq!(r.dram.len(), 8);
        assert_eq!(r.ssd.len(), 12);
        assert_eq!(r.hdd.len(), 10);
    }

    #[test]
    fn dram_is_the_most_carbon_intensive_per_gb() {
        // "At commensurate technology nodes, the carbon intensity of DRAM
        // is higher than that of SSD and HDD."
        let r = run();
        assert!(r.dram_peak() > r.ssd_peak());
        assert!(r.dram_peak() > r.hdd_peak());
        // Same holds for modern nodes: LPDDR4 (48) vs V3 TLC (6.3).
        assert!(
            DramTechnology::Lpddr4.carbon_per_gb() > SsdTechnology::V3NandTlc.carbon_per_gb()
        );
    }

    #[test]
    fn newer_nodes_are_cleaner_per_gb_for_dram_and_ssd() {
        assert!(
            DramTechnology::Ddr4_10nm.carbon_per_gb()
                < DramTechnology::Ddr3_50nm.carbon_per_gb()
        );
        assert!(
            SsdTechnology::Nand1zTlc.carbon_per_gb() < SsdTechnology::Nand30nm.carbon_per_gb()
        );
    }

    #[test]
    fn both_characterization_styles_present_for_ssd() {
        let r = run();
        assert!(r.ssd.iter().any(|b| b.device_level));
        assert!(r.ssd.iter().any(|b| !b.device_level));
    }

    #[test]
    fn renders_three_panels() {
        let s = run().to_string();
        assert!(s.contains("(DRAM)") && s.contains("(SSD)") && s.contains("(HDD)"));
    }
}
