//! Figure 12: the NVDLA MAC-array sweep — performance/EDP pick the widest
//! array, while each carbon metric picks a successively leaner design.

use crate::Present;
use std::fmt;

use act_accel::{AccelConfig, Network};
use act_core::{DesignPoint, FabScenario, OptimizationMetric};
use act_dse::powers_of_two_iter;
use act_units::MassCo2;

use crate::render::TextTable;

/// One configuration's coordinates.
#[derive(Clone, Debug)]
pub struct MacRow {
    /// MAC-array width.
    pub macs: u32,
    /// Embodied footprint of the accelerator silicon.
    pub embodied: MassCo2,
    /// Inference throughput in FPS.
    pub fps: f64,
    /// The design point for metric evaluation.
    pub design: DesignPoint,
}

act_json::impl_to_json!(MacRow { macs, embodied, fps, design });

/// The sweep.
#[derive(Clone, Debug)]
pub struct Fig12Result {
    /// Rows for 64…2048 MACs.
    pub rows: Vec<MacRow>,
}

act_json::impl_to_json!(Fig12Result { rows });

/// Runs the 16 nm sweep on the mobile-vision network under the default fab.
#[must_use]
pub fn run() -> Fig12Result {
    let fab = FabScenario::default();
    let network = Network::mobile_vision();
    let rows = powers_of_two_iter(64, 2048)
        .map(|macs| {
            let config = AccelConfig::new(macs);
            let eval = config.evaluate(&network);
            let embodied = act_core::memo::carbon_per_area(&fab, config.node()) * config.area();
            MacRow {
                macs,
                embodied,
                fps: eval.throughput().as_per_second(),
                design: DesignPoint {
                    embodied,
                    energy: eval.energy(),
                    delay: eval.latency(),
                    area: config.area(),
                },
            }
        })
        .collect();
    Fig12Result { rows }
}

impl Fig12Result {
    /// The MAC count a metric selects.
    #[must_use]
    pub fn optimum(&self, metric: OptimizationMetric) -> u32 {
        self.rows
            .iter()
            .min_by(|a, b| metric.score(&a.design).total_cmp(&metric.score(&b.design)))
            .present("sweep is nonempty")
            .macs
    }

    /// The MAC count with the best raw performance.
    #[must_use]
    pub fn performance_optimum(&self) -> u32 {
        self.rows
            .iter()
            .max_by(|a, b| a.fps.total_cmp(&b.fps))
            .present("sweep is nonempty")
            .macs
    }
}

impl fmt::Display for Fig12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 12: 16nm NVDLA-style sweep",
            &["MACs", "FPS", "energy mJ", "embodied g", "EDP", "CDP", "CEP", "C2EP", "CE2P"],
        );
        let norm: Vec<(OptimizationMetric, f64)> = [
            OptimizationMetric::Edp,
            OptimizationMetric::Cdp,
            OptimizationMetric::Cep,
            OptimizationMetric::C2ep,
            OptimizationMetric::Ce2p,
        ]
        .into_iter()
        .map(|m| (m, m.score(&self.rows[0].design)))
        .collect();
        for r in &self.rows {
            let mut cells = vec![
                r.macs.to_string(),
                format!("{:.1}", r.fps),
                format!("{:.2}", r.design.energy.as_millijoules()),
                format!("{:.1}", r.embodied.as_grams()),
            ];
            for (m, base) in &norm {
                cells.push(format!("{:.3}", m.score(&r.design) / base));
            }
            t.row(cells);
        }
        write!(f, "{t}")?;
        writeln!(f, "  performance optimal -> {} MACs", self.performance_optimum())?;
        for metric in OptimizationMetric::ALL {
            writeln!(f, "  {metric:<5} optimal -> {} MACs", self.optimum(metric))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_and_edp_pick_the_widest_array() {
        let r = run();
        assert_eq!(r.performance_optimum(), 2048);
        assert_eq!(r.optimum(OptimizationMetric::Edp), 2048);
    }

    #[test]
    fn carbon_metrics_pick_successively_leaner_designs() {
        // "the optimal configuration for CDP, CE2P, CEP, C2EP are 1024,
        // 512, 256, 128 MACs, respectively."
        let r = run();
        assert_eq!(r.optimum(OptimizationMetric::Cdp), 1024);
        assert_eq!(r.optimum(OptimizationMetric::Ce2p), 512);
        assert_eq!(r.optimum(OptimizationMetric::Cep), 256);
        assert_eq!(r.optimum(OptimizationMetric::C2ep), 128);
    }

    #[test]
    fn sustainability_targets_shrink_by_up_to_an_order_of_magnitude() {
        // "designing the accelerator based on the sustainability target
        // reduces the carbon-aware optimization target by up to an order of
        // magnitude" vs the most parallel configuration.
        let r = run();
        let widest = &r.rows.last().unwrap().design;
        let mut best_reduction: f64 = 1.0;
        for metric in OptimizationMetric::CARBON_AWARE {
            let at_widest = metric.score(widest);
            let at_opt = r
                .rows
                .iter()
                .map(|row| metric.score(&row.design))
                .fold(f64::INFINITY, f64::min);
            best_reduction = best_reduction.max(at_widest / at_opt);
        }
        assert!(best_reduction > 5.0, "best reduction only {best_reduction}");
    }

    #[test]
    fn embodied_grows_monotonically_with_macs() {
        let r = run();
        for pair in r.rows.windows(2) {
            assert!(pair[1].embodied > pair[0].embodied);
        }
    }

    #[test]
    fn fps_grows_monotonically_with_macs() {
        let r = run();
        for pair in r.rows.windows(2) {
            assert!(pair[1].fps > pair[0].fps);
        }
    }

    #[test]
    fn renders_sweep_and_optima() {
        let s = run().to_string();
        assert!(s.contains("2048") && s.contains("optimal"));
    }
}
