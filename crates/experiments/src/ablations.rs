//! Sensitivity studies over the model's calibration choices — the ablation
//! companion to the paper reproductions (DESIGN.md §5).

use std::fmt;

use act_core::{FabScenario, SystemSpec};
use act_data::{Abatement, DramTechnology, ProcessNode};
use act_ssd::{
    analytical_write_amplification, FtlConfig, FtlSimulator, OverProvisioning, TracePattern,
    WriteTrace,
};
use act_units::{Area, Capacity, Fraction, MassCo2};

use crate::render::TextTable;

/// One sensitivity series: a swept parameter and the resulting outputs.
#[derive(Clone, Debug)]
pub struct Sensitivity {
    /// What is being swept.
    pub parameter: String,
    /// (setting label, output value) pairs.
    pub series: Vec<(String, f64)>,
}

act_json::impl_to_json!(Sensitivity { parameter, series });

impl Sensitivity {
    /// Max output over min output — how much the assumption matters.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or contains non-positive values.
    #[must_use]
    pub fn spread(&self) -> f64 {
        let min = self.series.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = self.series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        assert!(min > 0.0, "sensitivity outputs must be positive");
        max / min
    }
}

/// All ablations.
#[derive(Clone, Debug)]
pub struct AblationsResult {
    /// The sensitivity series, one per calibration choice.
    pub studies: Vec<Sensitivity>,
}

act_json::impl_to_json!(AblationsResult { studies });

/// Runs every ablation.
#[must_use]
pub fn run() -> AblationsResult {
    let die = Area::square_millimeters(90.0);
    let node = ProcessNode::N7;

    // Yield: ECF of a flagship die across realistic yields.
    let yield_study = Sensitivity {
        parameter: "fab yield (7nm 90mm2 die, g CO2)".into(),
        series: [0.5, 0.625, 0.75, 0.875, 1.0]
            .into_iter()
            .map(|y| {
                let fab = FabScenario::default().with_yield(Fraction::new_const(y));
                (format!("Y={y}"), (fab.carbon_per_area(node) * die).as_grams())
            })
            .collect(),
    };

    // Abatement: same die across the three characterized strategies.
    let abatement_study = Sensitivity {
        parameter: "gaseous abatement (7nm 90mm2 die, g CO2)".into(),
        series: Abatement::ALL
            .into_iter()
            .map(|a| {
                let fab = FabScenario::default().with_abatement(a);
                (a.to_string(), (fab.carbon_per_area(node) * die).as_grams())
            })
            .collect(),
    };

    // Fab energy source: a whole device under four fabs.
    let spec = SystemSpec::from_bom(&act_data::devices::IPHONE_11);
    let fab_study = Sensitivity {
        parameter: "fab energy source (iPhone 11 ICs, kg CO2)".into(),
        series: [
            ("coal", FabScenario::coal()),
            ("Taiwan grid", FabScenario::taiwan_grid()),
            ("25% renewable", FabScenario::default()),
            ("solar", FabScenario::renewable()),
        ]
        .into_iter()
        .map(|(label, fab)| (label.to_owned(), spec.embodied(&fab).total().as_kilograms()))
        .collect(),
    };

    // WA model: analytical vs simulated at the study's anchor points.
    let wa_study = Sensitivity {
        parameter: "write-amplification model (WA at PF)".into(),
        series: [0.16, 0.34]
            .into_iter()
            .flat_map(|op| {
                let pf = OverProvisioning::new_const(op);
                let config = FtlConfig::small(pf);
                let mut ftl = FtlSimulator::new(config);
                let mut trace =
                    WriteTrace::new(TracePattern::UniformRandom, config.logical_pages(), 5);
                let simulated = ftl.measure_steady_state_wa(&mut trace, 30_000);
                [
                    (format!("analytical @ {pf}"), analytical_write_amplification(pf)),
                    (format!("FTL sim @ {pf}"), simulated),
                ]
            })
            .collect(),
    };

    // DRAM-node assignment: the era choice behind Figure 8c's minimum.
    let dram_study = Sensitivity {
        parameter: "DRAM technology (4 GB phone memory, g CO2)".into(),
        series: DramTechnology::ALL
            .into_iter()
            .map(|t| {
                let mass: MassCo2 = t.carbon_per_gb() * Capacity::gigabytes(4.0);
                (t.to_string(), mass.as_grams())
            })
            .collect(),
    };

    AblationsResult {
        studies: vec![yield_study, abatement_study, fab_study, wa_study, dram_study],
    }
}

impl fmt::Display for AblationsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for study in &self.studies {
            let mut t = TextTable::new(
                &format!("Ablation: {}", study.parameter),
                &["setting", "value"],
            );
            for (label, value) in &study.series {
                t.row(vec![label.clone(), format!("{value:.2}")]);
            }
            write!(f, "{t}")?;
            writeln!(f, "  spread: {:.2}x", study.spread())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_studies_present() {
        assert_eq!(run().studies.len(), 5);
    }

    #[test]
    fn yield_spread_is_2x_over_the_range() {
        // 1/Y from 1.0 to 0.5 doubles the footprint.
        let r = run();
        let spread = r.studies[0].spread();
        assert!((1.9..=2.1).contains(&spread), "spread {spread}");
    }

    #[test]
    fn abatement_matters_less_than_yield() {
        let r = run();
        assert!(r.studies[1].spread() < r.studies[0].spread());
    }

    #[test]
    fn fab_energy_source_moves_device_footprints_substantially() {
        let r = run();
        let spread = r.studies[2].spread();
        assert!(spread > 1.3, "fab CI spread {spread}");
    }

    #[test]
    fn dram_node_assignment_is_the_largest_lever() {
        // 50 nm DDR3 vs LPDDR4 differ 12.5x per GB — dwarfing every fab
        // parameter; exactly why legacy-node LCAs mislead (Table 12).
        let r = run();
        let spread = r.studies[4].spread();
        assert!(spread > 10.0, "DRAM spread {spread}");
    }

    #[test]
    fn renders_every_study() {
        let s = run().to_string();
        assert_eq!(s.matches("Ablation:").count(), 5);
        assert!(s.contains("spread"));
    }
}
