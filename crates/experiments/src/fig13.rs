//! Figure 13: designing lean accelerators — QoS-constrained carbon
//! optimization (left) and area-budgeted technology comparison (right,
//! Jevons paradox).

use crate::Present;
use std::fmt;

use act_accel::{AccelConfig, Network};
use act_core::FabScenario;
use act_dse::{argmin_feasible, powers_of_two_iter};
use act_units::{Area, MassCo2};

use crate::render::TextTable;

/// The QoS target of the study: 30 FPS image processing.
pub const QOS_FPS: f64 = 30.0;

/// One configuration in the QoS study.
#[derive(Clone, Debug)]
pub struct QosRow {
    /// MAC-array width.
    pub macs: u32,
    /// Throughput in FPS.
    pub fps: f64,
    /// Energy per inference in mJ.
    pub energy_mj: f64,
    /// Embodied footprint.
    pub embodied: MassCo2,
}

act_json::impl_to_json!(QosRow { macs, fps, energy_mj, embodied });

/// The QoS-constrained study (Figure 13 left).
#[derive(Clone, Debug)]
pub struct QosStudy {
    /// The 16 nm sweep.
    pub rows: Vec<QosRow>,
}

act_json::impl_to_json!(QosStudy { rows });

impl QosStudy {
    /// Leanest configuration meeting the QoS bar — the carbon optimum.
    #[must_use]
    pub fn carbon_optimal(&self) -> &QosRow {
        let idx = argmin_feasible(&self.rows, |r| r.embodied.as_grams(), |r| r.fps >= QOS_FPS)
            .present("some configuration meets QoS");
        &self.rows[idx]
    }

    /// The performance-optimal configuration (max FPS).
    #[must_use]
    pub fn performance_optimal(&self) -> &QosRow {
        self.rows.iter().max_by(|a, b| a.fps.total_cmp(&b.fps)).present("nonempty")
    }

    /// The energy-optimal configuration (min energy per inference).
    #[must_use]
    pub fn energy_optimal(&self) -> &QosRow {
        self.rows.iter().min_by(|a, b| a.energy_mj.total_cmp(&b.energy_mj)).present("nonempty")
    }
}

/// One cap × node cell of the area-budget study.
#[derive(Clone, Debug)]
pub struct BudgetCell {
    /// Area cap in mm².
    pub cap_mm2: f64,
    /// Feature size in nm.
    pub nanometers: u32,
    /// Widest MAC configuration fitting the cap.
    pub macs: u32,
    /// Area actually used.
    pub area: Area,
    /// Embodied footprint of that area.
    pub embodied: MassCo2,
}

act_json::impl_to_json!(BudgetCell { cap_mm2, nanometers, macs, area, embodied });

/// The area-budget study (Figure 13 right).
#[derive(Clone, Debug)]
pub struct BudgetStudy {
    /// Cells for {1, 2} mm² × {28, 16} nm.
    pub cells: Vec<BudgetCell>,
}

act_json::impl_to_json!(BudgetStudy { cells });

impl BudgetStudy {
    /// Cell lookup.
    #[must_use]
    pub fn cell(&self, cap_mm2: f64, nanometers: u32) -> &BudgetCell {
        self.cells
            .iter()
            .find(|c| (c.cap_mm2 - cap_mm2).abs() < 1e-9 && c.nanometers == nanometers)
            .present("cell exists")
    }

    /// The Jevons ratio at a cap: 16 nm footprint over 28 nm footprint.
    #[must_use]
    pub fn newer_node_footprint_increase(&self, cap_mm2: f64) -> f64 {
        self.cell(cap_mm2, 16).embodied.ratio(self.cell(cap_mm2, 28).embodied)
    }
}

/// Both studies.
#[derive(Clone, Debug)]
pub struct Fig13Result {
    /// Left: QoS-constrained design.
    pub qos: QosStudy,
    /// Right: area-budgeted technology comparison.
    pub budget: BudgetStudy,
}

act_json::impl_to_json!(Fig13Result { qos, budget });

/// Runs both studies under the default fab.
#[must_use]
pub fn run() -> Fig13Result {
    let fab = FabScenario::default();
    let network = Network::mobile_vision();

    let rows = powers_of_two_iter(64, 2048)
        .map(|macs| {
            let config = AccelConfig::new(macs);
            let eval = config.evaluate(&network);
            QosRow {
                macs,
                fps: eval.throughput().as_per_second(),
                energy_mj: eval.energy().as_millijoules(),
                embodied: act_core::memo::carbon_per_area(&fab, config.node()) * config.area(),
            }
        })
        .collect();

    let mut cells = Vec::new();
    for cap_mm2 in [1.0, 2.0] {
        for nanometers in [28u32, 16] {
            let fitting: Vec<AccelConfig> = powers_of_two_iter(64, 2048)
                .map(|m| AccelConfig::new(m).with_nanometers(nanometers))
                .filter(|c| c.area().as_square_millimeters() <= cap_mm2)
                .collect();
            let widest = fitting.last().present("some configuration fits the cap");
            cells.push(BudgetCell {
                cap_mm2,
                nanometers,
                macs: widest.macs(),
                area: widest.area(),
                embodied: act_core::memo::carbon_per_area(&fab, widest.node()) * widest.area(),
            });
        }
    }

    Fig13Result { qos: QosStudy { rows }, budget: BudgetStudy { cells } }
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 13 (left): 30 FPS QoS study, 16nm",
            &["MACs", "FPS", "energy mJ", "embodied g", "role"],
        );
        let carbon = self.qos.carbon_optimal().macs;
        let perf = self.qos.performance_optimal().macs;
        let energy = self.qos.energy_optimal().macs;
        for r in &self.qos.rows {
            let mut roles = Vec::new();
            if r.macs == carbon {
                roles.push("CO2 opt");
            }
            if r.macs == perf {
                roles.push("perf opt");
            }
            if r.macs == energy {
                roles.push("energy opt");
            }
            t.row(vec![
                r.macs.to_string(),
                format!("{:.1}", r.fps),
                format!("{:.2}", r.energy_mj),
                format!("{:.1}", r.embodied.as_grams()),
                roles.join(", "),
            ]);
        }
        write!(f, "{t}")?;

        let mut b = TextTable::new(
            "Figure 13 (right): area-budgeted technology comparison",
            &["cap mm^2", "node", "MACs", "area mm^2", "embodied g"],
        );
        for c in &self.budget.cells {
            b.row(vec![
                format!("{:.0}", c.cap_mm2),
                format!("{}nm", c.nanometers),
                c.macs.to_string(),
                format!("{:.2}", c.area.as_square_millimeters()),
                format!("{:.1}", c.embodied.as_grams()),
            ]);
        }
        write!(f, "{b}")?;
        for cap in [1.0, 2.0] {
            writeln!(
                f,
                "  {cap:.0} mm^2 cap: 16nm footprint is {:.2}x the 28nm footprint",
                self.budget.newer_node_footprint_increase(cap)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_carbon_optimum_is_256_macs() {
        // "To achieve a QoS target of 30 FPS ... the minimum
        // embodied-carbon design comprises 256 MACs."
        assert_eq!(run().qos.carbon_optimal().macs, 256);
    }

    #[test]
    fn performance_optimum_carries_about_3x_the_footprint() {
        // Paper: 3.3x higher embodied for the performance-optimal design.
        let r = run();
        let ratio = r.qos.performance_optimal().embodied.ratio(r.qos.carbon_optimal().embodied);
        assert!((2.8..=3.8).contains(&ratio), "perf/carbon embodied ratio {ratio}");
    }

    #[test]
    fn energy_optimum_carries_about_1_4x_the_footprint() {
        let r = run();
        assert_eq!(r.qos.energy_optimal().macs, 512);
        let ratio = r.qos.energy_optimal().embodied.ratio(r.qos.carbon_optimal().embodied);
        assert!((1.2..=1.5).contains(&ratio), "energy/carbon embodied ratio {ratio}");
    }

    #[test]
    fn over_provisioning_overshoots_the_qos_target() {
        // "the performance and energy optimal points achieve 9x and 3x
        // higher throughput than the QoS target" — we reproduce the
        // overshoot direction with factors ~6x and ~2x.
        let r = run();
        assert!(r.qos.performance_optimal().fps > 4.0 * QOS_FPS);
        assert!(r.qos.energy_optimal().fps > 1.5 * QOS_FPS);
    }

    #[test]
    fn newer_node_fits_more_macs_in_the_same_budget() {
        // Jevons paradox, step 1: the budget is refilled with more compute.
        let r = run();
        for cap in [1.0, 2.0] {
            assert!(r.budget.cell(cap, 16).macs > r.budget.cell(cap, 28).macs, "cap {cap}");
        }
    }

    #[test]
    fn newer_node_raises_the_footprint_within_the_budget() {
        // Jevons paradox, step 2: the refilled budget costs more carbon
        // (paper: +33 % at 1 mm², +28 % at 2 mm²).
        let r = run();
        let at_1mm = r.budget.newer_node_footprint_increase(1.0);
        let at_2mm = r.budget.newer_node_footprint_increase(2.0);
        assert!((1.1..=1.45).contains(&at_1mm), "1 mm^2 increase {at_1mm}");
        assert!((1.1..=1.45).contains(&at_2mm), "2 mm^2 increase {at_2mm}");
    }

    #[test]
    fn budget_is_respected() {
        let r = run();
        for c in &r.budget.cells {
            assert!(c.area.as_square_millimeters() <= c.cap_mm2 + 1e-12);
        }
    }

    #[test]
    fn renders_both_panels() {
        let s = run().to_string();
        assert!(s.contains("(left)") && s.contains("(right)") && s.contains("CO2 opt"));
    }
}
