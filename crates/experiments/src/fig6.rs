//! Figure 6: embodied carbon intensities for compute across process nodes —
//! fab energy per area (top), gas emissions under abatement bounds (middle),
//! and aggregate carbon per area under fab-energy scenarios (bottom).

use crate::Present;
use std::fmt;

use act_core::FabScenario;
use act_data::{Abatement, ProcessNode};
use act_units::{EnergyPerArea, MassPerArea};

use crate::render::TextTable;

/// One node's column of the figure.
#[derive(Clone, Debug)]
pub struct NodeRow {
    /// Process node.
    pub node: ProcessNode,
    /// Fab energy per area (`EPA`).
    pub epa: EnergyPerArea,
    /// Gas per area at 95 % abatement (upper bound).
    pub gpa_95: MassPerArea,
    /// Gas per area at 97 % abatement (TSMC).
    pub gpa_97: MassPerArea,
    /// Gas per area at 99 % abatement (lower bound).
    pub gpa_99: MassPerArea,
    /// CPA with a Taiwan-grid fab (upper bound).
    pub cpa_taiwan: MassPerArea,
    /// CPA with the default 25 %-renewable fab (solid line).
    pub cpa_default: MassPerArea,
    /// CPA with a 100 % solar fab (lower bound).
    pub cpa_solar: MassPerArea,
}

act_json::impl_to_json!(NodeRow {
    node,
    epa,
    gpa_95,
    gpa_97,
    gpa_99,
    cpa_taiwan,
    cpa_default,
    cpa_solar
});

/// The full node sweep.
#[derive(Clone, Debug)]
pub struct Fig6Result {
    /// Rows from 28 nm down to 3 nm.
    pub rows: Vec<NodeRow>,
}

act_json::impl_to_json!(Fig6Result { rows });

/// Runs the sweep.
#[must_use]
pub fn run() -> Fig6Result {
    let taiwan = FabScenario::taiwan_grid();
    let default = FabScenario::default();
    let solar = FabScenario::renewable();
    let rows = ProcessNode::ALL
        .iter()
        .map(|&node| NodeRow {
            node,
            epa: node.energy_per_area(),
            gpa_95: node.gas_per_area(Abatement::Percent95),
            gpa_97: node.gas_per_area(Abatement::Percent97),
            gpa_99: node.gas_per_area(Abatement::Percent99),
            cpa_taiwan: taiwan.carbon_per_area(node),
            cpa_default: default.carbon_per_area(node),
            cpa_solar: solar.carbon_per_area(node),
        })
        .collect();
    Fig6Result { rows }
}

impl Fig6Result {
    /// Ratio of 3 nm CPA to 28 nm CPA under the default fab — how much the
    /// per-area footprint grows across the decade of scaling.
    #[must_use]
    pub fn cpa_growth_28nm_to_3nm(&self) -> f64 {
        let first = self.rows.first().present("28 nm present");
        let last = self.rows.last().present("3 nm present");
        last.cpa_default.ratio(first.cpa_default)
    }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 6: fab intensities per cm^2 across nodes",
            &[
                "node",
                "EPA kWh",
                "GPA g (95%)",
                "GPA g (97%)",
                "GPA g (99%)",
                "CPA kg (Taiwan)",
                "CPA kg (25% renew)",
                "CPA kg (solar)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.node.to_string(),
                format!("{:.3}", r.epa.as_kwh_per_cm2()),
                format!("{:.0}", r.gpa_95.as_grams_per_cm2()),
                format!("{:.0}", r.gpa_97.as_grams_per_cm2()),
                format!("{:.0}", r.gpa_99.as_grams_per_cm2()),
                format!("{:.2}", r.cpa_taiwan.as_kilograms_per_cm2()),
                format!("{:.2}", r.cpa_default.as_kilograms_per_cm2()),
                format!("{:.2}", r.cpa_solar.as_kilograms_per_cm2()),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "  CPA grows {:.2}x from 28nm to 3nm under the default fab",
            self.cpa_growth_28nm_to_3nm()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_nine_nodes_in_order() {
        let r = run();
        assert_eq!(r.rows.len(), 9);
        assert_eq!(r.rows[0].node, ProcessNode::N28);
        assert_eq!(r.rows[8].node, ProcessNode::N3);
    }

    #[test]
    fn every_series_rises_toward_newer_nodes() {
        let r = run();
        for pair in r.rows.windows(2) {
            assert!(pair[0].epa <= pair[1].epa);
            assert!(pair[0].gpa_97 <= pair[1].gpa_97);
            assert!(pair[0].cpa_default <= pair[1].cpa_default);
        }
    }

    #[test]
    fn scenario_bounds_bracket_the_solid_line() {
        for r in run().rows {
            assert!(r.cpa_solar < r.cpa_default, "{}", r.node);
            assert!(r.cpa_default < r.cpa_taiwan, "{}", r.node);
            assert!(r.gpa_99 < r.gpa_97 && r.gpa_97 < r.gpa_95, "{}", r.node);
        }
    }

    #[test]
    fn cpa_roughly_doubles_from_28nm_to_3nm() {
        // EPA triples and GPA more than doubles; with the fixed MPA the
        // aggregate lands between 1.5x and 2.2x under the default fab.
        let growth = run().cpa_growth_28nm_to_3nm();
        assert!((1.5..=2.2).contains(&growth), "growth {growth}");
    }

    #[test]
    fn euv_step_is_visible_at_7nm() {
        let r = run();
        let n7 = &r.rows[4];
        let n7euv = &r.rows[5];
        assert!(n7euv.epa > n7.epa * 1.3, "EUV lithography energy step");
    }
}
