//! Figure 11: programmable CPU vs specialized ASIC vs reconfigurable FPGA
//! on FIR / AES / AI — performance, energy and embodied carbon, and the
//! metric view that makes the FPGA the balanced choice.

use crate::Present;
use std::fmt;

use act_core::{DesignPoint, FabScenario, OptimizationMetric};
use act_data::smiv::{measurement, silicon_area, App, Platform, NODE};
use act_units::{Energy, MassCo2, TimeSpan};

use crate::render::{geomean, TextTable};

/// One platform's aggregate view.
#[derive(Clone, Debug)]
pub struct PlatformSummary {
    /// The platform.
    pub platform: Platform,
    /// Embodied footprint of the provisioned silicon.
    pub embodied: MassCo2,
    /// Geometric-mean speedup over the CPU across the three apps.
    pub geomean_speedup: f64,
    /// Geometric-mean energy reduction over the CPU across the three apps.
    pub geomean_energy_reduction: f64,
}

act_json::impl_to_json!(PlatformSummary {
    platform,
    embodied,
    geomean_speedup,
    geomean_energy_reduction
});

/// The full study.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// Per-platform summaries (CPU, Accel, FPGA).
    pub platforms: Vec<PlatformSummary>,
}

act_json::impl_to_json!(Fig11Result { platforms });

/// Per-app speedup of a platform over the CPU.
#[must_use]
pub fn speedup(platform: Platform, app: App) -> f64 {
    measurement(Platform::Cpu, app).latency_ms / measurement(platform, app).latency_ms
}

/// Per-app energy reduction of a platform over the CPU.
#[must_use]
pub fn energy_reduction(platform: Platform, app: App) -> f64 {
    measurement(Platform::Cpu, app).energy().ratio(measurement(platform, app).energy())
}

/// Embodied footprint of a platform's silicon under the default fab.
#[must_use]
pub fn embodied(platform: Platform) -> MassCo2 {
    act_core::memo::carbon_per_area(&FabScenario::default(), NODE) * silicon_area(platform)
}

/// A geomean design point for the metric comparison: embodied silicon,
/// geometric-mean energy and delay across the apps, provisioned area.
#[must_use]
pub fn design_point(platform: Platform) -> DesignPoint {
    let delay = geomean(App::ALL.map(|a| measurement(platform, a).latency_ms)) * 1e-3;
    let energy = geomean(App::ALL.map(|a| measurement(platform, a).energy().as_joules()));
    DesignPoint {
        embodied: embodied(platform),
        energy: Energy::joules(energy),
        delay: TimeSpan::seconds(delay),
        area: silicon_area(platform),
    }
}

/// The platform a metric selects on the mixed workload.
#[must_use]
pub fn winner(metric: OptimizationMetric) -> Platform {
    *Platform::ALL
        .iter()
        .min_by(|a, b| {
            metric.score(&design_point(**a)).total_cmp(&metric.score(&design_point(**b)))
        })
        .present("nonempty")
}

/// Runs the study.
#[must_use]
pub fn run() -> Fig11Result {
    let platforms = Platform::ALL
        .iter()
        .map(|&p| PlatformSummary {
            platform: p,
            embodied: embodied(p),
            geomean_speedup: geomean(App::ALL.map(|a| speedup(p, a))),
            geomean_energy_reduction: geomean(App::ALL.map(|a| energy_reduction(p, a))),
        })
        .collect();
    Fig11Result { platforms }
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 11: CPU vs ASIC (Accel) vs FPGA",
            &["platform", "geomean speedup", "geomean energy red.", "embodied g"],
        );
        for p in &self.platforms {
            t.row(vec![
                p.platform.to_string(),
                format!("{:.1}x", p.geomean_speedup),
                format!("{:.1}x", p.geomean_energy_reduction),
                format!("{:.1}", p.embodied.as_grams()),
            ]);
        }
        write!(f, "{t}")?;
        for metric in OptimizationMetric::CARBON_AWARE {
            writeln!(f, "    {metric:<5} optimal -> {}", winner(metric))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_geomean_speedup_is_about_45x() {
        let r = run();
        let fpga = r.platforms.iter().find(|p| p.platform == Platform::Fpga).unwrap();
        assert!((43.0..=47.0).contains(&fpga.geomean_speedup), "{}", fpga.geomean_speedup);
    }

    #[test]
    fn asic_dominates_ai_alone() {
        // 26x faster and 44x / 5x more energy-efficient on AI.
        assert!((speedup(Platform::Accel, App::Ai) - 26.0).abs() < 0.1);
        assert!((energy_reduction(Platform::Accel, App::Ai) - 44.0).abs() < 0.5);
        let fpga_vs_asic = measurement(Platform::Fpga, App::Ai)
            .energy()
            .ratio(measurement(Platform::Accel, App::Ai).energy());
        assert!((fpga_vs_asic - 5.0).abs() < 0.2);
    }

    #[test]
    fn cpu_has_the_lowest_embodied_footprint() {
        // "CPU incurs 1.3x and 1.8x lower footprint compared to ASIC and
        // FPGA-based designs."
        let cpu = embodied(Platform::Cpu);
        assert!((embodied(Platform::Accel).ratio(cpu) - 1.3).abs() < 0.01);
        assert!((embodied(Platform::Fpga).ratio(cpu) - 1.8).abs() < 0.01);
    }

    #[test]
    fn fpga_wins_every_carbon_metric_on_mixed_workloads() {
        // "across CDP, CEP, CE2P, C2EP, FPGA outperforms CPU and
        // ASIC-based designs."
        for metric in OptimizationMetric::CARBON_AWARE {
            assert_eq!(winner(metric), Platform::Fpga, "{metric}");
        }
    }

    #[test]
    fn asic_beats_fpga_for_ai_only_socs() {
        // "when designing domain-specific SoC's for salient applications,
        // such as AI, specialized ASICs provide higher performance and
        // efficiency at lower carbon footprint [than the FPGA]."
        let ai_point = |p: Platform| DesignPoint {
            embodied: embodied(p),
            energy: measurement(p, App::Ai).energy(),
            delay: measurement(p, App::Ai).latency(),
            area: silicon_area(p),
        };
        for metric in OptimizationMetric::CARBON_AWARE {
            let asic = metric.score(&ai_point(Platform::Accel));
            let fpga = metric.score(&ai_point(Platform::Fpga));
            assert!(asic < fpga, "{metric}: ASIC {asic} vs FPGA {fpga}");
        }
    }

    #[test]
    fn renders_platforms_and_winners() {
        let s = run().to_string();
        assert!(s.contains("FPGA") && s.contains("optimal"));
    }
}
