//! Figure 9: the CPU/GPU/DSP provisioning choice under ACT's carbon
//! metrics — embodied-centric metrics pick the CPU, operational-centric
//! metrics pick a co-processor.

use crate::Present;
use std::fmt;

use act_core::{DesignPoint, OptimizationMetric};
use act_data::snapdragon845::Engine;

use crate::render::TextTable;
use crate::table4;

/// One engine's design point and metric scores normalized to the CPU.
#[derive(Clone, Debug)]
pub struct EngineScores {
    /// The engine.
    pub engine: Engine,
    /// Design point (system embodied, per-inference energy, latency, area).
    pub design: DesignPoint,
}

act_json::impl_to_json!(EngineScores { engine, design });

/// The metric comparison.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    /// CPU, DSP, GPU design points.
    pub engines: Vec<EngineScores>,
}

act_json::impl_to_json!(Fig9Result { engines });

/// Runs the comparison on the Table 4 study.
#[must_use]
pub fn run() -> Fig9Result {
    let table = table4::run();
    let engines = table
        .rows
        .iter()
        .map(|r| EngineScores {
            engine: r.engine,
            design: DesignPoint {
                embodied: r.ecf_system,
                energy: r.energy,
                delay: r.profile.latency(),
                area: r.profile.block_area(),
            },
        })
        .collect();
    Fig9Result { engines }
}

impl Fig9Result {
    /// Metric score normalized to the CPU design.
    #[must_use]
    pub fn normalized(&self, engine: Engine, metric: OptimizationMetric) -> f64 {
        let cpu = self.engines.iter().find(|e| e.engine == Engine::Cpu).present("CPU present");
        let target = self.engines.iter().find(|e| e.engine == engine).present("engine present");
        metric.score(&target.design) / metric.score(&cpu.design)
    }

    /// The engine a metric selects.
    #[must_use]
    pub fn winner(&self, metric: OptimizationMetric) -> Engine {
        self.engines
            .iter()
            .min_by(|a, b| metric.score(&a.design).total_cmp(&metric.score(&b.design)))
            .present("nonempty")
            .engine
    }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 9: carbon metrics, normalized to the CPU-only design",
            &["engine", "CDP", "C2EP", "CEP", "CE2P"],
        );
        for e in &self.engines {
            t.row(vec![
                e.engine.to_string(),
                format!("{:.2}", self.normalized(e.engine, OptimizationMetric::Cdp)),
                format!("{:.2}", self.normalized(e.engine, OptimizationMetric::C2ep)),
                format!("{:.2}", self.normalized(e.engine, OptimizationMetric::Cep)),
                format!("{:.2}", self.normalized(e.engine, OptimizationMetric::Ce2p)),
            ]);
        }
        write!(f, "{t}")?;
        for metric in OptimizationMetric::CARBON_AWARE {
            writeln!(f, "    {metric:<5} optimal -> {}", self.winner(metric))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embodied_centric_metrics_pick_the_cpu() {
        // "For embodied carbon-centric optimization targets, the CPU-based
        // SoC is optimal due to lower manufacturing overheads."
        let r = run();
        assert_eq!(r.winner(OptimizationMetric::Cdp), Engine::Cpu);
        assert_eq!(r.winner(OptimizationMetric::C2ep), Engine::Cpu);
    }

    #[test]
    fn operational_centric_metrics_pick_a_co_processor() {
        // "For operational carbon-centric optimization targets, the
        // [co-processor]-based SoC is optimal given the energy efficiency
        // benefits." (As printed, Table 4's GPU row carries the lowest
        // energy; the prose says DSP — rows appear swapped.)
        let r = run();
        assert_ne!(r.winner(OptimizationMetric::Cep), Engine::Cpu);
        assert_ne!(r.winner(OptimizationMetric::Ce2p), Engine::Cpu);
    }

    #[test]
    fn cpu_normalizations_are_unity() {
        let r = run();
        for metric in OptimizationMetric::ALL {
            assert!((r.normalized(Engine::Cpu, metric) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn co_processors_score_worse_on_c2ep_than_cep() {
        // Squaring the embodied term punishes the extra silicon harder.
        let r = run();
        for engine in [Engine::Gpu, Engine::Dsp] {
            assert!(
                r.normalized(engine, OptimizationMetric::C2ep)
                    > r.normalized(engine, OptimizationMetric::Cep)
            );
        }
    }

    #[test]
    fn renders_all_engines() {
        let s = run().to_string();
        assert!(s.contains("CPU") && s.contains("GPU(+CPU)") && s.contains("DSP(+CPU)"));
    }
}
