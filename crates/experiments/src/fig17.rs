//! Figure 17: the Dell R740 LCA breakdown — storage dominates a modern
//! server's embodied footprint.

use crate::Present;
use std::fmt;

use act_data::reports::{
    BreakdownSlice, DELL_R740_BREAKDOWN, DELL_R740_MAINBOARD, DELL_R740_MANUFACTURING_KG,
};

use crate::render::TextTable;

/// Both breakdown panels.
#[derive(Clone, Debug)]
pub struct Fig17Result {
    /// Total manufacturing footprint, kg CO₂.
    pub total_kg: f64,
    /// Server-level breakdown.
    pub server: Vec<BreakdownSlice>,
    /// Mainboard breakdown.
    pub mainboard: Vec<BreakdownSlice>,
}

act_json::impl_to_json!(Fig17Result { total_kg, server, mainboard });

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig17Result {
    Fig17Result {
        total_kg: DELL_R740_MANUFACTURING_KG,
        server: DELL_R740_BREAKDOWN.to_vec(),
        mainboard: DELL_R740_MAINBOARD.to_vec(),
    }
}

impl Fig17Result {
    /// Share of the server's footprint attributable to ICs (SSDs plus the
    /// mainboard's CPU share) — the paper cites roughly 80 %.
    #[must_use]
    pub fn ic_share(&self) -> f64 {
        let ssd = self.server.iter().find(|s| s.label == "SSD").present("ssd").share;
        let mainboard =
            self.server.iter().find(|s| s.label == "Mainboard").present("mainboard").share;
        let cpu_in_mainboard =
            self.mainboard.iter().find(|s| s.label.contains("CPU")).present("cpu").share;
        ssd + mainboard * cpu_in_mainboard
    }
}

impl fmt::Display for Fig17Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dell R740 manufacturing footprint: {:.0} kg CO2", self.total_kg)?;
        let mut t = TextTable::new("Figure 17: Dell R740 LCA", &["slice", "share"]);
        for s in &self.server {
            t.row(vec![s.label.to_owned(), format!("{:.0}%", s.share * 100.0)]);
        }
        write!(f, "{t}")?;
        let mut m = TextTable::new("Figure 17 (mainboard)", &["slice", "share"]);
        for s in &self.mainboard {
            m.row(vec![s.label.to_owned(), format!("{:.0}%", s.share * 100.0)]);
        }
        write!(f, "{m}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssds_dominate_the_server() {
        let r = run();
        let ssd = r.server.iter().find(|s| s.label == "SSD").unwrap();
        for other in r.server.iter().filter(|s| s.label != "SSD") {
            assert!(ssd.share > other.share);
        }
        assert!(ssd.share > 0.5);
    }

    #[test]
    fn ics_are_about_80_percent() {
        let share = run().ic_share();
        assert!((0.6..=0.9).contains(&share), "IC share {share}");
    }

    #[test]
    fn renders_both_panels() {
        let s = run().to_string();
        assert!(s.contains("Dell R740") && s.contains("mainboard"));
    }
}
