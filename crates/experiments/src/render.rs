//! Plain-text rendering helpers shared by the experiment modules.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use act_experiments::render::TextTable;
///
/// let mut t = TextTable::new("Demo", &["item", "value"]);
/// t.row(vec!["a".into(), "1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Demo") && s.contains("item"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header width");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            writeln!(f, "  {}", line.join("  "))
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a mass in kg with two decimals.
#[must_use]
pub fn kg(mass: act_units::MassCo2) -> String {
    format!("{:.2}", mass.as_kilograms())
}

/// Formats a mass in grams with one decimal.
#[must_use]
pub fn grams(mass: act_units::MassCo2) -> String {
    format!("{:.1}", mass.as_grams())
}

/// Formats a ratio like `1.75x`.
#[must_use]
pub fn times(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Geometric mean of an iterator of positive values.
///
/// # Panics
///
/// Panics on an empty iterator or non-positive values.
#[must_use]
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (log_sum, n) = values.into_iter().fold((0.0, 0u32), |(s, n), v| {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        (s + v.ln(), n + 1)
    });
    assert!(n > 0, "geomean of an empty iterator");
    (log_sum / f64::from(n)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_units::MassCo2;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("T", &["a", "bb"]);
        t.row(vec!["xxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("xxx"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(kg(MassCo2::kilograms(1.234)), "1.23");
        assert_eq!(grams(MassCo2::grams(12.34)), "12.3");
        assert_eq!(times(1.754), "1.75x");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }
}
