//! Figure 16: the Fairphone 3 LCA breakdown — by module, by component type,
//! and within the core module.

use crate::Present;
use std::fmt;

use act_data::reports::{
    BreakdownSlice, FAIRPHONE3_BY_COMPONENT, FAIRPHONE3_BY_MODULE, FAIRPHONE3_CORE_MODULE,
    FAIRPHONE3_MANUFACTURING_KG,
};

use crate::render::TextTable;

/// The three breakdown panels.
#[derive(Clone, Debug)]
pub struct Fig16Result {
    /// Total manufacturing footprint the shares apply to, kg CO₂.
    pub total_kg: f64,
    /// Panel (a): by module.
    pub by_module: Vec<BreakdownSlice>,
    /// Panel (b): by component type.
    pub by_component: Vec<BreakdownSlice>,
    /// Panel (c): within the core module.
    pub core_module: Vec<BreakdownSlice>,
}

act_json::impl_to_json!(Fig16Result { total_kg, by_module, by_component, core_module });

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig16Result {
    Fig16Result {
        total_kg: FAIRPHONE3_MANUFACTURING_KG,
        by_module: FAIRPHONE3_BY_MODULE.to_vec(),
        by_component: FAIRPHONE3_BY_COMPONENT.to_vec(),
        core_module: FAIRPHONE3_CORE_MODULE.to_vec(),
    }
}

impl Fig16Result {
    /// Share of manufacturing emissions attributable to ICs when the core
    /// module's IC content is combined with the board-level IC slice — the
    /// paper cites roughly 70 %.
    #[must_use]
    pub fn ic_share(&self) -> f64 {
        let core = self.by_module.iter().find(|s| s.label == "Core module").present("core");
        let ic_in_core: f64 = self
            .core_module
            .iter()
            .filter(|s| {
                s.label.contains("IC")
                    || s.label.contains("Processor")
                    || s.label.contains("RAM")
            })
            .map(|s| s.share)
            .sum();
        // ICs inside the core module plus camera/display driver ICs in the
        // remaining modules (approximated by the component-type view).
        let outside_core = (1.0 - core.share) * self.by_component[0].share;
        core.share * ic_in_core + outside_core
    }
}

fn panel(f: &mut fmt::Formatter<'_>, title: &str, slices: &[BreakdownSlice]) -> fmt::Result {
    let mut t = TextTable::new(title, &["slice", "share"]);
    for s in slices {
        t.row(vec![s.label.to_owned(), format!("{:.0}%", s.share * 100.0)]);
    }
    write!(f, "{t}")
}

impl fmt::Display for Fig16Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fairphone 3 manufacturing footprint: {:.1} kg CO2", self.total_kg)?;
        panel(f, "Figure 16a: by module", &self.by_module)?;
        panel(f, "Figure 16b: by component type", &self.by_component)?;
        panel(f, "Figure 16c: core module", &self.core_module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_module_dominates() {
        let r = run();
        let core = r.by_module.iter().find(|s| s.label == "Core module").unwrap();
        for other in r.by_module.iter().filter(|s| s.label != "Core module") {
            assert!(core.share > other.share);
        }
    }

    #[test]
    fn ics_are_the_majority_of_emissions() {
        // The paper: "IC's account for roughly 70% for Fairphone 3."
        let share = run().ic_share();
        assert!((0.55..=0.85).contains(&share), "IC share {share}");
    }

    #[test]
    fn ram_and_flash_lead_the_core_module() {
        let r = run();
        assert_eq!(r.core_module[0].label, "RAM & Flash");
    }

    #[test]
    fn renders_three_panels() {
        let s = run().to_string();
        assert!(s.contains("16a") && s.contains("16b") && s.contains("16c"));
    }
}
