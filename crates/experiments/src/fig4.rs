//! Figure 4: embodied IC carbon for the iPhone 11 and iPad — ACT's
//! bottom-up estimate with its per-IC breakdown, next to the opaque
//! top-down LCA estimate.

use std::fmt;

use act_core::{ComponentKind, EmbodiedReport, FabScenario, SystemSpec};
use act_data::devices;
use act_data::reports;
use act_lca::top_down_ic_estimate;
use act_units::MassCo2;

use crate::render::{kg, TextTable};

/// One device's bottom-up vs top-down comparison.
#[derive(Clone, Debug)]
pub struct DeviceEstimate {
    /// Device name.
    pub name: String,
    /// ACT's per-IC breakdown.
    pub act: EmbodiedReport,
    /// The LCA-based top-down IC estimate.
    pub lca: MassCo2,
}

act_json::impl_to_json!(DeviceEstimate { name, act, lca });

impl DeviceEstimate {
    /// ACT total across ICs.
    #[must_use]
    pub fn act_total(&self) -> MassCo2 {
        self.act.total()
    }
}

/// Both devices of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// iPhone 11 (paper: ACT 17 kg vs LCA 23 kg).
    pub iphone: DeviceEstimate,
    /// iPad (paper: ACT 21 kg vs LCA 28 kg).
    pub ipad: DeviceEstimate,
}

act_json::impl_to_json!(Fig4Result { iphone, ipad });

/// Runs the experiment under the paper's default fab scenario.
#[must_use]
pub fn run() -> Fig4Result {
    let fab = FabScenario::default();
    let estimate = |bom: &act_data::devices::DeviceBom, report| DeviceEstimate {
        name: bom.name.to_owned(),
        act: SystemSpec::from_bom(bom).embodied(&fab),
        lca: top_down_ic_estimate(report),
    };
    Fig4Result {
        iphone: estimate(&devices::IPHONE_11, &reports::IPHONE_11),
        ipad: estimate(&devices::IPAD, &reports::IPAD),
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 4: embodied IC carbon, ACT (bottom-up) vs LCA (top-down), kg CO2",
            &["device", "ACT", "LCA", "SoC", "DRAM", "NAND", "packaging", "other logic"],
        );
        for d in [&self.iphone, &self.ipad] {
            let soc_total = d.act.by_kind(ComponentKind::Soc);
            let named_soc: MassCo2 = d
                .act
                .components()
                .filter(|c| c.kind == ComponentKind::Soc && c.label.contains("SoC"))
                .map(|c| c.footprint)
                .sum();
            t.row(vec![
                d.name.clone(),
                kg(d.act_total()),
                kg(d.lca),
                kg(named_soc),
                kg(d.act.by_kind(ComponentKind::Dram)),
                kg(d.act.by_kind(ComponentKind::Ssd)),
                kg(d.act.by_kind(ComponentKind::Packaging)),
                kg(soc_total - named_soc),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_bars() {
        let r = run();
        // Paper: iPhone ACT 17, LCA 23; iPad ACT 21, LCA 28.
        let iphone_act = r.iphone.act_total().as_kilograms();
        let ipad_act = r.ipad.act_total().as_kilograms();
        assert!((15.0..=19.0).contains(&iphone_act), "iPhone ACT {iphone_act}");
        assert!((18.5..=23.5).contains(&ipad_act), "iPad ACT {ipad_act}");
        assert!((r.iphone.lca.as_kilograms() - 23.0).abs() < 0.5);
        assert!((r.ipad.lca.as_kilograms() - 28.0).abs() < 0.5);
    }

    #[test]
    fn act_sits_below_the_topdown_lca_for_both_devices() {
        let r = run();
        for d in [&r.iphone, &r.ipad] {
            let ratio = d.lca.ratio(d.act_total());
            assert!((1.15..=1.55).contains(&ratio), "{}: LCA/ACT ratio {ratio}", d.name);
        }
    }

    #[test]
    fn ipad_exceeds_iphone_in_both_methodologies() {
        let r = run();
        assert!(r.ipad.act_total() > r.iphone.act_total());
        assert!(r.ipad.lca > r.iphone.lca);
    }

    #[test]
    fn breakdown_has_every_component_class() {
        let r = run();
        for kind in [
            ComponentKind::Soc,
            ComponentKind::Dram,
            ComponentKind::Ssd,
            ComponentKind::Packaging,
        ] {
            assert!(r.iphone.act.by_kind(kind).as_grams() > 0.0, "iPhone missing {kind}");
        }
    }

    #[test]
    fn renders_totals() {
        let s = run().to_string();
        assert!(s.contains("iPhone 11") && s.contains("iPad"));
    }
}
