//! **Extension study** (not a paper artifact): server-fleet refresh cadence
//! under different grids — Table 2's "sustainable data center" use case,
//! carried to the Figure-14 methodology at server scale.
//!
//! A Dell R740-class server's embodied carbon is fixed by manufacturing;
//! its operational carbon depends on the hosting grid and PUE. On dirty
//! grids, efficiency gains of newer hardware argue for fast refresh; on
//! hydro-powered grids the embodied bill dominates and long lifetimes win.

use std::fmt;

use act_core::{FabScenario, OperationalModel, SystemSpec};
use act_data::{devices, Location};
use act_soc::ReplacementModel;
use act_units::{MassCo2, Power, TimeSpan};

use crate::render::TextTable;

/// Average server power draw.
pub const SERVER_POWER_W: f64 = 350.0;

/// Data-center power usage effectiveness.
pub const PUE: f64 = 1.2;

/// Annual efficiency improvement of successive server generations.
pub const SERVER_IMPROVEMENT: f64 = 1.15;

/// One hosting-grid scenario.
#[derive(Clone, Debug)]
pub struct GridRow {
    /// Hosting location.
    pub location: Location,
    /// First-year operational footprint of one server.
    pub first_year_operational: MassCo2,
    /// Embodied-to-first-year-operational ratio (the `β` of the sweep).
    pub embodied_ratio: f64,
    /// Footprint-optimal refresh cadence in years.
    pub optimal_lifetime_years: u32,
}

act_json::impl_to_json!(GridRow {
    location,
    first_year_operational,
    embodied_ratio,
    optimal_lifetime_years
});

/// The study.
#[derive(Clone, Debug)]
pub struct DatacenterResult {
    /// Embodied carbon of one server.
    pub server_embodied: MassCo2,
    /// One row per hosting grid.
    pub rows: Vec<GridRow>,
}

act_json::impl_to_json!(DatacenterResult { server_embodied, rows });

/// Runs the study over a spectrum of grids.
#[must_use]
pub fn run() -> DatacenterResult {
    let server_embodied =
        SystemSpec::from_bom(&devices::DELL_R740).embodied(&FabScenario::default()).total();
    let yearly_energy = Power::watts(SERVER_POWER_W) * TimeSpan::years(1.0);
    let rows = [
        Location::India,
        Location::UnitedStates,
        Location::Europe,
        Location::Brazil,
        Location::Iceland,
    ]
    .into_iter()
    .map(|location| {
        let op = OperationalModel::new(location.carbon_intensity()).with_effectiveness(PUE);
        let first_year = op.footprint(yearly_energy);
        let embodied_ratio = server_embodied.ratio(first_year);
        let model = ReplacementModel {
            horizon_years: 10,
            embodied_per_device: embodied_ratio,
            improvement_rate: SERVER_IMPROVEMENT,
        };
        GridRow {
            location,
            first_year_operational: first_year,
            embodied_ratio,
            optimal_lifetime_years: model.optimal_lifetime_years(),
        }
    })
    .collect();
    DatacenterResult { server_embodied, rows }
}

impl fmt::Display for DatacenterResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: server refresh cadence by grid (server embodied {:.0} kg, \
             {} W at PUE {PUE}, {}x/yr generational efficiency)",
            self.server_embodied.as_kilograms(),
            SERVER_POWER_W,
            SERVER_IMPROVEMENT
        )?;
        let mut t = TextTable::new(
            "Optimal server lifetime over a 10-year horizon",
            &["grid", "g CO2/kWh", "op kg/yr", "embodied/op", "optimal lifetime"],
        );
        for r in &self.rows {
            t.row(vec![
                r.location.to_string(),
                format!("{:.0}", r.location.carbon_intensity().as_grams_per_kwh()),
                format!("{:.0}", r.first_year_operational.as_kilograms()),
                format!("{:.2}", r.embodied_ratio),
                format!("{} years", r.optimal_lifetime_years),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaner_grids_favor_longer_server_lifetimes() {
        let r = run();
        // Rows are ordered dirty -> clean; optima must not decrease.
        for pair in r.rows.windows(2) {
            assert!(
                pair[1].optimal_lifetime_years >= pair[0].optimal_lifetime_years,
                "{} ({} yr) -> {} ({} yr)",
                pair[0].location,
                pair[0].optimal_lifetime_years,
                pair[1].location,
                pair[1].optimal_lifetime_years
            );
        }
    }

    #[test]
    fn dirty_grids_refresh_fast_clean_grids_hold() {
        let r = run();
        let india = r.rows.iter().find(|x| x.location == Location::India).unwrap();
        let iceland = r.rows.iter().find(|x| x.location == Location::Iceland).unwrap();
        assert!(india.optimal_lifetime_years <= 4, "India {}", india.optimal_lifetime_years);
        assert!(
            iceland.optimal_lifetime_years >= 6,
            "Iceland {}",
            iceland.optimal_lifetime_years
        );
    }

    #[test]
    fn embodied_ratio_spans_an_order_of_magnitude_across_grids() {
        let r = run();
        let min = r.rows.iter().map(|x| x.embodied_ratio).fold(f64::INFINITY, f64::min);
        let max = r.rows.iter().map(|x| x.embodied_ratio).fold(0.0, f64::max);
        assert!(max / min > 10.0, "{min}..{max}");
    }

    #[test]
    fn server_embodied_is_server_scale() {
        let kg = run().server_embodied.as_kilograms();
        assert!((150.0..=600.0).contains(&kg), "{kg} kg");
    }

    #[test]
    fn renders_all_grids() {
        let s = run().to_string();
        assert!(s.contains("India") && s.contains("Iceland"));
    }
}
