//! A minimal, dependency-free JSON subsystem for the ACT workspace.
//!
//! The reproduction's model is closed-form arithmetic over the paper's
//! tables; nothing in it needs a general serialization framework. What it
//! does need is (a) rendering experiment results and bench records as JSON
//! and (b) reading a handful of JSON documents back (Table-1 configs, the
//! bench-trajectory file). This crate supplies exactly that with **zero
//! external dependencies**, so the tier-1 build works with no registry
//! access at all — the hermetic-build contract documented in DESIGN.md.
//!
//! * [`JsonValue`] — an ordered JSON document model (objects preserve
//!   insertion order, so rendered output is deterministic).
//! * Writers — [`JsonValue::render_compact`] and
//!   [`JsonValue::render_pretty`] (2-space indent). Non-finite floats render
//!   as `null`; integral floats keep a trailing `.0` so quantities stay
//!   visibly floating-point across round-trips.
//! * A tolerant recursive-descent parser — [`JsonValue::parse`] — with byte
//!   offsets in its errors and a recursion-depth guard.
//! * [`ToJson`] / [`FromJson`] traits plus the [`impl_to_json!`],
//!   [`impl_from_json!`] and [`impl_json_enum!`] macros that replace the
//!   former `serde` derives, and the [`obj!`] literal macro that replaces
//!   `serde_json::json!`.
//!
//! # Examples
//!
//! ```
//! use act_json::{obj, JsonValue, ToJson};
//!
//! let doc = obj! { "points": 3, "mean": 0.5, "label": "sweep" };
//! let text = doc.render_compact();
//! assert_eq!(text, r#"{"points":3,"mean":0.5,"label":"sweep"}"#);
//! let back = JsonValue::parse(&text).unwrap();
//! assert_eq!(back["points"].as_u64(), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Cow;
use std::fmt;

/// Maximum nesting depth the parser accepts before reporting an error
/// instead of risking stack exhaustion on adversarial input.
const MAX_PARSE_DEPTH: usize = 128;

/// Default maximum document size accepted by [`JsonValue::parse`] (8 MiB).
/// Documents in this workspace are a few KiB; anything near this limit is
/// hostile or a bug, and rejecting it up front bounds parser memory.
const MAX_PARSE_BYTES: usize = 8 * 1024 * 1024;

/// Default maximum length of a single number token. JSON numbers that a
/// finite `f64` can represent fit in well under 64 bytes; a kilobyte-long
/// digit string is an attack on the float parser, not data.
const MAX_NUMBER_LEN: usize = 512;

/// Resource limits for [`JsonValue::parse_with_limits`] — the knobs a
/// service exposed to untrusted input tightens, with [`Default`] values
/// matching what [`JsonValue::parse`] has always enforced (plus the size
/// guards introduced alongside `act-server`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum container nesting depth (arrays/objects).
    pub max_depth: usize,
    /// Maximum input length in bytes; longer documents are rejected before
    /// a single byte is parsed.
    pub max_bytes: usize,
    /// Maximum byte length of one number token.
    pub max_number_len: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_depth: MAX_PARSE_DEPTH,
            max_bytes: MAX_PARSE_BYTES,
            max_number_len: MAX_NUMBER_LEN,
        }
    }
}

/// The shared `null` returned by out-of-range [`JsonValue`] indexing.
static NULL: JsonValue = JsonValue::Null;

/// An ordered JSON object: key/value pairs in insertion order.
///
/// Rendering deterministically matters more than lookup speed here —
/// objects in this workspace hold a handful of entries — so the backing
/// store is a plain vector. [`insert`](Self::insert) replaces an existing
/// key in place, keeping its original position.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: JsonValue) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Builder-style [`insert`](Self::insert) for literal construction.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: JsonValue) -> Self {
        self.insert(key, value);
        self
    }

    /// The value under `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` when `key` has an entry.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &JsonValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The keys, in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// A JSON document: the full value grammar with integers kept distinct
/// from floats so counts render as `3`, not `3.0`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source text).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(JsonObject),
}

impl JsonValue {
    /// `true` for [`JsonValue::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Self::Null)
    }

    /// `true` for [`JsonValue::Object`].
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Self::Object(_))
    }

    /// `true` for [`JsonValue::Array`].
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Self::Array(_))
    }

    /// `true` for either numeric variant.
    #[must_use]
    pub fn is_number(&self) -> bool {
        matches!(self, Self::Int(_) | Self::Float(_))
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (integers convert losslessly
    /// up to 2^53, the JSON interoperability limit).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Float(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            Self::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&JsonObject> {
        match self {
            Self::Object(obj) => Some(obj),
            _ => None,
        }
    }

    /// Member lookup: `Some` only for an object that has `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|obj| obj.get(key))
    }

    /// Renders without whitespace: `{"a":1,"b":[2,3]}`.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders with 2-space indentation and one entry per line.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Int(v) => {
                let mut buf = itoa_buffer();
                let _ = fmt::Write::write_fmt(&mut buf, format_args!("{v}"));
                out.push_str(&buf);
            }
            Self::Float(v) => out.push_str(&format_float(*v)),
            Self::String(s) => write_escaped(out, s),
            Self::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Self::Object(obj) => {
                out.push('{');
                for (i, (key, value)) in obj.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Self::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Self::Object(obj) if !obj.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in obj.entries.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < obj.entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Parses a JSON document. Tolerant of surrounding whitespace, strict
    /// about everything else (the trailing content after the value must be
    /// blank).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] carrying the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::parse_with_limits(text, &ParseLimits::default())
    }

    /// [`parse`](Self::parse) under explicit [`ParseLimits`] — the entry
    /// point for documents from untrusted peers (e.g. `act-server` request
    /// bodies), where depth and size ceilings are part of the service's
    /// robustness contract.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] whose [`kind`](JsonError::kind) is
    /// [`JsonErrorKind::TooLarge`] / [`TooDeep`](JsonErrorKind::TooDeep) /
    /// [`NumberTooLong`](JsonErrorKind::NumberTooLong) when a limit is hit,
    /// and [`Syntax`](JsonErrorKind::Syntax) for malformed input.
    pub fn parse_with_limits(text: &str, limits: &ParseLimits) -> Result<Self, JsonError> {
        if text.len() > limits.max_bytes {
            return Err(JsonError::limit(
                JsonErrorKind::TooLarge,
                format!(
                    "document is {} bytes, over the {}-byte limit",
                    text.len(),
                    limits.max_bytes
                ),
                0,
            ));
        }
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0, limits: *limits };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos < parser.bytes.len() {
            return Err(JsonError::at("trailing characters after JSON value", parser.pos));
        }
        Ok(value)
    }
}

/// A short inline string buffer for integer formatting.
fn itoa_buffer() -> String {
    String::with_capacity(20)
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;

    /// Member access that returns `null` (rather than panicking) for
    /// missing keys or non-objects, mirroring `serde_json`'s ergonomics.
    fn index(&self, key: &str) -> &Self::Output {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for JsonValue {
    type Output = JsonValue;

    /// Element access that returns `null` for out-of-range indexes or
    /// non-arrays.
    fn index(&self, index: usize) -> &Self::Output {
        self.as_array().and_then(|items| items.get(index)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for JsonValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for JsonValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<i64> for JsonValue {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for JsonValue {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Self::Float(v) if v == other)
    }
}

impl PartialEq<bool> for JsonValue {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Formats a float for JSON output.
///
/// Non-finite values have no JSON representation and render as `null`
/// (matching the bench harness's convention for unavailable timings).
/// Integral values below 10^15 keep one decimal (`820.0`) so a quantity
/// never silently reads as an integer; everything else uses Rust's
/// shortest round-trip formatting.
#[must_use]
pub fn format_float(value: f64) -> String {
    if !value.is_finite() {
        return "null".to_owned();
    }
    if value == value.trunc() && value.abs() < 1.0e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Error produced by [`JsonValue::parse`] and the [`FromJson`]
/// conversions: a message plus, for parse errors, the byte offset of the
/// offending construct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: Option<usize>,
    kind: JsonErrorKind,
}

/// Classifies a [`JsonError`] so callers can tell resource-limit rejections
/// (which a service maps to "request too large"-style responses) from plain
/// syntax errors and from [`FromJson`] shape mismatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum JsonErrorKind {
    /// Malformed JSON text.
    Syntax,
    /// The document nests deeper than [`ParseLimits::max_depth`].
    TooDeep,
    /// The document is longer than [`ParseLimits::max_bytes`].
    TooLarge,
    /// A number token is longer than [`ParseLimits::max_number_len`].
    NumberTooLong,
    /// A number token parsed to an infinite value (e.g. `1e999`), which no
    /// JSON document can faithfully represent.
    NumberOutOfRange,
    /// A [`FromJson`] conversion mismatch (wrong type, missing field).
    Conversion,
}

impl JsonError {
    /// A conversion error (no source offset).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), offset: None, kind: JsonErrorKind::Conversion }
    }

    /// A parse error at byte `offset`.
    #[must_use]
    pub fn at(message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset: Some(offset), kind: JsonErrorKind::Syntax }
    }

    /// A resource-limit rejection at byte `offset`.
    #[must_use]
    pub fn limit(kind: JsonErrorKind, message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset: Some(offset), kind }
    }

    /// What class of failure this is.
    #[must_use]
    pub fn kind(&self) -> JsonErrorKind {
        self.kind
    }

    /// A [`FromJson`] mismatch: `expected` names the JSON type wanted.
    #[must_use]
    pub fn type_mismatch(expected: &str, got: &JsonValue) -> Self {
        let kind = match got {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a bool",
            JsonValue::Int(_) => "an integer",
            JsonValue::Float(_) => "a float",
            JsonValue::String(_) => "a string",
            JsonValue::Array(_) => "an array",
            JsonValue::Object(_) => "an object",
        };
        Self::new(format!("expected {expected}, got {kind}"))
    }

    /// A [`FromJson`] error for an object missing a required key.
    #[must_use]
    pub fn missing_field(field: &str) -> Self {
        Self::new(format!("missing field `{field}`"))
    }

    /// The byte offset of a parse error (`None` for conversion errors).
    #[must_use]
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "{} at byte {offset}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// The recursive-descent parser state.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: ParseLimits,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", char::from(byte)), self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > self.limits.max_depth {
            return Err(JsonError::limit(
                JsonErrorKind::TooDeep,
                "document nested too deeply",
                self.pos,
            ));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(JsonError::at("unexpected character", self.pos)),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(
        &mut self,
        keyword: &str,
        value: JsonValue,
    ) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{keyword}`"), self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let mut has_fraction = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    has_fraction = true;
                    self.pos += 1;
                }
                _ => break,
            }
            if self.pos - start > self.limits.max_number_len {
                return Err(JsonError::limit(
                    JsonErrorKind::NumberTooLong,
                    format!("number longer than {} bytes", self.limits.max_number_len),
                    start,
                ));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("malformed number", start))?;
        if !has_fraction {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        let parsed = text
            .parse::<f64>()
            .map_err(|_| JsonError::at(format!("malformed number `{text}`"), start))?;
        // `1e999` parses to +inf without an error; a document that cannot
        // round-trip through any finite float is hostile input, not data
        // (`format_float` would silently re-render it as `null`). Guard on
        // *any* non-finite parse so no literal can smuggle inf or NaN in.
        if !parsed.is_finite() {
            return Err(JsonError::limit(
                JsonErrorKind::NumberOutOfRange,
                format!("number `{text}` overflows f64"),
                start,
            ));
        }
        Ok(JsonValue::Float(parsed))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::at("unterminated string", self.pos));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(JsonError::at("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
                    }
                }
                // Unescaped control characters (including NUL) are invalid
                // inside JSON strings; accepting them would let hostile
                // frames smuggle raw terminal/log-injection bytes through.
                0x00..=0x1F => {
                    return Err(JsonError::at(
                        "unescaped control character in string",
                        self.pos,
                    ));
                }
                _ => {
                    // Consume one UTF-8 code point (the input slice came
                    // from a &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| JsonError::at("malformed UTF-8", self.pos))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let code = self.parse_hex4()?;
        // Surrogate pairs: a leading surrogate must be followed by
        // `\uDC00..\uDFFF`; tolerate lone surrogates as U+FFFD.
        if (0xD800..=0xDBFF).contains(&code) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.parse_hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let combined = 0x10000
                        + ((u32::from(code) - 0xD800) << 10)
                        + (u32::from(low) - 0xDC00);
                    return Ok(char::from_u32(combined).unwrap_or('\u{FFFD}'));
                }
                return Err(JsonError::at("invalid low surrogate", at));
            }
            return Ok('\u{FFFD}');
        }
        Ok(char::from_u32(u32::from(code)).unwrap_or('\u{FFFD}'))
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonError> {
        let at = self.pos;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|chunk| std::str::from_utf8(chunk).ok())
            .ok_or_else(|| JsonError::at("truncated \\u escape", at))?;
        self.pos += 4;
        u16::from_str_radix(hex, 16).map_err(|_| JsonError::at("malformed \\u escape", at))
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'{')?;
        let mut obj = JsonObject::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(obj));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.consume(b':')?;
            let value = self.parse_value(depth + 1)?;
            obj.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(obj));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Conversion into a [`JsonValue`] — the replacement for `serde::Serialize`
/// across the workspace. Implement it by hand for enums with payloads, or
/// with [`impl_to_json!`] / [`impl_json_enum!`] for structs and unit enums.
pub trait ToJson {
    /// The JSON rendering of `self`.
    fn to_json(&self) -> JsonValue;
}

/// Conversion out of a [`JsonValue`] — the replacement for
/// `serde::Deserialize` where the workspace actually reads JSON back
/// (Table-1 configs, validated newtypes, the bench trajectory).
pub trait FromJson: Sized {
    /// Reconstructs `Self`, reporting the first mismatch.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the missing field or mismatched type.
    fn from_json(value: &JsonValue) -> Result<Self, JsonError>;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl FromJson for JsonValue {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| JsonError::type_mismatch("a bool", value))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_f64().ok_or_else(|| JsonError::type_mismatch("a number", value))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(f64::from(*self))
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> JsonValue {
                    JsonValue::Int(i64::from(*self))
                }
            }

            impl FromJson for $ty {
                fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
                    let raw = value
                        .as_i64()
                        .ok_or_else(|| JsonError::type_mismatch("an integer", value))?;
                    Self::try_from(raw).map_err(|_| {
                        JsonError::new(format!(
                            "integer {raw} out of range for {}",
                            stringify!($ty)
                        ))
                    })
                }
            }
        )+
    };
}

impl_json_int!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        match i64::try_from(*self) {
            Ok(v) => JsonValue::Int(v),
            // Beyond i64: degrade to the closest float (values this large
            // only arise from synthetic inputs).
            #[allow(clippy::cast_precision_loss)]
            Err(_) => JsonValue::Float(*self as f64),
        }
    }
}

impl FromJson for u64 {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_u64().ok_or_else(|| JsonError::type_mismatch("a non-negative integer", value))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> JsonValue {
        (*self as u64).to_json()
    }
}

impl FromJson for usize {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let raw = u64::from_json(value)?;
        Self::try_from(raw)
            .map_err(|_| JsonError::new(format!("integer {raw} out of range for usize")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::type_mismatch("a string", value))
    }
}

impl ToJson for Cow<'_, str> {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone().into_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(value) => value.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let items =
            value.as_array().ok_or_else(|| JsonError::type_mismatch("an array", value))?;
        if items.len() != N {
            return Err(JsonError::new(format!(
                "expected an array of {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_json).collect::<Result<_, _>>()?;
        // Length was checked above, so the conversion cannot fail.
        Ok(parsed.try_into().unwrap_or_else(|_| unreachable!()))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::type_mismatch("an array", value))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let items =
            value.as_array().ok_or_else(|| JsonError::type_mismatch("a pair", value))?;
        match items {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => {
                Err(JsonError::new(format!("expected a 2-element array, got {}", items.len())))
            }
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Implements [`ToJson`] for a struct as an object with one entry per
/// listed field, in listed order (mirroring what `#[derive(Serialize)]`
/// produced).
///
/// # Examples
///
/// ```
/// struct Point {
///     x: f64,
///     label: String,
/// }
/// act_json::impl_to_json!(Point { x, label });
///
/// use act_json::ToJson;
/// let p = Point { x: 1.5, label: "origin-ish".into() };
/// assert_eq!(p.to_json().render_compact(), r#"{"x":1.5,"label":"origin-ish"}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::JsonValue {
                let mut object = $crate::JsonObject::new();
                $(object.insert(stringify!($field), $crate::ToJson::to_json(&self.$field));)+
                $crate::JsonValue::Object(object)
            }
        }
    };
}

/// Implements [`FromJson`] for a struct with all-required named fields.
#[macro_export]
macro_rules! impl_from_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::JsonValue) -> Result<Self, $crate::JsonError> {
                let object = value
                    .as_object()
                    .ok_or_else(|| $crate::JsonError::type_mismatch("an object", value))?;
                Ok(Self {
                    $($field: $crate::FromJson::from_json(
                        object
                            .get(stringify!($field))
                            .ok_or_else(|| $crate::JsonError::missing_field(stringify!($field)))?,
                    )?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`] **and** [`FromJson`] for a unit-variant enum,
/// rendering each variant as its name string — the same externally-tagged
/// shape `serde` used.
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::JsonValue {
                let name = match self {
                    $(Self::$variant => stringify!($variant),)+
                };
                $crate::JsonValue::String(name.to_owned())
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::JsonValue) -> Result<Self, $crate::JsonError> {
                let name = value
                    .as_str()
                    .ok_or_else(|| $crate::JsonError::type_mismatch("a variant name", value))?;
                match name {
                    $(stringify!($variant) => Ok(Self::$variant),)+
                    _ => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{name}`",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Builds a [`JsonValue::Object`] literal: `obj! { "key": value, ... }`.
/// Values are anything implementing [`ToJson`] (including nested `obj!`
/// results). The replacement for `serde_json::json!` object literals.
#[macro_export]
macro_rules! obj {
    ( $( $key:literal : $value:expr ),* $(,)? ) => {{
        #[allow(unused_mut)]
        let mut object = $crate::JsonObject::new();
        $( object.insert($key, $crate::ToJson::to_json(&$value)); )*
        $crate::JsonValue::Object(object)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_like_serde_json_did() {
        assert_eq!(JsonValue::Null.render_compact(), "null");
        assert_eq!(JsonValue::Bool(true).render_compact(), "true");
        assert_eq!(JsonValue::Int(42).render_compact(), "42");
        assert_eq!(JsonValue::Float(42.5).render_compact(), "42.5");
        assert_eq!(JsonValue::Float(820.0).render_compact(), "820.0");
        assert_eq!(JsonValue::Float(f64::NAN).render_compact(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render_compact(), "null");
        assert_eq!(JsonValue::String("a\"b\n".into()).render_compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn float_formatting_keeps_round_trip_precision() {
        for v in [0.1, 1.0 / 3.0, 1e-7, 6.02e23, -0.0, 123_456_789.125] {
            let text = format_float(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn pretty_rendering_indents_by_two() {
        let doc = obj! { "a": 1, "b": vec![1.5, 2.5] };
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    2.5\n  ]\n}"
        );
        assert_eq!(obj! {}.render_pretty(), "{}");
        assert_eq!(JsonValue::Array(Vec::new()).render_pretty(), "[]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let doc = obj! {
            "label": "trajectory",
            "count": 3,
            "speedup": 2.5,
            "flags": vec![true, false],
            "nested": obj! { "x": JsonValue::Null },
        };
        for text in [doc.render_compact(), doc.render_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\cé€ dA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\u{e9}\u{20ac} dA"));
        let pair = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("\u{1F600}"));
        let raw = JsonValue::parse("\"caf\u{e9}\"").unwrap();
        assert_eq!(raw.as_str(), Some("caf\u{e9}"));
    }

    #[test]
    fn parser_distinguishes_ints_from_floats() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("42.0").unwrap(), JsonValue::Float(42.0));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        // Integers beyond i64 fall back to floats instead of failing.
        assert!(matches!(
            JsonValue::parse("99999999999999999999").unwrap(),
            JsonValue::Float(_)
        ));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = JsonValue::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset(), Some(6));
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{\"a\": 1} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut text = String::new();
        for _ in 0..(MAX_PARSE_DEPTH + 8) {
            text.push('[');
        }
        let err = JsonValue::parse(&text).unwrap_err();
        assert!(err.to_string().contains("deeply"));
        assert_eq!(err.kind(), JsonErrorKind::TooDeep);
    }

    #[test]
    fn parse_limits_are_tunable() {
        let tight = ParseLimits { max_depth: 2, max_bytes: 16, max_number_len: 4 };
        assert!(JsonValue::parse_with_limits("[[1]]", &tight).is_ok());
        assert_eq!(
            JsonValue::parse_with_limits("[[[1]]]", &tight).unwrap_err().kind(),
            JsonErrorKind::TooDeep
        );
        assert_eq!(
            JsonValue::parse_with_limits("[1,2,3,4,5,6,7,8]", &tight).unwrap_err().kind(),
            JsonErrorKind::TooLarge
        );
        assert_eq!(
            JsonValue::parse_with_limits("123456", &tight).unwrap_err().kind(),
            JsonErrorKind::NumberTooLong
        );
    }

    #[test]
    fn error_kinds_classify_failures() {
        assert_eq!(JsonValue::parse("{oops").unwrap_err().kind(), JsonErrorKind::Syntax);
        assert_eq!(
            JsonValue::parse("1e999").unwrap_err().kind(),
            JsonErrorKind::NumberOutOfRange
        );
        assert_eq!(
            bool::from_json(&JsonValue::Int(1)).unwrap_err().kind(),
            JsonErrorKind::Conversion
        );
    }

    #[test]
    fn indexing_misses_return_null() {
        let doc = obj! { "a": vec![1, 2] };
        assert_eq!(doc["a"][0], 1i64);
        assert!(doc["missing"].is_null());
        assert!(doc["a"][99].is_null());
        assert!(doc[0].is_null());
    }

    #[test]
    fn object_insert_replaces_in_place() {
        let mut obj = JsonObject::new();
        obj.insert("a", JsonValue::Int(1));
        obj.insert("b", JsonValue::Int(2));
        obj.insert("a", JsonValue::Int(3));
        assert_eq!(obj.len(), 2);
        assert_eq!(obj.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(obj.get("a"), Some(&JsonValue::Int(3)));
    }

    #[test]
    fn tuples_render_as_arrays() {
        let pair = ("Lpddr4".to_owned(), 8.0);
        assert_eq!(pair.to_json().render_compact(), r#"["Lpddr4",8.0]"#);
        let back: (String, f64) = FromJson::from_json(&pair.to_json()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn struct_macros_round_trip() {
        #[derive(Debug, PartialEq)]
        struct Sample {
            name: String,
            count: u32,
            scale: f64,
            tags: Vec<String>,
        }
        impl_to_json!(Sample { name, count, scale, tags });
        impl_from_json!(Sample { name, count, scale, tags });

        let sample = Sample {
            name: "s".into(),
            count: 7,
            scale: 0.5,
            tags: vec!["a".into(), "b".into()],
        };
        let rendered = sample.to_json().render_pretty();
        let back = Sample::from_json(&JsonValue::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, sample);

        let missing = obj! { "name": "s" };
        let err = Sample::from_json(&missing).unwrap_err();
        assert!(err.to_string().contains("count"));
    }

    #[test]
    fn enum_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        enum Node {
            N7,
            N10,
        }
        impl_json_enum!(Node { N7, N10 });
        assert_eq!(Node::N7.to_json(), JsonValue::String("N7".into()));
        assert_eq!(Node::from_json(&JsonValue::String("N10".into())).unwrap(), Node::N10);
        let err = Node::from_json(&JsonValue::String("N3".into())).unwrap_err();
        assert!(err.to_string().contains("N3"));
    }

    #[test]
    fn option_and_int_conversions_validate() {
        assert_eq!(Option::<u32>::from_json(&JsonValue::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&JsonValue::Int(5)).unwrap(), Some(5));
        assert!(u32::from_json(&JsonValue::Int(-1)).is_err());
        assert!(u64::from_json(&JsonValue::Int(-1)).is_err());
        assert_eq!(f64::from_json(&JsonValue::Int(3)).unwrap(), 3.0);
        assert!(bool::from_json(&JsonValue::Int(1)).is_err());
    }

    #[test]
    fn u64_beyond_i64_degrades_to_float() {
        let v = u64::MAX.to_json();
        assert!(matches!(v, JsonValue::Float(_)));
        assert_eq!(usize::MIN.to_json(), JsonValue::Int(0));
    }
}
