//! Hostile-input corpus for the `act-json` parser.
//!
//! `act-server` feeds request bodies from untrusted peers straight into
//! [`JsonValue::parse_with_limits`], so the parser must reject — with a
//! typed error, never a panic, hang, or stack overflow — every malformed
//! document an adversary can produce. This suite is the deterministic
//! corpus backing that contract: truncations, NUL bytes, overlong numbers,
//! invalid escapes, deep nesting, and oversized documents.

use act_json::{JsonErrorKind, JsonValue, ParseLimits};

/// Every document here must produce `Err`, and the error must render as a
/// non-empty message (the server quotes it on the wire).
#[test]
fn malformed_corpus_is_rejected_with_errors() {
    let corpus: &[&str] = &[
        // Truncations at every structural boundary.
        "",
        "{",
        "[",
        "{\"a\"",
        "{\"a\":",
        "{\"a\":1",
        "{\"a\":1,",
        "[1,",
        "[1, 2",
        "\"unterminated",
        "\"trailing escape\\",
        "tru",
        "nul",
        "fals",
        "-",
        "1e",
        // Trailing garbage.
        "{} {}",
        "1 2",
        "[] x",
        // Structural garbage.
        "{\"a\" 1}",
        "{a: 1}",
        "{'a': 1}",
        "[1 2]",
        "[,]",
        "{,}",
        "{\"a\":1,}",
        "[1,]",
        ":",
        ",",
        "}",
        "]",
        // Bad keywords / bare words.
        "True",
        "NULL",
        "undefined",
        "NaN",
        "Infinity",
        "-Infinity",
        // Bad numbers.
        "0x10",
        "+1",
        "1e999",
        "-1e999",
        "--5",
        "1..2",
        "1ee5",
        // Bad escapes.
        "\"\\q\"",
        "\"\\u12\"",
        "\"\\uZZZZ\"",
        "\"\\ud800\\u0020\"",
        // Unescaped control characters (incl. NUL) inside strings.
        "\"nul \u{0} byte\"",
        "\"bell \u{7} char\"",
        "\"newline \n raw\"",
    ];
    for doc in corpus {
        let err = JsonValue::parse(doc)
            .expect_err(&format!("hostile document parsed cleanly: {doc:?}"));
        assert!(!err.to_string().is_empty(), "empty error message for {doc:?}");
    }
}

/// Deeply nested arrays and objects hit the depth limit as a typed error —
/// the stack is never the failing resource.
#[test]
fn deep_nesting_is_a_typed_error_for_both_container_kinds() {
    let deep_arrays = "[".repeat(100_000);
    let err = JsonValue::parse(&deep_arrays).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::TooDeep);

    let mut deep_objects = String::new();
    for _ in 0..100_000 {
        deep_objects.push_str("{\"k\":");
    }
    let err = JsonValue::parse(&deep_objects).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::TooDeep);
}

/// Nesting just inside the limit still parses: the guard is a ceiling, not
/// a behavior change for real documents.
#[test]
fn nesting_inside_the_limit_still_parses() {
    let limits = ParseLimits::default();
    let depth = limits.max_depth - 1;
    let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
    assert!(JsonValue::parse(&doc).is_ok());
}

/// Overlong numbers are rejected by length before the float parser sees
/// them; boundary-length numbers still parse.
#[test]
fn overlong_numbers_are_rejected_by_length() {
    let huge = "9".repeat(100_000);
    let err = JsonValue::parse(&huge).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::NumberTooLong);

    // A long-but-legal fraction within the limit parses fine.
    let fine = format!("0.{}", "3".repeat(64));
    assert!(JsonValue::parse(&fine).is_ok());
}

/// Overflowing numeric literals (`1e999` → ±inf) are a typed
/// `NumberOutOfRange` error, not a silent non-finite float: `format_float`
/// renders non-finite values as `null`, so accepting them would corrupt
/// any document on the parse → render round trip.
#[test]
fn overflowing_literals_are_a_typed_out_of_range_error() {
    for doc in ["1e999", "-1e999", "2e400", "123456789e99999", "9e9999999"] {
        let err = JsonValue::parse(doc)
            .expect_err(&format!("overflowing literal parsed cleanly: {doc:?}"));
        assert_eq!(err.kind(), JsonErrorKind::NumberOutOfRange, "wrong kind for {doc:?}");
    }
    // The same rejection fires in nested contexts, so a hostile scenario
    // payload can't tuck an overflow inside a field.
    for doc in ["{\"a\":[1e999]}", "[1, 2, -1e999]", "{\"deep\":{\"x\":1e999}}"] {
        let err = JsonValue::parse(doc)
            .expect_err(&format!("nested overflowing literal parsed cleanly: {doc:?}"));
        assert_eq!(err.kind(), JsonErrorKind::NumberOutOfRange, "wrong kind for {doc:?}");
    }
}

/// Regression: no accepted numeric literal may re-render as `null`. Before
/// the overflow guard, `1e999` parsed to `inf` and came back as `null` — a
/// silent round-trip corruption.
#[test]
fn no_accepted_number_renders_as_null() {
    for doc in ["1e308", "-1e308", "1.7976931348623157e308", "1e-999", "-1e-999", "0.0"] {
        let parsed = JsonValue::parse(doc).expect(doc);
        let rendered = parsed.render_compact();
        assert_ne!(rendered, "null", "literal {doc:?} round-tripped to null");
        // And the rendering itself must re-parse to the same value.
        assert_eq!(JsonValue::parse(&rendered).unwrap(), parsed);
    }
    // `1e-999` underflows to 0.0 — precision loss is fine, type loss is not.
    assert_eq!(JsonValue::parse("1e-999").unwrap().as_f64(), Some(0.0));
}

/// Documents over the byte ceiling are rejected before parsing starts.
#[test]
fn oversized_documents_are_rejected_up_front() {
    let limits = ParseLimits { max_bytes: 1024, ..ParseLimits::default() };
    let big = format!("[{}1]", "1,".repeat(1000));
    let err = JsonValue::parse_with_limits(&big, &limits).unwrap_err();
    assert_eq!(err.kind(), JsonErrorKind::TooLarge);
    // The same document passes under default limits.
    assert!(JsonValue::parse(&big).is_ok());
}

/// Escaped control characters remain legal; only raw ones are rejected, so
/// writer output (which always escapes) still round-trips.
#[test]
fn escaped_control_characters_round_trip() {
    let original = JsonValue::String("line\nbreak\ttab\u{1}bell".to_owned());
    let rendered = original.render_compact();
    assert_eq!(JsonValue::parse(&rendered).unwrap(), original);
}

/// Lone surrogates in `\u` escapes degrade to U+FFFD instead of failing —
/// tolerated, but never emitted as invalid UTF-8.
#[test]
fn lone_surrogates_degrade_to_replacement() {
    let v = JsonValue::parse("\"\\ud800\"").unwrap();
    assert_eq!(v.as_str(), Some("\u{FFFD}"));
}
