//! Monte-Carlo propagation of parameter uncertainty through a model.
//!
//! Carbon accounting is built on uncertain inputs — yields, grid
//! intensities, abatement effectiveness. Sampling the model under a
//! distribution of inputs turns a point estimate into a defensible range.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Summary statistics of a Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McStats {
    /// Sample mean.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Number of samples.
    pub samples: usize,
}

impl McStats {
    /// The p05–p95 spread relative to the mean — a unitless uncertainty
    /// indicator.
    #[must_use]
    pub fn relative_spread(&self) -> f64 {
        (self.p95 - self.p05) / self.mean
    }
}

/// Error returned by [`try_monte_carlo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum McError {
    /// `samples` was zero.
    NoSamples,
    /// Every draw produced a non-finite value; no statistics exist.
    AllRejected {
        /// Number of rejected draws (equals the requested sample count).
        rejected: usize,
    },
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSamples => write!(f, "Monte-Carlo run needs at least one sample"),
            Self::AllRejected { rejected } => {
                write!(f, "all {rejected} Monte-Carlo draws were non-finite")
            }
        }
    }
}

impl std::error::Error for McError {}

/// The result of a fault-tolerant Monte-Carlo run: statistics over the
/// finite draws plus the count of rejected (non-finite) ones.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McOutcome {
    /// Statistics over the finite samples.
    pub stats: McStats,
    /// Number of draws discarded because the model returned NaN or ±∞.
    pub rejected: usize,
}

/// Runs `samples` evaluations of `model`, each fed a fresh RNG-driven
/// input draw, and summarizes the outputs. Deterministic for a fixed
/// `seed`.
///
/// # Panics
///
/// Panics if `samples` is zero or the model produces non-finite outputs.
///
/// # Examples
///
/// ```
/// use act_dse::monte_carlo;
/// use rand::Rng;
///
/// // Footprint = area x CPA where yield is uncertain in [0.7, 1.0].
/// let stats = monte_carlo(2_000, 42, |rng| {
///     let y: f64 = rng.gen_range(0.7..1.0);
///     0.9 * 1370.0 / y
/// });
/// assert!(stats.p05 < stats.mean && stats.mean < stats.p95);
/// ```
pub fn monte_carlo(
    samples: usize,
    seed: u64,
    mut model: impl FnMut(&mut StdRng) -> f64,
) -> McStats {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..samples)
        .map(|_| {
            let v = model(&mut rng);
            assert!(v.is_finite(), "model produced a non-finite sample");
            v
        })
        .collect();
    summarize(values)
}

/// Fault-tolerant variant of [`monte_carlo`]: draws that evaluate to NaN or
/// ±∞ are skipped and counted instead of panicking, and the statistics are
/// computed over the remaining finite samples. Deterministic for a fixed
/// `seed` (the RNG advances identically whether a draw is kept or not).
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
///
/// # Examples
///
/// ```
/// use act_dse::try_monte_carlo;
/// use rand::Rng;
///
/// // A model with a pole: some yield draws divide by zero.
/// let outcome = try_monte_carlo(1_000, 42, |rng| {
///     let y: f64 = rng.gen_range(-0.1..1.0);
///     1370.0 / y.max(0.0) // y <= 0 -> +inf, rejected
/// })?;
/// assert!(outcome.rejected > 0);
/// assert!(outcome.stats.samples + outcome.rejected == 1_000);
/// # Ok::<(), act_dse::McError>(())
/// ```
pub fn try_monte_carlo(
    samples: usize,
    seed: u64,
    mut model: impl FnMut(&mut StdRng) -> f64,
) -> Result<McOutcome, McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(samples);
    let mut rejected = 0usize;
    for _ in 0..samples {
        let v = model(&mut rng);
        if v.is_finite() {
            values.push(v);
        } else {
            rejected += 1;
        }
    }
    if values.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok(McOutcome { stats: summarize(values), rejected })
}

/// Sorts the finite samples and extracts the summary statistics.
fn summarize(mut values: Vec<f64>) -> McStats {
    let samples = values.len();
    values.sort_by(f64::total_cmp);
    let mean = values.iter().sum::<f64>() / samples as f64;
    let pct = |q: f64| {
        let idx = ((samples - 1) as f64 * q).round() as usize;
        values[idx]
    };
    McStats { mean, p05: pct(0.05), p50: pct(0.5), p95: pct(0.95), samples }
}

/// Draws a triangular-distributed value on `[low, high]` with the given
/// mode — the standard shape for expert-judgment parameters like yield.
///
/// # Panics
///
/// Panics unless `low <= mode <= high` and `low < high`.
pub fn triangular(rng: &mut StdRng, low: f64, mode: f64, high: f64) -> f64 {
    assert!(low < high && (low..=high).contains(&mode), "invalid triangular parameters");
    let u: f64 = rng.gen();
    let cut = (mode - low) / (high - low);
    if u < cut {
        low + ((high - low) * (mode - low) * u).sqrt()
    } else {
        high - ((high - low) * (high - mode) * (1.0 - u)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_deterministic() {
        let f = |rng: &mut StdRng| rng.gen_range(0.0..1.0);
        let a = monte_carlo(5_000, 7, f);
        let b = monte_carlo(5_000, 7, f);
        assert_eq!(a, b);
        assert!(a.p05 <= a.p50 && a.p50 <= a.p95);
        assert!((a.mean - 0.5).abs() < 0.02);
        assert_eq!(a.samples, 5_000);
    }

    #[test]
    fn constant_model_has_zero_spread() {
        let s = monte_carlo(100, 0, |_| 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn triangular_respects_bounds_and_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut below = 0;
        let n = 20_000;
        for _ in 0..n {
            let v = triangular(&mut rng, 0.5, 0.9, 1.0);
            assert!((0.5..=1.0).contains(&v));
            if v < 0.9 {
                below += 1;
            }
        }
        // P(X < mode) = (mode-low)/(high-low) = 0.8 for the triangular.
        let frac = f64::from(below) / f64::from(n);
        assert!((frac - 0.8).abs() < 0.02, "fraction below mode {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = monte_carlo(0, 0, |_| 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_model_rejected() {
        let _ = monte_carlo(10, 0, |_| f64::NAN);
    }

    #[test]
    #[should_panic(expected = "triangular")]
    fn bad_triangular_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = triangular(&mut rng, 1.0, 0.5, 0.9);
    }

    #[test]
    fn try_monte_carlo_matches_panicking_variant_on_clean_models() {
        let f = |rng: &mut StdRng| rng.gen_range(0.0..1.0);
        let outcome = try_monte_carlo(2_000, 7, f).unwrap();
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.stats, monte_carlo(2_000, 7, f));
    }

    #[test]
    fn try_monte_carlo_skips_and_counts_poisoned_draws() {
        let f = |rng: &mut StdRng| {
            let v: f64 = rng.gen_range(0.0..1.0);
            if v < 0.25 {
                f64::NAN
            } else {
                v
            }
        };
        let outcome = try_monte_carlo(4_000, 11, f).unwrap();
        assert!(outcome.rejected > 0, "expected some rejections");
        assert_eq!(outcome.stats.samples + outcome.rejected, 4_000);
        assert!(outcome.stats.p05 >= 0.25);
    }

    #[test]
    fn try_monte_carlo_reports_degenerate_runs() {
        assert_eq!(try_monte_carlo(0, 0, |_| 1.0), Err(McError::NoSamples));
        assert_eq!(
            try_monte_carlo(10, 0, |_| f64::INFINITY),
            Err(McError::AllRejected { rejected: 10 })
        );
        let err = try_monte_carlo(10, 0, |_| f64::NAN).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }
}
