//! Monte-Carlo propagation of parameter uncertainty through a model.
//!
//! Carbon accounting is built on uncertain inputs — yields, grid
//! intensities, abatement effectiveness. Sampling the model under a
//! distribution of inputs turns a point estimate into a defensible range.
//!
//! The closure-based entry points here take one sample at a time. For
//! compiled-kernel hot loops, the block-vectorized twins in
//! [`batch`](crate::batch) —
//! [`crate::monte_carlo_compiled_block_budgeted`] and its pooled
//! variants — sample straight into reusable structure-of-arrays columns
//! and evaluate whole blocks per kernel call, with the same per-sample
//! seed-splitting and therefore bit-identical [`McStats`].

use act_rng::Rng;

use crate::parallel::{par_map_range, Parallelism};

/// Summary statistics of a Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McStats {
    /// Sample mean.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Number of samples.
    pub samples: usize,
}

act_json::impl_to_json!(McStats { mean, p05, p50, p95, samples });
act_json::impl_from_json!(McStats { mean, p05, p50, p95, samples });

impl McStats {
    /// The p05–p95 spread relative to the magnitude of the mean — a
    /// unitless uncertainty indicator.
    ///
    /// Never returns NaN: a zero spread is `0.0` regardless of the mean
    /// (even an all-zero run is "perfectly certain"), and a nonzero spread
    /// over a mean too small to normalize by (`|mean| <
    /// f64::MIN_POSITIVE`, or a non-finite mean from poisoned statistics)
    /// reports `f64::INFINITY` — "infinitely uncertain" — instead of
    /// dividing by ~zero. The divisor is `|mean|`, so the indicator is
    /// non-negative for negative-mean models too.
    #[must_use]
    pub fn relative_spread(&self) -> f64 {
        let spread = self.p95 - self.p05;
        if spread == 0.0 {
            return 0.0;
        }
        let scale = self.mean.abs();
        if spread.is_nan() || !scale.is_finite() || scale < f64::MIN_POSITIVE {
            return f64::INFINITY;
        }
        spread / scale
    }
}

/// Error returned by [`try_monte_carlo`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum McError {
    /// `samples` was zero.
    NoSamples,
    /// Every draw produced a non-finite value; no statistics exist.
    AllRejected {
        /// Number of rejected draws (equals the requested sample count).
        rejected: usize,
    },
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSamples => write!(f, "Monte-Carlo run needs at least one sample"),
            Self::AllRejected { rejected } => {
                write!(f, "all {rejected} Monte-Carlo draws were non-finite")
            }
        }
    }
}

impl std::error::Error for McError {}

/// The result of a fault-tolerant Monte-Carlo run: statistics over the
/// finite draws plus the count of rejected (non-finite) ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McOutcome {
    /// Statistics over the finite samples.
    pub stats: McStats,
    /// Number of draws discarded because the model returned NaN or ±∞.
    pub rejected: usize,
}

act_json::impl_to_json!(McOutcome { stats, rejected });
act_json::impl_from_json!(McOutcome { stats, rejected });

/// Runs `samples` evaluations of `model`, each fed a fresh RNG-driven
/// input draw, and summarizes the outputs. Deterministic for a fixed
/// `seed`.
///
/// # Panics
///
/// Panics if `samples` is zero or the model produces non-finite outputs.
///
/// # Examples
///
/// ```
/// use act_dse::monte_carlo;
///
/// // Footprint = area x CPA where yield is uncertain in [0.7, 1.0].
/// let stats = monte_carlo(2_000, 42, |rng| {
///     let y: f64 = rng.gen_range(0.7..1.0);
///     0.9 * 1370.0 / y
/// });
/// assert!(stats.p05 < stats.mean && stats.mean < stats.p95);
/// ```
pub fn monte_carlo(
    samples: usize,
    seed: u64,
    mut model: impl FnMut(&mut Rng) -> f64,
) -> McStats {
    assert!(samples > 0, "need at least one sample");
    let mut rng = Rng::seed_from_u64(seed);
    let values: Vec<f64> = (0..samples)
        .map(|_| {
            let v = model(&mut rng);
            assert!(v.is_finite(), "model produced a non-finite sample");
            v
        })
        .collect();
    summarize(values)
}

/// Fault-tolerant variant of [`monte_carlo`]: draws that evaluate to NaN or
/// ±∞ are skipped and counted instead of panicking, and the statistics are
/// computed over the remaining finite samples. Deterministic for a fixed
/// `seed` (the RNG advances identically whether a draw is kept or not).
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
///
/// # Examples
///
/// ```
/// use act_dse::try_monte_carlo;
///
/// // A model with a pole: some yield draws divide by zero.
/// let outcome = try_monte_carlo(1_000, 42, |rng| {
///     let y: f64 = rng.gen_range(-0.1..1.0);
///     1370.0 / y.max(0.0) // y <= 0 -> +inf, rejected
/// })?;
/// assert!(outcome.rejected > 0);
/// assert!(outcome.stats.samples + outcome.rejected == 1_000);
/// # Ok::<(), act_dse::McError>(())
/// ```
pub fn try_monte_carlo(
    samples: usize,
    seed: u64,
    mut model: impl FnMut(&mut Rng) -> f64,
) -> Result<McOutcome, McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(samples);
    let mut rejected = 0usize;
    for _ in 0..samples {
        let v = model(&mut rng);
        if v.is_finite() {
            values.push(v);
        } else {
            rejected += 1;
        }
    }
    if values.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok(McOutcome { stats: summarize(values), rejected })
}

/// Derives the independent RNG seed for sample `index` of a run keyed by
/// `master` — the seed-splitting scheme behind [`par_monte_carlo`].
///
/// This is the SplitMix64 output function evaluated at position
/// `index + 1` of the stream seeded by `master`: every sample gets its own
/// statistically independent `Rng`, no RNG state is shared between
/// samples, and the draw for sample `i` depends only on `(master, i)` —
/// never on which thread evaluated it or in what order. That is the whole
/// determinism argument: parallel and serial runs see bit-identical draws.
#[must_use]
pub fn mc_sample_seed(master: u64, index: u64) -> u64 {
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic parallel Monte-Carlo under the default
/// [`Parallelism::Auto`] policy.
///
/// Unlike [`monte_carlo`] — which threads one RNG through every draw and
/// is therefore inherently serial — each sample `i` gets its own `Rng`
/// seeded with [`mc_sample_seed`]`(seed, i)`. Sample values consequently
/// depend only on `(seed, i)`, so the returned statistics are **bit-for-bit
/// identical** for any thread count, including [`Parallelism::Serial`] —
/// pinned by property tests. The draws differ from [`monte_carlo`]'s for
/// the same seed (a different, parallelizable RNG schedule), but are
/// sampled from exactly the same distributions.
///
/// # Panics
///
/// Panics if `samples` is zero or the model produces non-finite outputs.
///
/// # Examples
///
/// ```
/// use act_dse::par_monte_carlo;
///
/// let stats = par_monte_carlo(2_000, 42, |rng| {
///     let y: f64 = rng.gen_range(0.7..1.0);
///     0.9 * 1370.0 / y
/// });
/// assert!(stats.p05 < stats.mean && stats.mean < stats.p95);
/// ```
pub fn par_monte_carlo(
    samples: usize,
    seed: u64,
    model: impl Fn(&mut Rng) -> f64 + Sync,
) -> McStats {
    par_monte_carlo_with(Parallelism::Auto, samples, seed, model)
}

/// Deterministic parallel Monte-Carlo under an explicit [`Parallelism`]
/// policy. See [`par_monte_carlo`] for the determinism guarantee.
///
/// # Panics
///
/// Panics if `samples` is zero or the model produces non-finite outputs.
pub fn par_monte_carlo_with(
    parallelism: Parallelism,
    samples: usize,
    seed: u64,
    model: impl Fn(&mut Rng) -> f64 + Sync,
) -> McStats {
    assert!(samples > 0, "need at least one sample");
    let values = par_map_range(parallelism, samples, |i| {
        let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, i as u64));
        let v = model(&mut rng);
        assert!(v.is_finite(), "model produced a non-finite sample");
        v
    });
    summarize(values)
}

/// Fault-tolerant deterministic parallel Monte-Carlo under the default
/// [`Parallelism::Auto`] policy: non-finite draws are skipped and counted
/// exactly as in [`try_monte_carlo`], and — like [`par_monte_carlo`] — the
/// outcome is bit-for-bit identical for any thread count.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
///
/// # Examples
///
/// ```
/// use act_dse::par_try_monte_carlo;
///
/// let outcome = par_try_monte_carlo(1_000, 42, |rng| {
///     let y: f64 = rng.gen_range(-0.1..1.0);
///     1370.0 / y.max(0.0) // y <= 0 -> +inf, rejected
/// })?;
/// assert!(outcome.rejected > 0);
/// assert_eq!(outcome.stats.samples + outcome.rejected, 1_000);
/// # Ok::<(), act_dse::McError>(())
/// ```
pub fn par_try_monte_carlo(
    samples: usize,
    seed: u64,
    model: impl Fn(&mut Rng) -> f64 + Sync,
) -> Result<McOutcome, McError> {
    par_try_monte_carlo_with(Parallelism::Auto, samples, seed, model)
}

/// Fault-tolerant deterministic parallel Monte-Carlo under an explicit
/// [`Parallelism`] policy.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
pub fn par_try_monte_carlo_with(
    parallelism: Parallelism,
    samples: usize,
    seed: u64,
    model: impl Fn(&mut Rng) -> f64 + Sync,
) -> Result<McOutcome, McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    let draws = par_map_range(parallelism, samples, |i| {
        let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, i as u64));
        model(&mut rng)
    });
    let mut values = Vec::with_capacity(samples);
    let mut rejected = 0usize;
    for v in draws {
        if v.is_finite() {
            values.push(v);
        } else {
            rejected += 1;
        }
    }
    if values.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok(McOutcome { stats: summarize(values), rejected })
}

/// Sorts the finite samples and extracts the summary statistics.
fn summarize(mut values: Vec<f64>) -> McStats {
    summarize_slice(&mut values)
}

/// Slice-borrowing core of [`summarize`]: sorts `values` in place and
/// extracts the summary statistics without taking ownership, so the batch
/// path can summarize a reusable buffer without reallocating. Bit-identical
/// to the owning wrapper — same sort, same fold, same percentile indexing.
pub(crate) fn summarize_slice(values: &mut [f64]) -> McStats {
    let samples = values.len();
    values.sort_by(f64::total_cmp);
    let mean = values.iter().sum::<f64>() / samples as f64;
    let pct = |q: f64| {
        let idx = ((samples - 1) as f64 * q).round() as usize;
        values[idx]
    };
    McStats { mean, p05: pct(0.05), p50: pct(0.5), p95: pct(0.95), samples }
}

/// Error returned by [`try_triangular`] for parameters that do not define
/// a triangular distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangularError {
    /// The rejected lower bound.
    pub low: f64,
    /// The rejected mode.
    pub mode: f64,
    /// The rejected upper bound.
    pub high: f64,
}

impl std::fmt::Display for TriangularError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid triangular parameters: need finite low < high with low <= mode <= high, \
             got low={}, mode={}, high={}",
            self.low, self.mode, self.high
        )
    }
}

impl std::error::Error for TriangularError {}

/// Fallible twin of [`triangular`]: draws a triangular-distributed value
/// on `[low, high]` with the given mode, rejecting bad parameters with a
/// typed error instead of panicking — the form user-supplied fleet
/// distributions must go through, so a hostile payload becomes a 400
/// instead of a caught-panic 500.
///
/// The RNG is only advanced when the parameters are valid, so a rejected
/// draw consumes no randomness.
///
/// # Errors
///
/// Returns [`TriangularError`] unless all three parameters are finite,
/// `low < high`, and `low <= mode <= high`.
pub fn try_triangular(
    rng: &mut Rng,
    low: f64,
    mode: f64,
    high: f64,
) -> Result<f64, TriangularError> {
    let valid = low.is_finite()
        && mode.is_finite()
        && high.is_finite()
        && low < high
        && (low..=high).contains(&mode);
    if !valid {
        return Err(TriangularError { low, mode, high });
    }
    let u: f64 = rng.gen();
    let cut = (mode - low) / (high - low);
    Ok(if u < cut {
        low + ((high - low) * (mode - low) * u).sqrt()
    } else {
        high - ((high - low) * (high - mode) * (1.0 - u)).sqrt()
    })
}

/// Draws a triangular-distributed value on `[low, high]` with the given
/// mode — the standard shape for expert-judgment parameters like yield.
/// Delegates to [`try_triangular`]; use that form directly when the
/// parameters come from untrusted input.
///
/// # Panics
///
/// Panics unless `low <= mode <= high` and `low < high` (all finite).
pub fn triangular(rng: &mut Rng, low: f64, mode: f64, high: f64) -> f64 {
    match try_triangular(rng, low, mode, high) {
        Ok(value) => value,
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_deterministic() {
        let f = |rng: &mut Rng| rng.gen_range(0.0..1.0);
        let a = monte_carlo(5_000, 7, f);
        let b = monte_carlo(5_000, 7, f);
        assert_eq!(a, b);
        assert!(a.p05 <= a.p50 && a.p50 <= a.p95);
        assert!((a.mean - 0.5).abs() < 0.02);
        assert_eq!(a.samples, 5_000);
    }

    #[test]
    fn constant_model_has_zero_spread() {
        let s = monte_carlo(100, 0, |_| 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn triangular_respects_bounds_and_mode() {
        let mut rng = Rng::seed_from_u64(3);
        let mut below = 0;
        let n = 20_000;
        for _ in 0..n {
            let v = triangular(&mut rng, 0.5, 0.9, 1.0);
            assert!((0.5..=1.0).contains(&v));
            if v < 0.9 {
                below += 1;
            }
        }
        // P(X < mode) = (mode-low)/(high-low) = 0.8 for the triangular.
        let frac = f64::from(below) / f64::from(n);
        assert!((frac - 0.8).abs() < 0.02, "fraction below mode {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = monte_carlo(0, 0, |_| 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_model_rejected() {
        let _ = monte_carlo(10, 0, |_| f64::NAN);
    }

    #[test]
    #[should_panic(expected = "triangular")]
    fn bad_triangular_rejected() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = triangular(&mut rng, 1.0, 0.5, 0.9);
    }

    #[test]
    fn try_triangular_rejects_bad_parameters_with_typed_error() {
        let mut rng = Rng::seed_from_u64(0);
        // Mode outside [low, high].
        let err = try_triangular(&mut rng, 1.0, 0.5, 0.9).unwrap_err();
        assert_eq!(err, TriangularError { low: 1.0, mode: 0.5, high: 0.9 });
        assert!(err.to_string().contains("triangular"));
        // Degenerate interval (low == high) and inverted bounds.
        assert!(try_triangular(&mut rng, 1.0, 1.0, 1.0).is_err());
        assert!(try_triangular(&mut rng, 2.0, 1.5, 1.0).is_err());
        // Non-finite parameters never reach the sampling arithmetic.
        assert!(try_triangular(&mut rng, f64::NAN, 0.5, 1.0).is_err());
        assert!(try_triangular(&mut rng, 0.0, 0.5, f64::INFINITY).is_err());
        // A rejected draw consumes no randomness: the next valid draw
        // matches a fresh RNG's first draw bit for bit.
        let mut fresh = Rng::seed_from_u64(0);
        let after_rejects = try_triangular(&mut rng, 0.0, 0.5, 1.0).unwrap();
        let first = try_triangular(&mut fresh, 0.0, 0.5, 1.0).unwrap();
        assert_eq!(after_rejects.to_bits(), first.to_bits());
    }

    #[test]
    fn try_triangular_matches_panicking_variant_on_valid_parameters() {
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = triangular(&mut a, 0.5, 0.9, 1.0);
            let y = try_triangular(&mut b, 0.5, 0.9, 1.0).unwrap();
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn try_monte_carlo_matches_panicking_variant_on_clean_models() {
        let f = |rng: &mut Rng| rng.gen_range(0.0..1.0);
        let outcome = try_monte_carlo(2_000, 7, f).unwrap();
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.stats, monte_carlo(2_000, 7, f));
    }

    #[test]
    fn try_monte_carlo_skips_and_counts_poisoned_draws() {
        let f = |rng: &mut Rng| {
            let v: f64 = rng.gen_range(0.0..1.0);
            if v < 0.25 {
                f64::NAN
            } else {
                v
            }
        };
        let outcome = try_monte_carlo(4_000, 11, f).unwrap();
        assert!(outcome.rejected > 0, "expected some rejections");
        assert_eq!(outcome.stats.samples + outcome.rejected, 4_000);
        assert!(outcome.stats.p05 >= 0.25);
    }

    #[test]
    fn relative_spread_is_nan_free() {
        // Zero spread, zero mean: certain, not NaN.
        let zero = McStats { mean: 0.0, p05: 0.0, p50: 0.0, p95: 0.0, samples: 10 };
        assert_eq!(zero.relative_spread(), 0.0);
        // Nonzero spread around a zero mean: infinitely uncertain.
        let centered = McStats { mean: 0.0, p05: -1.0, p50: 0.0, p95: 1.0, samples: 10 };
        assert_eq!(centered.relative_spread(), f64::INFINITY);
        // Near-zero (subnormal-adjacent) mean: still no blow-up into NaN.
        let tiny = McStats { mean: 1e-320, p05: 0.0, p50: 1e-320, p95: 1.0, samples: 10 };
        assert_eq!(tiny.relative_spread(), f64::INFINITY);
        // Negative mean: indicator stays non-negative.
        let negative = McStats { mean: -2.0, p05: -3.0, p50: -2.0, p95: -1.0, samples: 10 };
        assert_eq!(negative.relative_spread(), 1.0);
        // Poisoned stats never produce NaN either.
        let poisoned = McStats { mean: f64::NAN, p05: 0.0, p50: 1.0, p95: 2.0, samples: 10 };
        assert_eq!(poisoned.relative_spread(), f64::INFINITY);
    }

    #[test]
    fn par_monte_carlo_is_thread_count_invariant() {
        let f = |rng: &mut Rng| rng.gen_range(0.0..1.0);
        let serial = par_monte_carlo_with(Parallelism::Serial, 5_000, 7, f);
        let two = par_monte_carlo_with(Parallelism::threads(2), 5_000, 7, f);
        let eight = par_monte_carlo_with(Parallelism::threads(8), 5_000, 7, f);
        assert_eq!(serial, two);
        assert_eq!(serial, eight);
        assert!((serial.mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn par_monte_carlo_matches_manual_seed_split_loop() {
        let f = |rng: &mut Rng| rng.gen_range(0.0..1.0);
        let parallel = par_monte_carlo_with(Parallelism::threads(4), 2_000, 11, f);
        let values: Vec<f64> = (0..2_000u64)
            .map(|i| {
                let mut rng = Rng::seed_from_u64(mc_sample_seed(11, i));
                f(&mut rng)
            })
            .collect();
        let reference = summarize(values);
        assert_eq!(parallel, reference);
    }

    #[test]
    fn par_try_monte_carlo_is_thread_count_invariant() {
        let f = |rng: &mut Rng| {
            let v: f64 = rng.gen_range(0.0..1.0);
            if v < 0.25 {
                f64::NAN
            } else {
                v
            }
        };
        let serial = par_try_monte_carlo_with(Parallelism::Serial, 4_000, 13, f).unwrap();
        let parallel = par_try_monte_carlo_with(Parallelism::threads(8), 4_000, 13, f).unwrap();
        assert_eq!(serial, parallel);
        assert!(parallel.rejected > 0);
        assert_eq!(parallel.stats.samples + parallel.rejected, 4_000);
    }

    #[test]
    fn par_try_monte_carlo_reports_degenerate_runs() {
        assert_eq!(par_try_monte_carlo(0, 0, |_| 1.0), Err(McError::NoSamples));
        assert_eq!(
            par_try_monte_carlo(10, 0, |_| f64::INFINITY),
            Err(McError::AllRejected { rejected: 10 })
        );
    }

    #[test]
    fn sample_seeds_are_well_spread() {
        // Consecutive indices and nearby masters must not collide.
        let mut seen = std::collections::HashSet::new();
        for master in 0..8u64 {
            for index in 0..1_000u64 {
                assert!(seen.insert(mc_sample_seed(master, index)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn par_zero_samples_rejected() {
        let _ = par_monte_carlo(0, 0, |_| 1.0);
    }

    #[test]
    fn try_monte_carlo_reports_degenerate_runs() {
        assert_eq!(try_monte_carlo(0, 0, |_| 1.0), Err(McError::NoSamples));
        assert_eq!(
            try_monte_carlo(10, 0, |_| f64::INFINITY),
            Err(McError::AllRejected { rejected: 10 })
        );
        let err = try_monte_carlo(10, 0, |_| f64::NAN).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }
}
