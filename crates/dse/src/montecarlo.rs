//! Monte-Carlo propagation of parameter uncertainty through a model.
//!
//! Carbon accounting is built on uncertain inputs — yields, grid
//! intensities, abatement effectiveness. Sampling the model under a
//! distribution of inputs turns a point estimate into a defensible range.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Summary statistics of a Monte-Carlo run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct McStats {
    /// Sample mean.
    pub mean: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Number of samples.
    pub samples: usize,
}

impl McStats {
    /// The p05–p95 spread relative to the mean — a unitless uncertainty
    /// indicator.
    #[must_use]
    pub fn relative_spread(&self) -> f64 {
        (self.p95 - self.p05) / self.mean
    }
}

/// Runs `samples` evaluations of `model`, each fed a fresh RNG-driven
/// input draw, and summarizes the outputs. Deterministic for a fixed
/// `seed`.
///
/// # Panics
///
/// Panics if `samples` is zero or the model produces non-finite outputs.
///
/// # Examples
///
/// ```
/// use act_dse::monte_carlo;
/// use rand::Rng;
///
/// // Footprint = area x CPA where yield is uncertain in [0.7, 1.0].
/// let stats = monte_carlo(2_000, 42, |rng| {
///     let y: f64 = rng.gen_range(0.7..1.0);
///     0.9 * 1370.0 / y
/// });
/// assert!(stats.p05 < stats.mean && stats.mean < stats.p95);
/// ```
pub fn monte_carlo(
    samples: usize,
    seed: u64,
    mut model: impl FnMut(&mut StdRng) -> f64,
) -> McStats {
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..samples)
        .map(|_| {
            let v = model(&mut rng);
            assert!(v.is_finite(), "model produced a non-finite sample");
            v
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mean = values.iter().sum::<f64>() / samples as f64;
    let pct = |q: f64| {
        let idx = ((samples - 1) as f64 * q).round() as usize;
        values[idx]
    };
    McStats { mean, p05: pct(0.05), p50: pct(0.5), p95: pct(0.95), samples }
}

/// Draws a triangular-distributed value on `[low, high]` with the given
/// mode — the standard shape for expert-judgment parameters like yield.
///
/// # Panics
///
/// Panics unless `low <= mode <= high` and `low < high`.
pub fn triangular(rng: &mut StdRng, low: f64, mode: f64, high: f64) -> f64 {
    assert!(low < high && (low..=high).contains(&mode), "invalid triangular parameters");
    let u: f64 = rng.gen();
    let cut = (mode - low) / (high - low);
    if u < cut {
        low + ((high - low) * (mode - low) * u).sqrt()
    } else {
        high - ((high - low) * (high - mode) * (1.0 - u)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_deterministic() {
        let f = |rng: &mut StdRng| rng.gen_range(0.0..1.0);
        let a = monte_carlo(5_000, 7, f);
        let b = monte_carlo(5_000, 7, f);
        assert_eq!(a, b);
        assert!(a.p05 <= a.p50 && a.p50 <= a.p95);
        assert!((a.mean - 0.5).abs() < 0.02);
        assert_eq!(a.samples, 5_000);
    }

    #[test]
    fn constant_model_has_zero_spread() {
        let s = monte_carlo(100, 0, |_| 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn triangular_respects_bounds_and_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut below = 0;
        let n = 20_000;
        for _ in 0..n {
            let v = triangular(&mut rng, 0.5, 0.9, 1.0);
            assert!((0.5..=1.0).contains(&v));
            if v < 0.9 {
                below += 1;
            }
        }
        // P(X < mode) = (mode-low)/(high-low) = 0.8 for the triangular.
        let frac = f64::from(below) / f64::from(n);
        assert!((frac - 0.8).abs() < 0.02, "fraction below mode {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = monte_carlo(0, 0, |_| 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_model_rejected() {
        let _ = monte_carlo(10, 0, |_| f64::NAN);
    }

    #[test]
    #[should_panic(expected = "triangular")]
    fn bad_triangular_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = triangular(&mut rng, 1.0, 0.5, 0.9);
    }
}
