//! Design-space exploration machinery shared by the ACT case studies:
//! parameter sweeps, Pareto frontiers, constrained optima and normalization.
//!
//! Every case study in the paper is a design-space exploration — over SoC
//! generations (Figure 8), engine provisioning (Figures 9–10), MAC-array
//! sizes (Figures 12–13), hardware lifetimes (Figure 14) or over-provisioning
//! factors (Figure 15). This crate holds the exploration primitives so each
//! study only writes its model.
//!
//! Sweeps over untrusted configurations use the fallible primitives
//! ([`try_sweep`], [`sweep_finite`], [`try_monte_carlo`]): invalid design
//! points are skipped and recorded in the returned [`SweepOutcome`] /
//! [`McOutcome`] rather than panicking mid-exploration.
//!
//! # Examples
//!
//! ```
//! use act_dse::{argmin_by, pareto_indices, powers_of_two};
//!
//! let macs = powers_of_two(64, 2048);
//! assert_eq!(macs, vec![64, 128, 256, 512, 1024, 2048]);
//!
//! // Smallest design meeting a constraint.
//! let best = argmin_by(&macs, |m| f64::from(*m));
//! assert_eq!(best, Some(0));
//!
//! // Two objectives: (cost, -quality). Only non-dominated points survive.
//! let points = vec![vec![1.0, 5.0], vec![2.0, 1.0], vec![3.0, 3.0]];
//! assert_eq!(pareto_indices(&points), vec![0, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod montecarlo;
mod optimize;
mod pareto;
mod sweep;

pub use montecarlo::{monte_carlo, triangular, try_monte_carlo, McError, McOutcome, McStats};
pub use optimize::{argmin_by, argmin_feasible, knee_point, normalize_to, normalize_to_last};
pub use pareto::{dominates, pareto_indices};
pub use sweep::{
    linspace, logspace, powers_of_two, sweep, sweep_finite, try_sweep, RejectedPoint,
    SweepOutcome,
};
