//! Design-space exploration machinery shared by the ACT case studies:
//! parameter sweeps, Pareto frontiers, constrained optima and normalization.
//!
//! Every case study in the paper is a design-space exploration — over SoC
//! generations (Figure 8), engine provisioning (Figures 9–10), MAC-array
//! sizes (Figures 12–13), hardware lifetimes (Figure 14) or over-provisioning
//! factors (Figure 15). This crate holds the exploration primitives so each
//! study only writes its model.
//!
//! Sweeps over untrusted configurations use the fallible primitives
//! ([`try_sweep`], [`sweep_finite`], [`try_monte_carlo`]): invalid design
//! points are skipped and recorded in the returned [`SweepOutcome`] /
//! [`McOutcome`] rather than panicking mid-exploration.
//!
//! Large design spaces evaluate in parallel through the `par_*` twins
//! ([`par_sweep`], [`par_try_sweep`], [`par_sweep_finite`],
//! [`par_monte_carlo`], [`par_try_monte_carlo`]): results come back in
//! input order and — via per-sample seed-splitting for Monte-Carlo — are
//! bit-for-bit identical to their serial counterparts for any thread
//! count. The [`Parallelism`] policy picks the worker count (`Serial`,
//! `Auto` honoring `ACT_THREADS`, or explicit `Threads(n)`); disabling the
//! default `parallel` cargo feature removes the threading entirely while
//! keeping every `par_*` API compiling (serial fallback).
//!
//! Million-point explorations use the compiled batch path ([`PointBatch`],
//! [`sweep_compiled`], [`par_sweep_compiled`],
//! [`par_monte_carlo_compiled`]): design points live in
//! structure-of-arrays columns, results land in reusable buffers, and the
//! model is a precompiled `Fn(&[f64]) -> f64` kernel (e.g.
//! `act_core::CompiledFootprint::eval`) — zero per-point heap allocation
//! with the same skip-and-record and seed-splitting semantics as the
//! per-point API. The block-vectorized `_block` twins
//! ([`sweep_compiled_block`], [`par_sweep_compiled_block`],
//! [`par_monte_carlo_compiled_block`]) go further: the kernel receives
//! whole column ranges (pair with `act_core::EvalPlan::eval_block`), so
//! the hot loop reads columns directly with no per-point gather or enum
//! dispatch — same results, bit for bit, several times faster.
//!
//! # Examples
//!
//! ```
//! use act_dse::{argmin_by, pareto_indices, powers_of_two};
//!
//! let macs = powers_of_two(64, 2048);
//! assert_eq!(macs, vec![64, 128, 256, 512, 1024, 2048]);
//!
//! // Smallest design meeting a constraint.
//! let best = argmin_by(&macs, |m| f64::from(*m));
//! assert_eq!(best, Some(0));
//!
//! // Two objectives: (cost, -quality). Only non-dominated points survive.
//! let points = vec![vec![1.0, 5.0], vec![2.0, 1.0], vec![3.0, 3.0]];
//! assert_eq!(pareto_indices(&points), vec![0, 1]);
//! ```

// `deny`, not `forbid`: the persistent worker pool (`pool` module) needs
// two narrowly-scoped `unsafe` items to share stack-borrowed closures with
// pool threads (crossbeam-scope-style lifetime confinement, documented
// there). Everything else in the crate stays `unsafe`-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod montecarlo;
mod optimize;
mod parallel;
mod pareto;
#[cfg(feature = "parallel")]
mod pool;
mod sweep;

pub use batch::{
    monte_carlo_compiled_block_budgeted, monte_carlo_compiled_budgeted,
    par_monte_carlo_compiled, par_monte_carlo_compiled_block,
    par_monte_carlo_compiled_block_budgeted, par_monte_carlo_compiled_block_with,
    par_monte_carlo_compiled_budgeted, par_monte_carlo_compiled_with, par_sweep_compiled,
    par_sweep_compiled_block, par_sweep_compiled_block_budgeted, par_sweep_compiled_block_with,
    par_sweep_compiled_budgeted, par_sweep_compiled_with, sweep_compiled, sweep_compiled_block,
    sweep_compiled_block_budgeted, sweep_compiled_budgeted, BatchOutput, BatchRun,
    BatchShapeError, EvalBudget, McBuffer, PointBatch,
};
pub use montecarlo::{
    mc_sample_seed, monte_carlo, par_monte_carlo, par_monte_carlo_with, par_try_monte_carlo,
    par_try_monte_carlo_with, triangular, try_monte_carlo, try_triangular, McError, McOutcome,
    McStats, TriangularError,
};
pub use optimize::{argmin_by, argmin_feasible, knee_point, normalize_to, normalize_to_last};
pub use parallel::{
    calibration, machine_parallelism, par_map_ordered, par_map_range, BatchDecision,
    Calibration, CalibrationSource, Parallelism, ResolvedParallelism, ThreadsSource,
    ThreadsWarning, ThreadsWarningReason,
};
pub use pareto::{dominates, pareto_indices, pareto_indices_reference};
pub use sweep::{
    linspace, linspace_iter, logspace, logspace_iter, par_sweep, par_sweep_finite,
    par_sweep_finite_with, par_sweep_with, par_try_sweep, par_try_sweep_with, powers_of_two,
    powers_of_two_iter, sweep, sweep_finite, try_sweep, RejectedPoint, SweepOutcome,
};
