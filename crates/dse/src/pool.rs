//! The persistent worker pool behind every `par_*` entry point.
//!
//! Before this module existed, each parallel call spawned fresh OS threads
//! through `std::thread::scope` and joined them before returning. Thread
//! creation costs tens of microseconds per worker — more than an entire
//! 10k-point compiled sweep — which is how the pr5-hermetic bench record
//! ended up with a 0.99× "parallel speedup". The pool spawns each worker
//! **once** per process and hands work over with a `Mutex`/`Condvar`
//! rendezvous, so steady-state dispatch costs one lock round-trip and one
//! `notify_all` instead of N `clone(2)` calls.
//!
//! Design:
//!
//! * **One job at a time.** Jobs are work-stealing loops (every participant
//!   pulls indices from a shared atomic cursor until it is drained), so a
//!   single job already saturates the machine; queueing several would only
//!   add contention. A dispatch while another job is running — including a
//!   nested `par_*` call from inside a running task — degrades to running
//!   the task inline on the caller, which is always correct because task
//!   output is position-addressed and cursor-driven.
//! * **The caller participates.** `run(workers, task)` executes `task` on
//!   the calling thread too; only `workers - 1` pool threads join in. A
//!   `workers <= 1` dispatch never touches the pool at all.
//! * **Panic isolation.** [`run`] catches a panicking task on every thread,
//!   remembers the first payload, and resumes it on the caller **after**
//!   all workers have stopped — same contract as the old scoped engine.
//!   Pool threads never unwind, so the pool needs no respawn logic to
//!   survive a panicking kernel: the next job reuses the same threads.
//! * **Kernel-shape agnostic.** The pool moves chunk indices, not points:
//!   the per-point engine (`fill_chunked`) and the block-vectorized engine
//!   (`fill_chunked_block`, which hands each stolen chunk to the kernel as
//!   whole structure-of-arrays column ranges) dispatch through the same
//!   [`run`] with identical stealing, budget, and merge semantics.
//!
//! # Why there is `unsafe` here
//!
//! A persistent pool cannot use `std::thread::scope`, whose borrow magic is
//! what let the old engine share stack-borrowed closures. Pool threads are
//! `'static`, so the borrowed `&dyn Fn()` must have its lifetime erased to
//! cross into them — the same trick `crossbeam`'s scoped threads use. The
//! soundness argument is confinement: the raw pointer is published under
//! the pool lock, every dereference happens between a worker's
//! `running += 1` and `running -= 1` (both under the lock), and [`run`]
//! does not return — or unwind — until it has retracted the job and
//! observed `running == 0`. No worker can touch the pointer after `run`
//! returns, so the borrow it was created from is live for every access.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// A lifetime-erased pointer to the current job's task closure. Only
/// constructed by [`run`], which guarantees the pointee outlives every
/// dereference (see the module docs).
#[derive(Clone, Copy)]
struct TaskRef {
    ptr: *const (dyn Fn() + Sync),
}

// SAFETY: the pointee is a `&(dyn Fn() + Sync)` — `Sync`, so shared calls
// from several threads are sound — and `run` keeps it alive for as long as
// any worker can hold a `TaskRef` (the retract-then-drain protocol).
// Sending the pointer is therefore no more than sending the reference it
// was created from.
#[allow(unsafe_code)]
unsafe impl Send for TaskRef {}

struct Job {
    task: TaskRef,
    /// Pool workers still allowed to join this job.
    slots: usize,
}

struct State {
    /// Bumped on every dispatch so a sleeping worker can tell a fresh job
    /// from the one it just finished.
    epoch: u64,
    job: Option<Job>,
    /// Pool workers currently inside a task closure.
    running: usize,
    /// Pool worker threads spawned so far (grows on demand, never shrinks).
    threads: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers: a new job was dispatched.
    work_ready: Condvar,
    /// Wakes the dispatcher: `running` reached zero.
    work_done: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(State { epoch: 0, job: None, running: 0, threads: 0 }),
        work_ready: Condvar::new(),
        work_done: Condvar::new(),
    })
}

/// Serializes dispatches. Taken with `try_lock` only: a contended gate
/// (another job in flight, or a nested `par_*` call) falls back to inline
/// execution instead of blocking — a pool worker blocking here while its
/// own job waits on it would deadlock.
fn dispatch_gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

/// Locks ignoring poison: pool state is only mutated under the lock by
/// panic-free code (tasks run outside it), so a poisoned mutex can only
/// mean a panic in an unrelated guard scope — the data is still coherent.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `task` on the calling thread plus up to `workers - 1` pool
/// threads, returning once every participant has finished. Panics from any
/// participant (caller included) are rethrown on the caller after all
/// workers have stopped; the first payload wins.
///
/// `task` must be a self-contained work-stealing loop: every invocation
/// pulls work from shared state until none is left, so running it on fewer
/// threads than requested (pool busy, spawn failure) is slower but never
/// wrong.
pub(crate) fn run(workers: usize, task: &(dyn Fn() + Sync)) {
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let guarded = || {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = lock(&panic_slot);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    };
    dispatch(workers, &guarded);
    let payload = lock(&panic_slot).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// The dispatch protocol: publish the job, participate, retract, drain.
/// `task` must not unwind (callers wrap it in `catch_unwind`).
fn dispatch(workers: usize, task: &(dyn Fn() + Sync)) {
    let helpers = workers.saturating_sub(1);
    if helpers == 0 {
        task();
        return;
    }
    let Ok(_gate) = dispatch_gate().try_lock() else {
        // Pool busy or nested dispatch: inline execution (see module docs).
        task();
        return;
    };
    let shared = shared();
    // SAFETY: pure lifetime erasure — the fat reference becomes a raw
    // pointer whose trait-object bound defaults to `'static`. Soundness of
    // later dereferences rests on the retract-and-drain protocol below
    // (see the module docs); the transmute itself changes no bytes.
    #[allow(unsafe_code)]
    let task_ref = TaskRef {
        ptr: unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync)>(task)
        },
    };
    {
        let mut state = lock(&shared.state);
        ensure_threads(&mut state, helpers);
        let slots = helpers.min(state.threads);
        if slots == 0 {
            // Spawning failed entirely; run the whole job inline.
            drop(state);
            task();
            return;
        }
        state.epoch = state.epoch.wrapping_add(1);
        state.job = Some(Job { task: task_ref, slots });
        shared.work_ready.notify_all();
    }
    // Participate. `task` does not unwind, so control always reaches the
    // retract-and-drain step below — the linchpin of the SAFETY argument.
    task();
    // Retract the job so no new worker claims it, then wait out the ones
    // already inside. After this loop no thread holds a `TaskRef`.
    let mut state = lock(&shared.state);
    state.job = None;
    while state.running > 0 {
        state = shared.work_done.wait(state).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Grows the pool to `wanted` threads. Spawn failures degrade the pool
/// size rather than panicking — the job still completes on fewer threads.
fn ensure_threads(state: &mut State, wanted: usize) {
    while state.threads < wanted {
        let name = format!("act-pool-{}", state.threads);
        match std::thread::Builder::new().name(name).spawn(worker_loop) {
            Ok(_handle) => state.threads += 1,
            Err(_) => break,
        }
    }
}

fn worker_loop() {
    let shared = shared();
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut state = lock(&shared.state);
            loop {
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    let claimed = match state.job.as_mut() {
                        Some(job) if job.slots > 0 => {
                            job.slots -= 1;
                            Some(job.task)
                        }
                        // Fully claimed or already retracted: skip it.
                        _ => None,
                    };
                    if let Some(task) = claimed {
                        state.running += 1;
                        break task;
                    }
                }
                state = shared.work_ready.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: `running` was incremented under the lock before the
        // dispatcher could observe `running == 0`, and the dispatcher does
        // not return until it does — so the closure behind `task.ptr` is
        // still borrowed by a live `dispatch` frame. See the module docs.
        #[allow(unsafe_code)]
        let task: &(dyn Fn() + Sync) = unsafe { &*task.ptr };
        // Defense in depth: `run` already catches panics inside the task,
        // so this only trips if `dispatch` is misused. Either way a pool
        // thread must never unwind — it would strand the dispatcher.
        let _ = catch_unwind(AssertUnwindSafe(task));
        let mut state = lock(&shared.state);
        state.running -= 1;
        if state.running == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// Measures the pool's steady-state dispatch overhead: the wall-clock cost
/// of handing a trivial job to `workers` threads and joining it. Used by
/// the one-shot calibration in [`crate::parallel`]; the first dispatch
/// (which spawns the threads) is excluded by a warmup round.
pub(crate) fn measure_dispatch_overhead(workers: usize, reps: u32) -> std::time::Duration {
    let touched = AtomicUsize::new(0);
    let task = || {
        touched.fetch_add(1, Ordering::Relaxed);
    };
    run(workers, &task); // warmup: spawns the threads
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        run(workers, &task);
        best = best.min(start.elapsed());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn caller_only_when_single_worker() {
        let hits = AtomicUsize::new(0);
        run(1, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn all_participants_run_the_task() {
        // Each participant runs the closure once; with a 4-way dispatch the
        // cursor-style counter must land on ≥ 1 (caller) and ≤ 4.
        let hits = AtomicUsize::new(0);
        run(4, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
            // Hold participants long enough that the pool threads get a
            // chance to claim their slots before the job is retracted.
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        let hits = hits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn panics_resume_on_the_caller_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            run(4, &|| panic!("kernel exploded"));
        });
        assert!(caught.is_err(), "panic must propagate");
        // The pool must still dispatch jobs afterwards.
        let ran = AtomicBool::new(false);
        run(4, &|| {
            ran.store(true, Ordering::Relaxed);
        });
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn nested_dispatch_degrades_to_inline() {
        // A task that itself dispatches must not deadlock.
        let inner_hits = AtomicUsize::new(0);
        run(2, &|| {
            run(2, &|| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(inner_hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn dispatch_overhead_is_measurable() {
        let overhead = measure_dispatch_overhead(2, 4);
        assert!(overhead < std::time::Duration::from_secs(1));
    }
}
