//! Selection helpers: unconstrained and constrained argmin, normalization.

/// Index of the item with the smallest cost. Returns `None` for empty input
/// or when every cost is NaN.
///
/// # Examples
///
/// ```
/// use act_dse::argmin_by;
/// let v = [3.0, 1.0, 2.0];
/// assert_eq!(argmin_by(&v, |x| *x), Some(1));
/// ```
pub fn argmin_by<T>(items: &[T], mut cost: impl FnMut(&T) -> f64) -> Option<usize> {
    items
        .iter()
        .enumerate()
        .filter_map(|(i, item)| {
            let c = cost(item);
            c.is_finite().then_some((i, c))
        })
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
}

/// Index of the cheapest item satisfying `feasible` — the QoS- and
/// area-constrained optimization of Figure 13. Returns `None` when nothing
/// is feasible.
///
/// # Examples
///
/// ```
/// use act_dse::argmin_feasible;
/// // Cheapest design achieving at least 30 FPS.
/// let designs = [(10.0_f64, 8.0_f64), (16.0, 33.0), (53.0, 270.0)];
/// let best = argmin_feasible(&designs, |d| d.0, |d| d.1 >= 30.0);
/// assert_eq!(best, Some(1));
/// ```
pub fn argmin_feasible<T>(
    items: &[T],
    mut cost: impl FnMut(&T) -> f64,
    mut feasible: impl FnMut(&T) -> bool,
) -> Option<usize> {
    items
        .iter()
        .enumerate()
        .filter(|(_, item)| feasible(item))
        .filter_map(|(i, item)| {
            let c = cost(item);
            c.is_finite().then_some((i, c))
        })
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
}

/// Index of the knee point of a two-objective frontier: the point closest
/// (in normalized Euclidean distance) to the utopia point formed by the
/// per-objective minima. A standard heuristic for "balanced" designs when
/// no Table-2 metric is mandated.
///
/// Returns `None` on empty input.
///
/// # Examples
///
/// ```
/// use act_dse::knee_point;
/// // (carbon, delay) frontier: the middle point balances both.
/// let points = [(10.0, 1.0), (4.0, 4.0), (1.0, 10.0)];
/// assert_eq!(knee_point(&points, |p| p.0, |p| p.1), Some(1));
/// ```
pub fn knee_point<T>(
    items: &[T],
    mut objective_a: impl FnMut(&T) -> f64,
    mut objective_b: impl FnMut(&T) -> f64,
) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let a: Vec<f64> = items.iter().map(&mut objective_a).collect();
    let b: Vec<f64> = items.iter().map(&mut objective_b).collect();
    let (a_min, a_max) = min_max(&a)?;
    let (b_min, b_max) = min_max(&b)?;
    let a_span = (a_max - a_min).max(f64::MIN_POSITIVE);
    let b_span = (b_max - b_min).max(f64::MIN_POSITIVE);
    (0..items.len())
        .map(|i| {
            let da = (a[i] - a_min) / a_span;
            let db = (b[i] - b_min) / b_span;
            (i, da * da + db * db)
        })
        .min_by(|(_, x), (_, y)| x.total_cmp(y))
        .map(|(i, _)| i)
}

fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if !v.is_finite() {
            return None;
        }
        min = min.min(v);
        max = max.max(v);
    }
    Some((min, max))
}

/// Divides every value by `baseline` (Figure 8(d)-style normalization).
///
/// # Panics
///
/// Panics if `baseline` is zero or not finite.
#[must_use]
pub fn normalize_to(values: &[f64], baseline: f64) -> Vec<f64> {
    assert!(
        baseline.is_finite() && baseline != 0.0,
        "normalization baseline must be finite and nonzero, got {baseline}"
    );
    values.iter().map(|v| v / baseline).collect()
}

/// Normalizes a series to its last element — the paper normalizes each SoC
/// family to its newest member.
///
/// # Panics
///
/// Panics if `values` is empty or the last element is zero.
#[must_use]
pub fn normalize_to_last(values: &[f64]) -> Vec<f64> {
    let Some(&last) = values.last() else { panic!("cannot normalize an empty series") };
    normalize_to(values, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmin_skips_nan() {
        let v = [f64::NAN, 2.0, 1.0];
        assert_eq!(argmin_by(&v, |x| *x), Some(2));
    }

    #[test]
    fn argmin_empty_is_none() {
        let v: [f64; 0] = [];
        assert_eq!(argmin_by(&v, |x| *x), None);
    }

    #[test]
    fn argmin_all_nan_is_none() {
        let v = [f64::NAN, f64::NAN];
        assert_eq!(argmin_by(&v, |x| *x), None);
    }

    #[test]
    fn constrained_argmin_ignores_infeasible_cheap_points() {
        // The cheapest overall design misses the QoS bar.
        let designs = [(1.0_f64, 10.0_f64), (5.0, 40.0), (3.0, 35.0)];
        assert_eq!(argmin_feasible(&designs, |d| d.0, |d| d.1 >= 30.0), Some(2));
    }

    #[test]
    fn constrained_argmin_none_when_infeasible() {
        let designs = [(1.0_f64, 10.0_f64)];
        assert_eq!(argmin_feasible(&designs, |d| d.0, |d| d.1 >= 30.0), None);
    }

    #[test]
    fn knee_point_prefers_balanced_designs() {
        let points = [(100.0, 1.0), (20.0, 3.0), (10.0, 10.0), (1.0, 100.0)];
        let knee = knee_point(&points, |p| p.0, |p| p.1).unwrap();
        assert!(knee == 1 || knee == 2, "knee at {knee}");
    }

    #[test]
    fn knee_point_of_single_item_is_it() {
        assert_eq!(knee_point(&[(5.0, 5.0)], |p| p.0, |p| p.1), Some(0));
    }

    #[test]
    fn knee_point_empty_is_none() {
        let empty: [(f64, f64); 0] = [];
        assert_eq!(knee_point(&empty, |p| p.0, |p| p.1), None);
    }

    #[test]
    fn knee_point_rejects_nan_gracefully() {
        let points = [(f64::NAN, 1.0), (1.0, 2.0)];
        assert_eq!(knee_point(&points, |p| p.0, |p| p.1), None);
    }

    #[test]
    fn normalization_round_trip() {
        let v = [2.0, 4.0, 8.0];
        assert_eq!(normalize_to(&v, 2.0), vec![1.0, 2.0, 4.0]);
        assert_eq!(normalize_to_last(&v), vec![0.25, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "baseline must be finite and nonzero")]
    fn zero_baseline_panics() {
        let _ = normalize_to(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn normalize_empty_panics() {
        let _ = normalize_to_last(&[]);
    }
}
