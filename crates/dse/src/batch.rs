//! Structure-of-arrays batch evaluation for compiled kernels.
//!
//! The per-point sweep API ([`sweep`](crate::sweep()), `par_sweep`) hands the
//! model an owned parameter and collects `(param, result)` pairs — fine for
//! dozens of points, wasteful for millions. This module is the batch twin:
//! design points live in a [`PointBatch`] (one contiguous column per free
//! axis), results land in a caller-owned reusable [`BatchOutput`], and the
//! model is any `Fn(&[f64]) -> f64` kernel — typically
//! `act_core::CompiledFootprint::eval` — so the hot loop performs **zero
//! heap allocations per point**.
//!
//! Semantics mirror the per-point path exactly:
//!
//! * **skip-and-record** — a non-finite kernel result does not abort the
//!   sweep; the point's output slot is poisoned to NaN and a
//!   [`RejectedPoint`] with the same reason string as
//!   [`sweep_finite`](crate::sweep_finite) is recorded, in sweep order;
//! * **thread-count invariance** — the parallel entry points partition the
//!   output buffer into cache-friendly contiguous chunks
//!   (`slice::chunks_mut`, no `unsafe`) and hand chunk indices to the
//!   persistent worker pool through an atomic cursor (work stealing), and
//!   each point's value depends only on its coordinates, so serial and
//!   parallel runs are bit-for-bit identical;
//! * **deterministic seed-splitting** — [`par_monte_carlo_compiled`] seeds
//!   sample `i` with [`mc_sample_seed`]`(seed, i)` exactly like
//!   [`par_try_monte_carlo`](crate::par_try_monte_carlo), so its outcome is
//!   invariant under the thread count too.
//!
//! Every entry point also has a **block-vectorized `_block` twin**
//! ([`sweep_compiled_block`], [`par_sweep_compiled_block`],
//! [`par_monte_carlo_compiled_block`], and their `_budgeted` variants) that
//! hands the kernel whole column ranges instead of gathered points — pair
//! them with `act_core::EvalPlan::eval_block` for the fast path: column
//! reads replace the per-point gather, and the budget is consulted on
//! block boundaries at the same check-interval granularity.

use std::fmt;
use std::ops::Range;
use std::time::Instant;

use act_rng::Rng;

use crate::montecarlo::{mc_sample_seed, summarize_slice, McError, McOutcome};
use crate::parallel::Parallelism;
use crate::sweep::RejectedPoint;

/// A cooperative evaluation budget for batch loops: a wall-clock deadline
/// checked every [`check_interval`](Self::check_interval) points, so a
/// hot loop stays allocation-free and branch-cheap but can still be cut
/// off mid-batch. This is the hook `act-server` uses to enforce
/// per-request deadlines inside long sweeps — the socket timeouts bound
/// I/O, this bounds compute.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use act_dse::EvalBudget;
///
/// let unlimited = EvalBudget::unlimited();
/// assert!(!unlimited.is_exhausted());
///
/// let expired = EvalBudget::with_deadline(Instant::now() - Duration::from_millis(1));
/// assert!(expired.is_exhausted());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EvalBudget {
    deadline: Option<Instant>,
    check_interval: usize,
}

impl EvalBudget {
    /// How many points a budgeted loop evaluates between deadline checks
    /// by default. `Instant::now` costs tens of nanoseconds; a compiled
    /// kernel point costs a few — checking every 1024 points keeps the
    /// overhead under 1 % while bounding overshoot to ~a microsecond.
    pub const DEFAULT_CHECK_INTERVAL: usize = 1024;

    /// A budget that never expires: budgeted loops behave exactly like
    /// their unbudgeted twins.
    #[must_use]
    pub fn unlimited() -> Self {
        Self { deadline: None, check_interval: Self::DEFAULT_CHECK_INTERVAL }
    }

    /// A budget that expires at `deadline`.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self { deadline: Some(deadline), check_interval: Self::DEFAULT_CHECK_INTERVAL }
    }

    /// Overrides the points-between-checks interval (clamped up to 1).
    /// Smaller intervals tighten deadline precision at the cost of more
    /// clock reads; tests use `1` for exact cut-off points.
    #[must_use]
    pub fn check_every(mut self, interval: usize) -> Self {
        self.check_interval = interval.max(1);
        self
    }

    /// The configured points-between-checks interval.
    #[must_use]
    pub fn check_interval(&self) -> usize {
        self.check_interval
    }

    /// `true` once the deadline has passed (always `false` when unlimited).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// The cheap per-point check: consults the clock only on interval
    /// boundaries (and never for an unlimited budget).
    #[inline]
    fn exhausted_at(&self, index: usize) -> bool {
        self.deadline.is_some()
            && index.is_multiple_of(self.check_interval)
            && self.is_exhausted()
    }
}

/// How a budgeted batch run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchRun {
    /// Every point was evaluated.
    Completed,
    /// The [`EvalBudget`] expired after `completed` points; the remaining
    /// output slots hold NaN and recorded no rejections.
    DeadlineExceeded {
        /// Number of leading points that were evaluated before cut-off.
        completed: usize,
    },
}

impl BatchRun {
    /// `true` when every point was evaluated.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Completed)
    }
}

/// Why a set of columns cannot form a [`PointBatch`]: the typed twin of
/// the panics in [`PointBatch::from_columns`], for request paths (like
/// `act-server`) that must turn a hostile body into an error response
/// instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchShapeError {
    /// No axis columns at all — a batch needs at least one.
    Empty,
    /// Column `axis` disagrees with column 0 on length.
    Ragged {
        /// Index of the offending column.
        axis: usize,
        /// Its length.
        len: usize,
        /// Column 0's length, which every column must match.
        expected: usize,
    },
}

impl fmt::Display for BatchShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "a point batch needs at least one axis column"),
            Self::Ragged { axis, len, expected } => {
                write!(f, "axis column {axis} has {len} points but column 0 has {expected}")
            }
        }
    }
}

impl std::error::Error for BatchShapeError {}

/// A structure-of-arrays block of design points: one `f64` column per free
/// axis, all columns the same length.
///
/// Column `a` holds coordinate `a` of every point, so a single-axis sweep
/// is just the swept values and a kernel reads point `i` as
/// `&[col0[i], col1[i], ...]` gathered into a scratch slice.
///
/// # Examples
///
/// ```
/// use act_dse::PointBatch;
///
/// let batch = PointBatch::single_axis(vec![1.0, 2.0, 3.0]);
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.axis_count(), 1);
///
/// let grid = PointBatch::from_columns(vec![vec![1.0, 2.0], vec![10.0, 20.0]]);
/// let mut point = [0.0; 2];
/// grid.gather(1, &mut point);
/// assert_eq!(point, [2.0, 20.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PointBatch {
    columns: Vec<Vec<f64>>,
    len: usize,
}

impl PointBatch {
    /// Batch over a single free axis: each value is one design point.
    #[must_use]
    pub fn single_axis(values: Vec<f64>) -> Self {
        let len = values.len();
        Self { columns: vec![values], len }
    }

    /// Batch over several free axes, one column per axis.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or the columns disagree on length.
    #[must_use]
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Self {
        match Self::try_from_columns(columns) {
            Ok(batch) => batch,
            Err(shape) => panic!("{shape}"),
        }
    }

    /// Fallible twin of [`Self::from_columns`] for untrusted input: the
    /// same shape checks, reported as a typed [`BatchShapeError`] instead
    /// of a panic. `act-server` uses it so a hostile sweep body becomes a
    /// 400 response rather than a caught panic.
    ///
    /// # Errors
    ///
    /// Returns [`BatchShapeError::Empty`] when `columns` is empty and
    /// [`BatchShapeError::Ragged`] when the columns disagree on length.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_dse::{BatchShapeError, PointBatch};
    ///
    /// assert_eq!(PointBatch::try_from_columns(Vec::new()), Err(BatchShapeError::Empty));
    /// assert_eq!(
    ///     PointBatch::try_from_columns(vec![vec![1.0, 2.0], vec![3.0]]),
    ///     Err(BatchShapeError::Ragged { axis: 1, len: 1, expected: 2 }),
    /// );
    /// assert!(PointBatch::try_from_columns(vec![vec![1.0], vec![2.0]]).is_ok());
    /// ```
    pub fn try_from_columns(columns: Vec<Vec<f64>>) -> Result<Self, BatchShapeError> {
        if columns.is_empty() {
            return Err(BatchShapeError::Empty);
        }
        let len = columns[0].len();
        for (axis, column) in columns.iter().enumerate() {
            if column.len() != len {
                return Err(BatchShapeError::Ragged { axis, len: column.len(), expected: len });
            }
        }
        Ok(Self { columns, len })
    }

    /// Number of design points in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the batch holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of free axes (columns).
    #[must_use]
    pub fn axis_count(&self) -> usize {
        self.columns.len()
    }

    /// The values of axis `axis` across every point.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    #[must_use]
    pub fn column(&self, axis: usize) -> &[f64] {
        &self.columns[axis]
    }

    /// All columns as borrowed slices, in axis order — the
    /// structure-of-arrays view block kernels read directly (e.g.
    /// `act_core::EvalPlan::eval_block`). The small per-call `Vec` of
    /// references is amortized over the whole batch, not per point.
    #[must_use]
    pub fn column_slices(&self) -> Vec<&[f64]> {
        self.columns.iter().map(Vec::as_slice).collect()
    }

    /// Copies point `index` into `scratch` (one slot per axis).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `scratch` is not exactly
    /// [`axis_count`](Self::axis_count) long.
    pub fn gather(&self, index: usize, scratch: &mut [f64]) {
        assert!(
            scratch.len() == self.columns.len(),
            "scratch has {} slots for {} axes",
            scratch.len(),
            self.columns.len()
        );
        for (slot, column) in scratch.iter_mut().zip(&self.columns) {
            *slot = column[index];
        }
    }
}

/// Reusable output buffer for [`sweep_compiled`] / [`par_sweep_compiled`]:
/// one value per design point plus the skip-and-record rejection log.
///
/// Rejected points keep their slot in [`values`](Self::values) — poisoned to
/// NaN — so output index `i` always corresponds to batch point `i`.
/// Reusing one buffer across sweeps amortizes its allocation to zero.
#[derive(Clone, Debug, Default)]
pub struct BatchOutput {
    values: Vec<f64>,
    rejected: Vec<RejectedPoint>,
}

impl BatchOutput {
    /// An empty buffer; the first sweep sizes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-point results, in batch order. Rejected points hold NaN.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The rejected points, in sweep order.
    #[must_use]
    pub fn rejected(&self) -> &[RejectedPoint] {
        &self.rejected
    }

    /// Number of rejected points.
    #[must_use]
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }

    /// `true` when no point was rejected.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.rejected.is_empty()
    }

    /// Drops the previous sweep's contents and sizes the value buffer for
    /// `len` points, retaining allocated capacity.
    pub fn reset(&mut self, len: usize) {
        self.values.clear();
        self.values.resize(len, f64::NAN);
        self.rejected.clear();
    }

    /// Empties the buffer entirely (capacity is retained).
    pub fn clear(&mut self) {
        self.values.clear();
        self.rejected.clear();
    }
}

/// The reason string shared with [`sweep_finite`](crate::sweep_finite) —
/// byte-identical so batch and per-point rejection logs agree.
fn non_finite_reason(v: f64) -> String {
    format!("model produced a non-finite result ({v})")
}

/// Evaluates `kernel` on every point of `batch`, serially, writing results
/// into `out`.
///
/// Non-finite results are skipped and recorded exactly like
/// [`sweep_finite`](crate::sweep_finite): the slot is poisoned to NaN and a
/// [`RejectedPoint`] carries the index and reason. The hot loop allocates
/// nothing per point (one scratch slice per call).
///
/// # Examples
///
/// ```
/// use act_dse::{sweep_compiled, BatchOutput, PointBatch};
///
/// let batch = PointBatch::single_axis(vec![4.0, 0.0, 1.0]);
/// let mut out = BatchOutput::new();
/// sweep_compiled(&batch, |p| 1.0 / p[0], &mut out);
/// assert_eq!(out.values()[0], 0.25);
/// assert!(out.values()[1].is_nan()); // 1/0 = inf, rejected
/// assert_eq!(out.rejected()[0].index, 1);
/// ```
pub fn sweep_compiled(
    batch: &PointBatch,
    kernel: impl Fn(&[f64]) -> f64,
    out: &mut BatchOutput,
) {
    out.reset(batch.len());
    let mut scratch = vec![0.0; batch.axis_count()];
    for (index, slot) in out.values.iter_mut().enumerate() {
        batch.gather(index, &mut scratch);
        let v = kernel(&scratch);
        if v.is_finite() {
            *slot = v;
        } else {
            *slot = f64::NAN;
            out.rejected.push(RejectedPoint { index, reason: non_finite_reason(v) });
        }
    }
}

/// [`sweep_compiled`] under a cooperative [`EvalBudget`]: evaluates points
/// in batch order until the budget expires, then stops — the completed
/// prefix is bit-for-bit identical to an unbudgeted run, untouched slots
/// hold NaN, and the return value says how far it got.
///
/// This is the serial leg: one thread, point-aligned cut-off, budget check
/// a plain branch. Large batches that clear the break-even calibration go
/// through [`par_sweep_compiled_budgeted`] instead — that is how
/// `act-server` routes sweeps when the calibrated policy says parallel
/// wins.
///
/// # Examples
///
/// ```
/// use act_dse::{sweep_compiled_budgeted, BatchRun, BatchOutput, EvalBudget, PointBatch};
///
/// let batch = PointBatch::single_axis(vec![1.0, 2.0, 4.0]);
/// let mut out = BatchOutput::new();
/// let run = sweep_compiled_budgeted(&batch, |p| 1.0 / p[0], &mut out, &EvalBudget::unlimited());
/// assert_eq!(run, BatchRun::Completed);
/// assert_eq!(out.values(), &[1.0, 0.5, 0.25]);
/// ```
pub fn sweep_compiled_budgeted(
    batch: &PointBatch,
    kernel: impl Fn(&[f64]) -> f64,
    out: &mut BatchOutput,
    budget: &EvalBudget,
) -> BatchRun {
    out.reset(batch.len());
    let mut scratch = vec![0.0; batch.axis_count()];
    for (index, slot) in out.values.iter_mut().enumerate() {
        if budget.exhausted_at(index) {
            return BatchRun::DeadlineExceeded { completed: index };
        }
        batch.gather(index, &mut scratch);
        let v = kernel(&scratch);
        if v.is_finite() {
            *slot = v;
        } else {
            *slot = f64::NAN;
            out.rejected.push(RejectedPoint { index, reason: non_finite_reason(v) });
        }
    }
    BatchRun::Completed
}

/// Budgeted serial twin of [`par_monte_carlo_compiled`]: draws samples in
/// order (seeded with [`mc_sample_seed`], so the completed prefix is
/// bit-identical to the unbudgeted run) until the [`EvalBudget`] expires,
/// then summarizes **the completed prefix**.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] when `samples` is zero or the budget
/// expired before the first draw, and [`McError::AllRejected`] when every
/// completed draw was non-finite.
pub fn monte_carlo_compiled_budgeted(
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, &mut [f64]),
    kernel: impl Fn(&[f64]) -> f64,
    buf: &mut McBuffer,
    budget: &EvalBudget,
) -> Result<(McOutcome, BatchRun), McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    buf.draws.clear();
    let mut scratch = vec![0.0; axes];
    let mut run = BatchRun::Completed;
    for index in 0..samples {
        if budget.exhausted_at(index) {
            run = BatchRun::DeadlineExceeded { completed: index };
            break;
        }
        let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, index as u64));
        sampler(&mut rng, &mut scratch);
        let v = kernel(&scratch);
        buf.draws.push(if v.is_finite() { v } else { f64::NAN });
    }
    let completed = buf.draws.len();
    if completed == 0 {
        return Err(McError::NoSamples);
    }
    buf.finite.clear();
    buf.finite.extend(buf.draws.iter().copied().filter(|v| v.is_finite()));
    let rejected = completed - buf.finite.len();
    if buf.finite.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok((McOutcome { stats: summarize_slice(&mut buf.finite), rejected }, run))
}

/// Parallel [`sweep_compiled`] under the default [`Parallelism::Auto`]
/// policy. Bit-for-bit identical to the serial path for any thread count.
pub fn par_sweep_compiled(
    batch: &PointBatch,
    kernel: impl Fn(&[f64]) -> f64 + Sync,
    out: &mut BatchOutput,
) {
    par_sweep_compiled_with(Parallelism::Auto, batch, kernel, out);
}

/// Parallel [`sweep_compiled`] under an explicit [`Parallelism`] policy.
///
/// The output buffer is partitioned into cache-friendly contiguous chunks
/// (`slice::chunks_mut` — no `unsafe`) and the persistent worker pool
/// steals chunk *indices* from an atomic cursor, so a skewed kernel cannot
/// strand a whole static partition on one worker. Each worker keeps
/// per-chunk rejection logs that are merged back in chunk order, so
/// [`BatchOutput::rejected`] stays in sweep order. A machine-default
/// [`Parallelism::Auto`] additionally consults the break-even
/// [`calibration`](crate::calibration): batches below the calibrated
/// threshold run serial, because pool dispatch would cost more than it
/// saves.
pub fn par_sweep_compiled_with(
    parallelism: Parallelism,
    batch: &PointBatch,
    kernel: impl Fn(&[f64]) -> f64 + Sync,
    out: &mut BatchOutput,
) {
    let len = batch.len();
    let workers = parallelism.resolve_for(len).workers.min(len.max(1));
    if workers <= 1 {
        sweep_compiled(batch, kernel, out);
        return;
    }
    out.reset(len);
    let run = fill_chunked(
        workers,
        &mut out.values,
        &mut out.rejected,
        &kernel,
        |scratch, index| {
            batch.gather(index, scratch);
        },
        batch.axis_count(),
        &EvalBudget::unlimited(),
    );
    debug_assert!(run.is_complete(), "an unlimited budget cannot expire");
}

/// Budgeted twin of [`par_sweep_compiled_with`]: evaluates under a
/// cooperative [`EvalBudget`], cutting off at a **chunk-aligned completed
/// prefix** when the deadline passes. The completed prefix is bit-for-bit
/// identical to an unbudgeted (or serial) run, every slot past it holds
/// NaN, and the rejection log covers exactly the completed prefix — the
/// same contract as [`sweep_compiled_budgeted`], with the cut-off rounded
/// to a chunk boundary instead of a single point.
pub fn par_sweep_compiled_budgeted(
    parallelism: Parallelism,
    batch: &PointBatch,
    kernel: impl Fn(&[f64]) -> f64 + Sync,
    out: &mut BatchOutput,
    budget: &EvalBudget,
) -> BatchRun {
    let len = batch.len();
    let workers = parallelism.resolve_for(len).workers.min(len.max(1));
    if workers <= 1 {
        return sweep_compiled_budgeted(batch, kernel, out, budget);
    }
    out.reset(len);
    fill_chunked(
        workers,
        &mut out.values,
        &mut out.rejected,
        &kernel,
        |scratch, index| {
            batch.gather(index, scratch);
        },
        batch.axis_count(),
        budget,
    )
}

/// Reusable sample buffer for [`par_monte_carlo_compiled`]: the raw draws
/// (finite and not) plus the compacted finite subset the statistics are
/// computed over. Reuse one buffer across runs to amortize allocation.
#[derive(Clone, Debug, Default)]
pub struct McBuffer {
    draws: Vec<f64>,
    finite: Vec<f64>,
    /// Reusable structure-of-arrays sample columns for the serial
    /// block-vectorized path ([`monte_carlo_compiled_block_budgeted`]):
    /// one column per axis, refilled per block, so sampling allocates
    /// nothing per point.
    columns: Vec<Vec<f64>>,
}

impl McBuffer {
    /// An empty buffer; the first run sizes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every draw of the last run, in sample order; rejected (non-finite)
    /// draws appear as NaN regardless of whether the model produced NaN or
    /// ±∞.
    #[must_use]
    pub fn draws(&self) -> &[f64] {
        &self.draws
    }
}

/// Deterministic, fault-tolerant Monte-Carlo over a compiled kernel under
/// the default [`Parallelism::Auto`] policy; see
/// [`par_monte_carlo_compiled_with`].
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
pub fn par_monte_carlo_compiled(
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, &mut [f64]) + Sync,
    kernel: impl Fn(&[f64]) -> f64 + Sync,
    buf: &mut McBuffer,
) -> Result<McOutcome, McError> {
    par_monte_carlo_compiled_with(Parallelism::Auto, samples, seed, axes, sampler, kernel, buf)
}

/// Deterministic, fault-tolerant Monte-Carlo over a compiled kernel under
/// an explicit [`Parallelism`] policy.
///
/// Sample `i` gets its own `Rng` seeded with [`mc_sample_seed`]
/// `(seed, i)`; `sampler` draws the point's coordinates into a scratch
/// slice of `axes` slots and `kernel` maps them to a value — together they
/// play the role of the `model` closure in
/// [`par_try_monte_carlo`](crate::par_try_monte_carlo), with identical
/// seed-splitting, so a per-point model decomposed into `(sampler, kernel)`
/// produces the **bit-identical outcome**. Non-finite draws are skipped and
/// counted in sample order; statistics come from
/// the same summarization as every other Monte-Carlo entry point.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
///
/// # Examples
///
/// ```
/// use act_dse::{par_monte_carlo_compiled, par_try_monte_carlo, McBuffer};
///
/// let mut buf = McBuffer::new();
/// let compiled = par_monte_carlo_compiled(
///     2_000, 42, 1,
///     |rng, point| point[0] = rng.gen_range(0.7..1.0),
///     |point| 0.9 * 1370.0 / point[0],
///     &mut buf,
/// )?;
/// let reference = par_try_monte_carlo(2_000, 42, |rng| {
///     let y: f64 = rng.gen_range(0.7..1.0);
///     0.9 * 1370.0 / y
/// })?;
/// assert_eq!(compiled, reference);
/// # Ok::<(), act_dse::McError>(())
/// ```
pub fn par_monte_carlo_compiled_with(
    parallelism: Parallelism,
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, &mut [f64]) + Sync,
    kernel: impl Fn(&[f64]) -> f64 + Sync,
    buf: &mut McBuffer,
) -> Result<McOutcome, McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    buf.draws.clear();
    buf.draws.resize(samples, f64::NAN);
    let draw = |scratch: &mut [f64], index: usize| {
        let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, index as u64));
        sampler(&mut rng, scratch);
    };
    let workers = parallelism.resolve_for(samples).workers.min(samples.max(1));
    if workers <= 1 {
        let mut scratch = vec![0.0; axes];
        for (index, slot) in buf.draws.iter_mut().enumerate() {
            draw(&mut scratch, index);
            let v = kernel(&scratch);
            // Canonicalize non-finite draws to NaN (as `fill_chunked` does)
            // so `draws()` is identical for every thread count; the caller
            // only counts them, so ±∞ and NaN are equivalent.
            *slot = if v.is_finite() { v } else { f64::NAN };
        }
    } else {
        // The rejection log is discarded: the Monte-Carlo contract reports
        // a rejected *count*, not indexed reasons.
        let mut discarded: Vec<RejectedPoint> = Vec::new();
        fill_chunked(
            workers,
            &mut buf.draws,
            &mut discarded,
            &kernel,
            draw,
            axes,
            &EvalBudget::unlimited(),
        );
    }
    buf.finite.clear();
    buf.finite.extend(buf.draws.iter().copied().filter(|v| v.is_finite()));
    let rejected = samples - buf.finite.len();
    if buf.finite.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok(McOutcome { stats: summarize_slice(&mut buf.finite), rejected })
}

/// Budgeted parallel Monte-Carlo over a compiled kernel: draws under a
/// cooperative [`EvalBudget`] and — when the deadline cuts in — summarizes
/// the **chunk-aligned completed prefix** of samples, which seed-splitting
/// makes bit-identical to the same prefix of a serial run. After the call,
/// [`McBuffer::draws`] holds exactly the completed prefix.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] when `samples` is zero or the budget
/// expired before the first chunk completed, and [`McError::AllRejected`]
/// when every completed draw was non-finite.
#[allow(clippy::too_many_arguments)]
pub fn par_monte_carlo_compiled_budgeted(
    parallelism: Parallelism,
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, &mut [f64]) + Sync,
    kernel: impl Fn(&[f64]) -> f64 + Sync,
    buf: &mut McBuffer,
    budget: &EvalBudget,
) -> Result<(McOutcome, BatchRun), McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    let workers = parallelism.resolve_for(samples).workers.min(samples);
    if workers <= 1 {
        return monte_carlo_compiled_budgeted(
            samples, seed, axes, sampler, kernel, buf, budget,
        );
    }
    buf.draws.clear();
    buf.draws.resize(samples, f64::NAN);
    let draw = |scratch: &mut [f64], index: usize| {
        let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, index as u64));
        sampler(&mut rng, scratch);
    };
    let mut discarded: Vec<RejectedPoint> = Vec::new();
    let run =
        fill_chunked(workers, &mut buf.draws, &mut discarded, &kernel, draw, axes, budget);
    let completed = match run {
        BatchRun::Completed => samples,
        BatchRun::DeadlineExceeded { completed } => completed,
    };
    if completed == 0 {
        return Err(McError::NoSamples);
    }
    // `draws()` reports the completed prefix only, like the serial twin.
    buf.draws.truncate(completed);
    buf.finite.clear();
    buf.finite.extend(buf.draws.iter().copied().filter(|v| v.is_finite()));
    let rejected = completed - buf.finite.len();
    if buf.finite.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok((McOutcome { stats: summarize_slice(&mut buf.finite), rejected }, run))
}

// ---------------------------------------------------------------------------
// Block-vectorized path: whole column ranges per kernel call.
//
// The entry points above hand the kernel one gathered point at a time. The
// `_block` twins below hand it a **column range**: the kernel is any
// `Fn(&[&[f64]], Range<usize>, &mut [f64])` that evaluates points
// `range` of a structure-of-arrays column set into an output slice —
// typically `act_core::EvalPlan::eval_block`, which reads the columns
// directly in LANES-wide auto-vectorized blocks with no per-point gather
// or enum dispatch. Skip-and-record, thread-count invariance, and
// seed-splitting semantics are identical to the per-point twins; the only
// contract difference is the budgeted cut-off, which lands on a block
// boundary instead of a point boundary.
// ---------------------------------------------------------------------------

/// Points per budget block on the block-vectorized path. With a deadline
/// the block is the budget's check interval (capped at
/// [`MAX_CHUNK_POINTS`]), so the block path consults the clock exactly as
/// often as the per-point path's [`EvalBudget::check_interval`]; without
/// one, the whole span goes to the kernel in a single call.
fn block_points(budget: &EvalBudget, span: usize) -> usize {
    if budget.deadline.is_some() {
        budget.check_interval.clamp(1, MAX_CHUNK_POINTS)
    } else {
        span.max(1)
    }
}

/// The skip-and-record scan after a block evaluation: canonicalizes
/// non-finite results to NaN and records one [`RejectedPoint`] per
/// offender, with `start` the global index of `slice[0]`. The reason
/// string uses the raw value (±∞ or NaN), byte-identical to the per-point
/// path's.
fn record_non_finite(slice: &mut [f64], start: usize, rejected: &mut Vec<RejectedPoint>) {
    for (offset, slot) in slice.iter_mut().enumerate() {
        let v = *slot;
        if !v.is_finite() {
            *slot = f64::NAN;
            rejected
                .push(RejectedPoint { index: start + offset, reason: non_finite_reason(v) });
        }
    }
}

/// Block-vectorized [`sweep_compiled`]: evaluates the whole batch through a
/// block kernel — `block_kernel(columns, range, out)` fills `out` with the
/// results for points `range` of the structure-of-arrays `columns` — with
/// the same skip-and-record semantics as the per-point path.
///
/// With `act_core::EvalPlan::eval_block` as the kernel, results are
/// bit-for-bit identical to [`sweep_compiled`] over
/// `CompiledFootprint::eval`, just several times faster: no per-point
/// gather, no per-point enum dispatch, lane loops the compiler
/// auto-vectorizes.
///
/// # Examples
///
/// ```
/// use act_dse::{sweep_compiled_block, BatchOutput, PointBatch};
///
/// let batch = PointBatch::single_axis(vec![4.0, 0.0, 1.0]);
/// let mut out = BatchOutput::new();
/// sweep_compiled_block(
///     &batch,
///     |cols, range, out| {
///         for (slot, &x) in out.iter_mut().zip(&cols[0][range]) {
///             *slot = 1.0 / x;
///         }
///     },
///     &mut out,
/// );
/// assert_eq!(out.values()[0], 0.25);
/// assert!(out.values()[1].is_nan()); // 1/0 = inf, rejected
/// assert_eq!(out.rejected()[0].index, 1);
/// ```
pub fn sweep_compiled_block(
    batch: &PointBatch,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]),
    out: &mut BatchOutput,
) {
    let run = sweep_compiled_block_budgeted(batch, block_kernel, out, &EvalBudget::unlimited());
    debug_assert!(run.is_complete(), "an unlimited budget cannot expire");
}

/// [`sweep_compiled_block`] under a cooperative [`EvalBudget`]: evaluates
/// block by block until the budget expires, then stops at a
/// **block-aligned completed prefix** (the block size is the budget's
/// [`check_interval`](EvalBudget::check_interval), so deadline precision
/// matches [`sweep_compiled_budgeted`]). The completed prefix is
/// bit-for-bit identical to an unbudgeted run and untouched slots hold
/// NaN.
pub fn sweep_compiled_block_budgeted(
    batch: &PointBatch,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]),
    out: &mut BatchOutput,
    budget: &EvalBudget,
) -> BatchRun {
    let len = batch.len();
    out.reset(len);
    let columns = batch.column_slices();
    let block = block_points(budget, len);
    let mut start = 0;
    while start < len {
        if budget.deadline.is_some() && budget.is_exhausted() {
            return BatchRun::DeadlineExceeded { completed: start };
        }
        let end = (start + block).min(len);
        block_kernel(&columns, start..end, &mut out.values[start..end]);
        record_non_finite(&mut out.values[start..end], start, &mut out.rejected);
        start = end;
    }
    BatchRun::Completed
}

/// Parallel [`sweep_compiled_block`] under the default
/// [`Parallelism::Auto`] policy. Bit-for-bit identical to the serial block
/// path (and, with an `EvalPlan` kernel, to the per-point path) for any
/// thread count.
pub fn par_sweep_compiled_block(
    batch: &PointBatch,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]) + Sync,
    out: &mut BatchOutput,
) {
    par_sweep_compiled_block_with(Parallelism::Auto, batch, block_kernel, out);
}

/// Parallel [`sweep_compiled_block`] under an explicit [`Parallelism`]
/// policy: the same chunked work-stealing engine as
/// [`par_sweep_compiled_with`], but each stolen ≤[`MAX_CHUNK_POINTS`]-point
/// chunk goes to the block kernel as whole column ranges instead of
/// point-by-point gathers.
pub fn par_sweep_compiled_block_with(
    parallelism: Parallelism,
    batch: &PointBatch,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]) + Sync,
    out: &mut BatchOutput,
) {
    let len = batch.len();
    let workers = parallelism.resolve_for(len).workers.min(len.max(1));
    if workers <= 1 {
        sweep_compiled_block(batch, block_kernel, out);
        return;
    }
    out.reset(len);
    let columns = batch.column_slices();
    let run = fill_chunked_block(
        workers,
        &mut out.values,
        &mut out.rejected,
        &|| (),
        &|_state, range, slice| block_kernel(&columns, range, slice),
        &EvalBudget::unlimited(),
    );
    debug_assert!(run.is_complete(), "an unlimited budget cannot expire");
}

/// Budgeted twin of [`par_sweep_compiled_block_with`]: the block engine
/// under a cooperative [`EvalBudget`], cutting off at a **chunk-aligned
/// completed prefix** exactly like [`par_sweep_compiled_budgeted`] —
/// inside each chunk the budget is consulted on block boundaries, so
/// deadline precision matches the per-point engine.
pub fn par_sweep_compiled_block_budgeted(
    parallelism: Parallelism,
    batch: &PointBatch,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]) + Sync,
    out: &mut BatchOutput,
    budget: &EvalBudget,
) -> BatchRun {
    let len = batch.len();
    let workers = parallelism.resolve_for(len).workers.min(len.max(1));
    if workers <= 1 {
        return sweep_compiled_block_budgeted(batch, block_kernel, out, budget);
    }
    out.reset(len);
    let columns = batch.column_slices();
    fill_chunked_block(
        workers,
        &mut out.values,
        &mut out.rejected,
        &|| (),
        &|_state, range, slice| block_kernel(&columns, range, slice),
        budget,
    )
}

/// Budgeted serial block-vectorized Monte-Carlo: samples **directly into
/// reusable structure-of-arrays columns** ([`McBuffer`] keeps them across
/// runs) and evaluates whole blocks through the block kernel — no
/// per-point scratch, no per-point enum dispatch.
///
/// `sampler(rng, k, columns)` draws point `k`'s coordinate into slot `k`
/// of each axis column, with the RNG seeded per *sample* by
/// [`mc_sample_seed`] exactly like [`monte_carlo_compiled_budgeted`] — the
/// same draws in the same order, so with an `EvalPlan` kernel the outcome
/// is bit-identical to the per-point path for any block size, budget, or
/// thread count.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] when `samples` is zero or the budget
/// expired before the first block, and [`McError::AllRejected`] when every
/// completed draw was non-finite.
pub fn monte_carlo_compiled_block_budgeted(
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, usize, &mut [Vec<f64>]),
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]),
    buf: &mut McBuffer,
    budget: &EvalBudget,
) -> Result<(McOutcome, BatchRun), McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    buf.draws.clear();
    buf.draws.resize(samples, f64::NAN);
    buf.columns.resize(axes, Vec::new());
    buf.columns.truncate(axes);
    let block = block_points(budget, samples);
    let mut run = BatchRun::Completed;
    let mut start = 0;
    while start < samples {
        if budget.deadline.is_some() && budget.is_exhausted() {
            run = BatchRun::DeadlineExceeded { completed: start };
            break;
        }
        let end = (start + block).min(samples);
        let n = end - start;
        for col in &mut buf.columns {
            col.clear();
            col.resize(n, 0.0);
        }
        for k in 0..n {
            let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, (start + k) as u64));
            sampler(&mut rng, k, &mut buf.columns);
        }
        let columns: Vec<&[f64]> = buf.columns.iter().map(Vec::as_slice).collect();
        block_kernel(&columns, 0..n, &mut buf.draws[start..end]);
        // Canonicalize non-finite draws to NaN like every other MC path;
        // the caller only counts rejections, so ±∞ and NaN are equivalent.
        for slot in &mut buf.draws[start..end] {
            if !slot.is_finite() {
                *slot = f64::NAN;
            }
        }
        start = end;
    }
    let completed = match run {
        BatchRun::Completed => samples,
        BatchRun::DeadlineExceeded { completed } => completed,
    };
    if completed == 0 {
        return Err(McError::NoSamples);
    }
    // `draws()` reports the completed prefix only, like the per-point twin.
    buf.draws.truncate(completed);
    buf.finite.clear();
    buf.finite.extend(buf.draws.iter().copied().filter(|v| v.is_finite()));
    let rejected = completed - buf.finite.len();
    if buf.finite.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok((McOutcome { stats: summarize_slice(&mut buf.finite), rejected }, run))
}

/// Block-vectorized [`par_monte_carlo_compiled`] under the default
/// [`Parallelism::Auto`] policy; see
/// [`par_monte_carlo_compiled_block_with`].
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
pub fn par_monte_carlo_compiled_block(
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, usize, &mut [Vec<f64>]) + Sync,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]) + Sync,
    buf: &mut McBuffer,
) -> Result<McOutcome, McError> {
    par_monte_carlo_compiled_block_with(
        Parallelism::Auto,
        samples,
        seed,
        axes,
        sampler,
        block_kernel,
        buf,
    )
}

/// Block-vectorized [`par_monte_carlo_compiled_with`]: every worker keeps
/// its own structure-of-arrays sample columns and evaluates whole blocks
/// through the block kernel. Seed-splitting is per *sample*
/// ([`mc_sample_seed`]), so the outcome is bit-identical to the per-point
/// twin — and invariant under thread count, chunking, and block size.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] if `samples` is zero and
/// [`McError::AllRejected`] if every draw was non-finite.
#[allow(clippy::too_many_arguments)]
pub fn par_monte_carlo_compiled_block_with(
    parallelism: Parallelism,
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, usize, &mut [Vec<f64>]) + Sync,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]) + Sync,
    buf: &mut McBuffer,
) -> Result<McOutcome, McError> {
    let (outcome, run) = par_monte_carlo_compiled_block_budgeted(
        parallelism,
        samples,
        seed,
        axes,
        sampler,
        block_kernel,
        buf,
        &EvalBudget::unlimited(),
    )?;
    debug_assert!(run.is_complete(), "an unlimited budget cannot expire");
    Ok(outcome)
}

/// Budgeted block-vectorized parallel Monte-Carlo: the block engine under
/// a cooperative [`EvalBudget`], summarizing the **chunk-aligned completed
/// prefix** when the deadline cuts in — the same contract as
/// [`par_monte_carlo_compiled_budgeted`]. After the call,
/// [`McBuffer::draws`] holds exactly the completed prefix.
///
/// # Errors
///
/// Returns [`McError::NoSamples`] when `samples` is zero or the budget
/// expired before the first chunk completed, and [`McError::AllRejected`]
/// when every completed draw was non-finite.
#[allow(clippy::too_many_arguments)]
pub fn par_monte_carlo_compiled_block_budgeted(
    parallelism: Parallelism,
    samples: usize,
    seed: u64,
    axes: usize,
    sampler: impl Fn(&mut Rng, usize, &mut [Vec<f64>]) + Sync,
    block_kernel: impl Fn(&[&[f64]], Range<usize>, &mut [f64]) + Sync,
    buf: &mut McBuffer,
    budget: &EvalBudget,
) -> Result<(McOutcome, BatchRun), McError> {
    if samples == 0 {
        return Err(McError::NoSamples);
    }
    let workers = parallelism.resolve_for(samples).workers.min(samples);
    if workers <= 1 {
        return monte_carlo_compiled_block_budgeted(
            samples,
            seed,
            axes,
            sampler,
            block_kernel,
            buf,
            budget,
        );
    }
    buf.draws.clear();
    buf.draws.resize(samples, f64::NAN);
    // The rejection log is discarded: the Monte-Carlo contract reports a
    // rejected *count*, not indexed reasons.
    let mut discarded: Vec<RejectedPoint> = Vec::new();
    let fill = |columns: &mut Vec<Vec<f64>>, range: Range<usize>, out: &mut [f64]| {
        let n = range.len();
        columns.resize(axes, Vec::new());
        for col in columns.iter_mut() {
            col.clear();
            col.resize(n, 0.0);
        }
        for k in 0..n {
            let mut rng = Rng::seed_from_u64(mc_sample_seed(seed, (range.start + k) as u64));
            sampler(&mut rng, k, columns);
        }
        let column_refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        block_kernel(&column_refs, 0..n, out);
    };
    let run =
        fill_chunked_block(workers, &mut buf.draws, &mut discarded, &Vec::new, &fill, budget);
    let completed = match run {
        BatchRun::Completed => samples,
        BatchRun::DeadlineExceeded { completed } => completed,
    };
    if completed == 0 {
        return Err(McError::NoSamples);
    }
    // `draws()` reports the completed prefix only, like the serial twin.
    buf.draws.truncate(completed);
    buf.finite.clear();
    buf.finite.extend(buf.draws.iter().copied().filter(|v| v.is_finite()));
    let rejected = completed - buf.finite.len();
    if buf.finite.is_empty() {
        return Err(McError::AllRejected { rejected });
    }
    Ok((McOutcome { stats: summarize_slice(&mut buf.finite), rejected }, run))
}

/// Upper bound on points per work-stealing chunk: 4096 points are 32 KiB
/// of output — small enough to stay cache-resident per steal, large enough
/// that the per-chunk cursor bump and slot lock are noise. The
/// block-vectorized path shares the bound: a stolen chunk is evaluated as
/// whole column ranges, so it is also the upper bound on points per block
/// kernel call.
const MAX_CHUNK_POINTS: usize = 4096;

/// Points per chunk: at least four chunks per worker (stealing slack for
/// skewed kernels), capped at [`MAX_CHUNK_POINTS`]. Deterministic in
/// `(len, workers)` — though output never depends on the chunking anyway,
/// since every point is computed from its coordinates alone.
#[cfg(feature = "parallel")]
fn chunk_points(len: usize, workers: usize) -> usize {
    len.div_ceil(workers.max(1) * 4).clamp(1, MAX_CHUNK_POINTS)
}

/// The shared chunked-parallel fill: partitions `values` into contiguous
/// chunks, hands chunk indices to the persistent worker pool through an
/// atomic cursor (work stealing), evaluates `kernel` on the point `load`
/// writes into each worker's private scratch slice, and merges per-chunk
/// rejection logs back in chunk order. Panics in workers propagate with
/// their payload after every worker has stopped.
///
/// The [`EvalBudget`] is checked on the same global point-index boundaries
/// as the serial loops; expiry stops every worker at its next check and
/// the function reports a **chunk-aligned completed prefix** (all chunks
/// before the first unfinished one). Slots past the prefix are wiped back
/// to NaN and its rejections dropped, so the caller sees exactly the
/// serial budgeted contract with a coarser cut-off.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn fill_chunked(
    workers: usize,
    values: &mut [f64],
    rejected: &mut Vec<RejectedPoint>,
    kernel: &(impl Fn(&[f64]) -> f64 + Sync),
    load: impl Fn(&mut [f64], usize) + Sync,
    axes: usize,
    budget: &EvalBudget,
) -> BatchRun {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Mutex, PoisonError};

    let len = values.len();
    if len == 0 {
        return BatchRun::Completed;
    }
    let chunk = chunk_points(len, workers);
    let completed_chunks;
    {
        // Each chunk is a `Mutex<Option<&mut [f64]>>` slot its claimer
        // takes exactly once — one uncontended lock per ~4096 points keeps
        // the engine free of `unsafe` while costing well under 0.1 %.
        let slots: Vec<Mutex<Option<&mut [f64]>>> =
            values.chunks_mut(chunk).map(|c| Mutex::new(Some(c))).collect();
        let chunk_count = slots.len();
        let done: Vec<AtomicBool> = (0..chunk_count).map(|_| AtomicBool::new(false)).collect();
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let logs: Mutex<Vec<(usize, Vec<RejectedPoint>)>> = Mutex::new(Vec::new());
        let load = &load;
        crate::pool::run(workers, &|| {
            let mut scratch = vec![0.0; axes];
            let mut local: Vec<(usize, Vec<RejectedPoint>)> = Vec::new();
            'steal: while !stop.load(Ordering::Relaxed) {
                let ci = cursor.fetch_add(1, Ordering::Relaxed);
                if ci >= chunk_count {
                    break;
                }
                let taken = slots[ci].lock().unwrap_or_else(PoisonError::into_inner).take();
                let Some(slice) = taken else { continue };
                let start = ci * chunk;
                let mut chunk_log: Vec<RejectedPoint> = Vec::new();
                for (offset, slot) in slice.iter_mut().enumerate() {
                    let index = start + offset;
                    if budget.exhausted_at(index) {
                        // Leave this chunk unfinished: it marks the end of
                        // the completed prefix. Other workers stop at
                        // their next steal or budget check.
                        stop.store(true, Ordering::Relaxed);
                        continue 'steal;
                    }
                    load(&mut scratch, index);
                    let v = kernel(&scratch);
                    if v.is_finite() {
                        *slot = v;
                    } else {
                        *slot = f64::NAN;
                        chunk_log.push(RejectedPoint { index, reason: non_finite_reason(v) });
                    }
                }
                done[ci].store(true, Ordering::Release);
                if !chunk_log.is_empty() {
                    local.push((ci, chunk_log));
                }
            }
            if !local.is_empty() {
                logs.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
            }
        });
        completed_chunks = done.iter().take_while(|flag| flag.load(Ordering::Acquire)).count();
        let mut merged = logs.into_inner().unwrap_or_else(PoisonError::into_inner);
        merged.sort_unstable_by_key(|&(ci, _)| ci);
        for (ci, chunk_log) in merged {
            if ci < completed_chunks {
                rejected.extend(chunk_log);
            }
        }
        if completed_chunks == chunk_count {
            return BatchRun::Completed;
        }
    }
    // Deadline cut in: wipe everything past the chunk-aligned completed
    // prefix back to NaN (chunks may finish out of order past a gap).
    let completed = (completed_chunks * chunk).min(len);
    for slot in &mut values[completed..] {
        *slot = f64::NAN;
    }
    BatchRun::DeadlineExceeded { completed }
}

/// Serial fallback when the `parallel` feature is disabled: same output,
/// one worker, point-aligned budget cut-off.
#[cfg(not(feature = "parallel"))]
#[allow(clippy::too_many_arguments)]
fn fill_chunked(
    _workers: usize,
    values: &mut [f64],
    rejected: &mut Vec<RejectedPoint>,
    kernel: &(impl Fn(&[f64]) -> f64 + Sync),
    load: impl Fn(&mut [f64], usize) + Sync,
    axes: usize,
    budget: &EvalBudget,
) -> BatchRun {
    let mut scratch = vec![0.0; axes];
    for (index, slot) in values.iter_mut().enumerate() {
        if budget.exhausted_at(index) {
            return BatchRun::DeadlineExceeded { completed: index };
        }
        load(&mut scratch, index);
        let v = kernel(&scratch);
        if v.is_finite() {
            *slot = v;
        } else {
            *slot = f64::NAN;
            rejected.push(RejectedPoint { index, reason: non_finite_reason(v) });
        }
    }
    BatchRun::Completed
}

/// [`fill_chunked`]'s block-vectorized twin: the same chunked
/// work-stealing engine (slot mutexes, atomic chunk cursor, per-chunk logs
/// merged in chunk order, chunk-aligned budget prefix), but each stolen
/// chunk is evaluated through `fill(state, global_range, out_slice)` in
/// whole blocks instead of point-by-point. `make_state` builds one
/// per-worker scratch state (unit for sweeps over borrowed batch columns;
/// reusable sample columns for Monte-Carlo), so workers share nothing
/// mutable.
///
/// Inside a chunk the [`EvalBudget`] is consulted on
/// [`block_points`]-sized boundaries — the per-point engine's
/// check-interval granularity — and expiry leaves the chunk unfinished,
/// producing the identical chunk-aligned completed-prefix contract.
#[cfg(feature = "parallel")]
fn fill_chunked_block<S>(
    workers: usize,
    values: &mut [f64],
    rejected: &mut Vec<RejectedPoint>,
    make_state: &(impl Fn() -> S + Sync),
    fill: &(impl Fn(&mut S, Range<usize>, &mut [f64]) + Sync),
    budget: &EvalBudget,
) -> BatchRun {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Mutex, PoisonError};

    let len = values.len();
    if len == 0 {
        return BatchRun::Completed;
    }
    let chunk = chunk_points(len, workers);
    let block = block_points(budget, chunk);
    let completed_chunks;
    {
        let slots: Vec<Mutex<Option<&mut [f64]>>> =
            values.chunks_mut(chunk).map(|c| Mutex::new(Some(c))).collect();
        let chunk_count = slots.len();
        let done: Vec<AtomicBool> = (0..chunk_count).map(|_| AtomicBool::new(false)).collect();
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let logs: Mutex<Vec<(usize, Vec<RejectedPoint>)>> = Mutex::new(Vec::new());
        crate::pool::run(workers, &|| {
            let mut state = make_state();
            let mut local: Vec<(usize, Vec<RejectedPoint>)> = Vec::new();
            'steal: while !stop.load(Ordering::Relaxed) {
                let ci = cursor.fetch_add(1, Ordering::Relaxed);
                if ci >= chunk_count {
                    break;
                }
                let taken = slots[ci].lock().unwrap_or_else(PoisonError::into_inner).take();
                let Some(slice) = taken else { continue };
                let start = ci * chunk;
                let mut offset = 0;
                while offset < slice.len() {
                    if budget.deadline.is_some() && budget.is_exhausted() {
                        // Leave this chunk unfinished: it marks the end of
                        // the completed prefix. Other workers stop at
                        // their next steal or block boundary.
                        stop.store(true, Ordering::Relaxed);
                        continue 'steal;
                    }
                    let end = (offset + block).min(slice.len());
                    fill(&mut state, start + offset..start + end, &mut slice[offset..end]);
                    offset = end;
                }
                let mut chunk_log: Vec<RejectedPoint> = Vec::new();
                record_non_finite(slice, start, &mut chunk_log);
                done[ci].store(true, Ordering::Release);
                if !chunk_log.is_empty() {
                    local.push((ci, chunk_log));
                }
            }
            if !local.is_empty() {
                logs.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
            }
        });
        completed_chunks = done.iter().take_while(|flag| flag.load(Ordering::Acquire)).count();
        let mut merged = logs.into_inner().unwrap_or_else(PoisonError::into_inner);
        merged.sort_unstable_by_key(|&(ci, _)| ci);
        for (ci, chunk_log) in merged {
            if ci < completed_chunks {
                rejected.extend(chunk_log);
            }
        }
        if completed_chunks == chunk_count {
            return BatchRun::Completed;
        }
    }
    // Deadline cut in: wipe everything past the chunk-aligned completed
    // prefix back to NaN (chunks may finish out of order past a gap, and
    // the cut-off chunk may hold partial blocks).
    let completed = (completed_chunks * chunk).min(len);
    for slot in &mut values[completed..] {
        *slot = f64::NAN;
    }
    BatchRun::DeadlineExceeded { completed }
}

/// Serial fallback when the `parallel` feature is disabled: same output,
/// one worker, block-aligned budget cut-off.
#[cfg(not(feature = "parallel"))]
fn fill_chunked_block<S>(
    _workers: usize,
    values: &mut [f64],
    rejected: &mut Vec<RejectedPoint>,
    make_state: &(impl Fn() -> S + Sync),
    fill: &(impl Fn(&mut S, Range<usize>, &mut [f64]) + Sync),
    budget: &EvalBudget,
) -> BatchRun {
    let len = values.len();
    let mut state = make_state();
    let block = block_points(budget, len);
    let mut start = 0;
    while start < len {
        if budget.deadline.is_some() && budget.is_exhausted() {
            return BatchRun::DeadlineExceeded { completed: start };
        }
        let end = (start + block).min(len);
        fill(&mut state, start..end, &mut values[start..end]);
        record_non_finite(&mut values[start..end], start, rejected);
        start = end;
    }
    BatchRun::Completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::par_try_monte_carlo_with;
    use crate::sweep::par_sweep_finite_with;

    fn kernel(point: &[f64]) -> f64 {
        1.0 / point[0]
    }

    #[test]
    fn batch_construction_and_gather() {
        let batch = PointBatch::from_columns(vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.axis_count(), 2);
        assert_eq!(batch.column(1), &[10.0, 20.0, 30.0]);
        let mut point = [0.0; 2];
        batch.gather(2, &mut point);
        assert_eq!(point, [3.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn empty_batch_rejected() {
        let _ = PointBatch::from_columns(Vec::new());
    }

    #[test]
    #[should_panic(expected = "column 0 has")]
    fn ragged_batch_rejected() {
        let _ = PointBatch::from_columns(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn serial_sweep_matches_per_point_path() {
        let params = vec![4.0, 0.0, -2.0, f64::NAN, 1.0];
        let reference = par_sweep_finite_with(Parallelism::Serial, params.clone(), kernel_ref);
        let batch = PointBatch::single_axis(params);
        let mut out = BatchOutput::new();
        sweep_compiled(&batch, kernel, &mut out);
        assert_eq!(out.rejected(), &reference.rejected[..]);
        let mut finite = out.values().iter().copied().filter(|v| v.is_finite());
        for (_, expected) in &reference.results {
            assert_eq!(finite.next().unwrap().to_bits(), expected.to_bits());
        }
        assert!(finite.next().is_none());
    }

    fn kernel_ref(x: &f64) -> f64 {
        1.0 / x
    }

    #[test]
    fn parallel_sweep_is_thread_count_invariant() {
        let params: Vec<f64> = (0..1000).map(|i| f64::from(i) - 500.0).collect();
        let batch = PointBatch::single_axis(params);
        let mut serial = BatchOutput::new();
        sweep_compiled(&batch, kernel, &mut serial);
        for threads in [2usize, 3, 8] {
            let mut parallel = BatchOutput::new();
            par_sweep_compiled_with(
                Parallelism::threads(threads),
                &batch,
                kernel,
                &mut parallel,
            );
            assert_eq!(parallel.rejected(), serial.rejected());
            assert_eq!(parallel.values().len(), serial.values().len());
            for (a, b) in parallel.values().iter().zip(serial.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn rejected_slots_are_nan_and_ordered() {
        let batch = PointBatch::single_axis(vec![1.0, 0.0, 2.0, 0.0]);
        let mut out = BatchOutput::new();
        par_sweep_compiled_with(Parallelism::threads(4), &batch, kernel, &mut out);
        assert!(out.values()[1].is_nan() && out.values()[3].is_nan());
        assert_eq!(out.rejected().iter().map(|r| r.index).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(out.rejected()[0].reason, "model produced a non-finite result (inf)");
        assert!(!out.is_clean());
        assert_eq!(out.rejected_count(), 2);
    }

    #[test]
    fn buffer_reuse_resets_state() {
        let mut out = BatchOutput::new();
        sweep_compiled(&PointBatch::single_axis(vec![0.0, 0.0]), kernel, &mut out);
        assert_eq!(out.rejected_count(), 2);
        sweep_compiled(&PointBatch::single_axis(vec![1.0]), kernel, &mut out);
        assert_eq!(out.rejected_count(), 0);
        assert_eq!(out.values(), &[1.0]);
        out.clear();
        assert!(out.values().is_empty() && out.is_clean());
    }

    #[test]
    fn empty_batch_sweeps_cleanly() {
        let batch = PointBatch::single_axis(Vec::new());
        let mut out = BatchOutput::new();
        par_sweep_compiled_with(Parallelism::threads(8), &batch, kernel, &mut out);
        assert!(out.values().is_empty());
        assert!(out.is_clean());
    }

    #[test]
    fn mc_compiled_matches_per_point_monte_carlo() {
        let model = |rng: &mut Rng| {
            let y: f64 = rng.gen_range(-0.1..1.0);
            1370.0 / y.max(0.0)
        };
        let mut buf = McBuffer::new();
        for threads in [1usize, 2, 8] {
            let compiled = par_monte_carlo_compiled_with(
                Parallelism::threads(threads),
                2_000,
                13,
                1,
                |rng, point| point[0] = rng.gen_range(-0.1..1.0),
                |point| 1370.0 / point[0].max(0.0),
                &mut buf,
            )
            .unwrap();
            let reference =
                par_try_monte_carlo_with(Parallelism::Serial, 2_000, 13, model).unwrap();
            assert_eq!(compiled, reference);
            assert!(compiled.rejected > 0);
        }
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_sweep_bitwise() {
        let batch = PointBatch::single_axis(vec![4.0, 0.0, -2.0, f64::NAN, 1.0]);
        let mut plain = BatchOutput::new();
        sweep_compiled(&batch, kernel, &mut plain);
        let mut budgeted = BatchOutput::new();
        let run =
            sweep_compiled_budgeted(&batch, kernel, &mut budgeted, &EvalBudget::unlimited());
        assert_eq!(run, BatchRun::Completed);
        assert!(run.is_complete());
        assert_eq!(budgeted.rejected(), plain.rejected());
        for (a, b) in budgeted.values().iter().zip(plain.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn expired_budget_stops_before_the_first_point() {
        let deadline = Instant::now() - std::time::Duration::from_millis(1);
        let batch = PointBatch::single_axis(vec![1.0, 2.0, 3.0]);
        let mut out = BatchOutput::new();
        let run = sweep_compiled_budgeted(
            &batch,
            kernel,
            &mut out,
            &EvalBudget::with_deadline(deadline).check_every(1),
        );
        assert_eq!(run, BatchRun::DeadlineExceeded { completed: 0 });
        assert!(out.values().iter().all(|v| v.is_nan()));
        assert!(out.is_clean(), "cut-off points must not be recorded as rejections");
    }

    #[test]
    fn mid_run_expiry_keeps_a_bitwise_identical_prefix() {
        // A kernel that burns the clock past the deadline on point 2, with
        // the check interval at 1 so the cut-off lands exactly on point 3.
        let deadline = Instant::now() + std::time::Duration::from_millis(100);
        let slow = |p: &[f64]| {
            if p[0] == 2.0 {
                while Instant::now() < deadline + std::time::Duration::from_millis(1) {
                    std::hint::spin_loop();
                }
            }
            1.0 / p[0]
        };
        let batch = PointBatch::single_axis(vec![4.0, 0.0, 2.0, 8.0, 16.0]);
        let mut out = BatchOutput::new();
        let run = sweep_compiled_budgeted(
            &batch,
            slow,
            &mut out,
            &EvalBudget::with_deadline(deadline).check_every(1),
        );
        assert_eq!(run, BatchRun::DeadlineExceeded { completed: 3 });
        let mut reference = BatchOutput::new();
        sweep_compiled(&batch, kernel, &mut reference);
        for (i, (got, want)) in out.values()[..3].iter().zip(reference.values()).enumerate() {
            assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "prefix diverged at {i}"
            );
        }
        assert!(out.values()[3].is_nan() && out.values()[4].is_nan());
        // The rejection log covers only the completed prefix (point 1).
        assert_eq!(out.rejected().iter().map(|r| r.index).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn budget_check_interval_clamps_and_reports() {
        assert_eq!(
            EvalBudget::unlimited().check_interval(),
            EvalBudget::DEFAULT_CHECK_INTERVAL
        );
        assert_eq!(EvalBudget::unlimited().check_every(0).check_interval(), 1);
        assert!(!EvalBudget::unlimited().is_exhausted());
    }

    #[test]
    fn budgeted_mc_completes_like_the_parallel_path() {
        let mut buf = McBuffer::new();
        let sampler = |rng: &mut Rng, point: &mut [f64]| point[0] = rng.gen_range(-0.1..1.0);
        let mc_kernel = |point: &[f64]| 1370.0 / point[0].max(0.0);
        let (outcome, run) = monte_carlo_compiled_budgeted(
            2_000,
            13,
            1,
            sampler,
            mc_kernel,
            &mut buf,
            &EvalBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(run, BatchRun::Completed);
        let mut reference_buf = McBuffer::new();
        let reference = par_monte_carlo_compiled_with(
            Parallelism::Serial,
            2_000,
            13,
            1,
            sampler,
            mc_kernel,
            &mut reference_buf,
        )
        .unwrap();
        assert_eq!(outcome, reference);
    }

    #[test]
    fn budgeted_mc_summarizes_the_completed_prefix() {
        let mut buf = McBuffer::new();
        let sampler = |rng: &mut Rng, point: &mut [f64]| point[0] = rng.gen_range(0.5..1.0);
        let mc_kernel = |point: &[f64]| point[0];
        // Deadline already passed: zero draws complete -> NoSamples.
        let expired =
            EvalBudget::with_deadline(Instant::now() - std::time::Duration::from_millis(1))
                .check_every(1);
        assert_eq!(
            monte_carlo_compiled_budgeted(100, 7, 1, sampler, mc_kernel, &mut buf, &expired),
            Err(McError::NoSamples)
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn chunk_sizing_has_stealing_slack_and_cache_cap() {
        // Small batches: at least one point per chunk, ≥ 4 chunks/worker.
        assert_eq!(chunk_points(4, 4), 1);
        assert_eq!(chunk_points(1000, 2), 125);
        // Large batches cap at the cache-friendly maximum.
        assert_eq!(chunk_points(1_000_000, 8), MAX_CHUNK_POINTS);
        // Degenerate worker counts never panic or return zero.
        assert!(chunk_points(10, 0) >= 1);
        assert!(chunk_points(0, 3) >= 1);
    }

    #[test]
    fn budgeted_parallel_sweep_matches_serial_bitwise_when_unlimited() {
        let params: Vec<f64> = (0..5000).map(|i| f64::from(i) - 2500.0).collect();
        let batch = PointBatch::single_axis(params);
        let mut serial = BatchOutput::new();
        sweep_compiled(&batch, kernel, &mut serial);
        for threads in [2usize, 3, 8] {
            let mut parallel = BatchOutput::new();
            let run = par_sweep_compiled_budgeted(
                Parallelism::threads(threads),
                &batch,
                kernel,
                &mut parallel,
                &EvalBudget::unlimited(),
            );
            assert_eq!(run, BatchRun::Completed);
            assert_eq!(parallel.rejected(), serial.rejected());
            for (a, b) in parallel.values().iter().zip(serial.values()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn budgeted_parallel_sweep_reports_an_empty_prefix_when_expired() {
        let deadline = Instant::now() - std::time::Duration::from_millis(1);
        let batch = PointBatch::single_axis((0..500).map(f64::from).collect());
        let mut out = BatchOutput::new();
        let run = par_sweep_compiled_budgeted(
            Parallelism::threads(4),
            &batch,
            kernel,
            &mut out,
            &EvalBudget::with_deadline(deadline).check_every(1),
        );
        assert_eq!(run, BatchRun::DeadlineExceeded { completed: 0 });
        assert!(out.values().iter().all(|v| v.is_nan()));
        assert!(out.is_clean(), "cut-off points must not be recorded as rejections");
    }

    #[test]
    fn budgeted_parallel_sweep_prefix_is_chunk_aligned_and_bitwise() {
        // A deadline that expires mid-run: whatever prefix completes must
        // be bitwise identical to the serial sweep, NaN after it, and the
        // rejection log confined to the prefix.
        let deadline = Instant::now() + std::time::Duration::from_micros(200);
        let params: Vec<f64> = (0..20_000).map(|i| f64::from(i) - 10_000.0).collect();
        let batch = PointBatch::single_axis(params);
        let mut reference = BatchOutput::new();
        sweep_compiled(&batch, kernel, &mut reference);
        let mut out = BatchOutput::new();
        let slow = |p: &[f64]| std::hint::black_box(kernel(p));
        let run = par_sweep_compiled_budgeted(
            Parallelism::threads(4),
            &batch,
            slow,
            &mut out,
            &EvalBudget::with_deadline(deadline).check_every(64),
        );
        let completed = match run {
            BatchRun::Completed => batch.len(),
            BatchRun::DeadlineExceeded { completed } => completed,
        };
        for (i, (got, want)) in
            out.values()[..completed].iter().zip(reference.values()).enumerate()
        {
            assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "prefix diverged at {i}"
            );
        }
        assert!(out.values()[completed..].iter().all(|v| v.is_nan()));
        assert!(out.rejected().iter().all(|r| r.index < completed));
    }

    #[test]
    fn budgeted_parallel_mc_completes_like_the_serial_twin() {
        let sampler = |rng: &mut Rng, point: &mut [f64]| point[0] = rng.gen_range(-0.1..1.0);
        let mc_kernel = |point: &[f64]| 1370.0 / point[0].max(0.0);
        let mut serial_buf = McBuffer::new();
        let (serial, _) = monte_carlo_compiled_budgeted(
            2_000,
            13,
            1,
            sampler,
            mc_kernel,
            &mut serial_buf,
            &EvalBudget::unlimited(),
        )
        .unwrap();
        for threads in [2usize, 8] {
            let mut buf = McBuffer::new();
            let (outcome, run) = par_monte_carlo_compiled_budgeted(
                Parallelism::threads(threads),
                2_000,
                13,
                1,
                sampler,
                mc_kernel,
                &mut buf,
                &EvalBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(run, BatchRun::Completed);
            assert_eq!(outcome, serial);
            assert_eq!(buf.draws().len(), serial_buf.draws().len());
        }
    }

    #[test]
    fn budgeted_parallel_mc_reports_no_samples_when_expired() {
        let mut buf = McBuffer::new();
        let sampler = |rng: &mut Rng, point: &mut [f64]| point[0] = rng.gen_range(0.5..1.0);
        let mc_kernel = |point: &[f64]| point[0];
        let expired =
            EvalBudget::with_deadline(Instant::now() - std::time::Duration::from_millis(1))
                .check_every(1);
        assert_eq!(
            par_monte_carlo_compiled_budgeted(
                Parallelism::threads(4),
                100,
                7,
                1,
                sampler,
                mc_kernel,
                &mut buf,
                &expired
            )
            .map(|(outcome, _)| outcome),
            Err(McError::NoSamples)
        );
    }

    #[test]
    fn mc_compiled_reports_degenerate_runs() {
        let mut buf = McBuffer::new();
        let sampler = |_: &mut Rng, point: &mut [f64]| point[0] = 0.0;
        assert_eq!(
            par_monte_carlo_compiled(0, 0, 1, sampler, kernel, &mut buf),
            Err(McError::NoSamples)
        );
        assert_eq!(
            par_monte_carlo_compiled(10, 0, 1, sampler, kernel, &mut buf),
            Err(McError::AllRejected { rejected: 10 })
        );
        assert_eq!(buf.draws().len(), 10);
        assert!(buf.draws().iter().all(|v| v.is_nan()));
    }
}
