//! Deterministic thread-parallel evaluation primitives.
//!
//! The engine runs on the crate's persistent worker pool (`pool` module) —
//! no external thread-pool dependency — so `act-dse` stays embeddable and
//! dependency-light, and steady-state dispatch costs a lock round-trip
//! instead of spawning OS threads per call. Work is handed out through an
//! atomic index (dynamic load balancing for skewed models), each worker
//! collects `(index, result)` pairs, and the merged results are returned
//! in **input order**: parallel evaluation is observationally identical to
//! the serial loop for any pure model.
//!
//! Thread count is a [`Parallelism`] policy: `Serial` (no threads at all),
//! `Auto` (the `ACT_THREADS` environment variable, else every available
//! core) or an explicit `Threads(n)`. For batch work whose size is known,
//! [`Parallelism::resolve_for`] additionally consults a one-shot
//! [`Calibration`] — measured pool-dispatch overhead vs. per-point kernel
//! cost, overridable via `ACT_PAR_THRESHOLD` — and falls back to serial
//! below the measured break-even batch size, so `Auto` never pays dispatch
//! overhead on batches too small to amortize it. The whole module compiles
//! with the `parallel` cargo feature disabled too — every `par_*` entry
//! point then degrades to the serial loop, so downstream code never needs
//! `cfg` guards.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Thread-count policy for the `par_*` evaluation primitives.
///
/// # Examples
///
/// ```
/// use act_dse::Parallelism;
///
/// assert_eq!(Parallelism::Serial.worker_count(), 1);
/// assert!(Parallelism::Auto.worker_count() >= 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Parallelism {
    /// One worker on the calling thread: no threads are spawned and
    /// evaluation order matches the serial loop exactly.
    Serial,
    /// Honors the `ACT_THREADS` environment variable when it parses as a
    /// positive integer, else uses the machine's available parallelism.
    #[default]
    Auto,
    /// Exactly this many workers.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// Resolves the policy to a concrete worker count (always ≥ 1).
    ///
    /// Equivalent to [`Parallelism::resolve`] with the warning discarded;
    /// use `resolve` when a rejected `ACT_THREADS` value should be
    /// surfaced to the user instead of silently falling back.
    #[must_use]
    pub fn worker_count(self) -> usize {
        self.resolve().0
    }

    /// Resolves the policy to a concrete worker count (always ≥ 1),
    /// reporting whether an `ACT_THREADS` override was **ignored**.
    ///
    /// `Serial` and `Threads(n)` never warn. `Auto` warns exactly when the
    /// `ACT_THREADS` environment variable is set but unusable (empty,
    /// non-numeric, zero, or too large for `usize`); the returned count is
    /// then the machine default, and the [`ThreadsWarning`] says what was
    /// rejected and why so callers can tell the user rather than silently
    /// running on a different thread count than they asked for.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_dse::Parallelism;
    ///
    /// let (workers, warning) = Parallelism::Serial.resolve();
    /// assert_eq!((workers, warning), (1, None));
    /// ```
    #[must_use]
    pub fn resolve(self) -> (usize, Option<ThreadsWarning>) {
        let detail = self.resolve_detailed();
        (detail.workers, detail.warning)
    }

    /// Resolves the policy to a concrete worker count **and says where the
    /// number came from** — the observability hook behind the `threads` /
    /// `threads_source` fields in `act bench-sweep` JSON, added after a
    /// bench record shipped with a silently-1× "parallel" speedup and
    /// nothing in the output explained why (the host had one core).
    ///
    /// # Examples
    ///
    /// ```
    /// use act_dse::{Parallelism, ThreadsSource};
    ///
    /// let detail = Parallelism::Serial.resolve_detailed();
    /// assert_eq!(detail.workers, 1);
    /// assert_eq!(detail.source, ThreadsSource::Policy);
    /// assert!(detail.machine >= 1);
    /// ```
    #[must_use]
    pub fn resolve_detailed(self) -> ResolvedParallelism {
        let machine = machine_parallelism();
        let unconditional = |workers, source, warning| ResolvedParallelism {
            workers,
            source,
            machine,
            warning,
            decision: BatchDecision::Unconditional,
        };
        match self {
            Self::Serial => unconditional(1, ThreadsSource::Policy, None),
            Self::Threads(n) => unconditional(n.get(), ThreadsSource::Policy, None),
            Self::Auto => match env_threads() {
                Ok(Some(n)) => unconditional(n, ThreadsSource::Env, None),
                Ok(None) => unconditional(machine, ThreadsSource::Machine, None),
                Err(warning) => unconditional(machine, ThreadsSource::Machine, Some(warning)),
            },
        }
    }

    /// Resolves the policy for a batch of `len` points, applying the
    /// break-even [`Calibration`] when the policy is a pure machine-default
    /// `Auto`: batches below the calibrated threshold resolve to **one
    /// worker** (serial), because pool-dispatch overhead would exceed the
    /// parallel win. Explicit policies — `Serial`, `Threads(n)`, and a
    /// valid `ACT_THREADS` override — bypass the threshold entirely; the
    /// user asked for a specific worker count and gets it.
    ///
    /// The outcome is recorded in [`ResolvedParallelism::decision`] so bench
    /// records and service logs can show *why* a sweep ran serial.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_dse::{BatchDecision, Parallelism};
    ///
    /// // Explicit policies never consult the calibration.
    /// let detail = Parallelism::threads(4).resolve_for(10);
    /// assert_eq!(detail.workers, 4);
    /// assert_eq!(detail.decision, BatchDecision::Unconditional);
    /// ```
    #[must_use]
    pub fn resolve_for(self, len: usize) -> ResolvedParallelism {
        let mut detail = self.resolve_detailed();
        if matches!(self, Self::Auto)
            && detail.source == ThreadsSource::Machine
            && detail.workers > 1
        {
            let threshold = calibration().threshold_points;
            if len < threshold {
                detail.workers = 1;
                detail.decision = BatchDecision::SerialBelowThreshold { threshold };
            } else {
                detail.decision = BatchDecision::ParallelAboveThreshold { threshold };
            }
        }
        detail
    }

    /// Convenience constructor clamping `n` up to 1, for callers holding a
    /// plain `usize` (e.g. parsed CLI input).
    #[must_use]
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Self::Threads(n),
            None => Self::Serial,
        }
    }
}

/// A fully resolved [`Parallelism`] policy: the worker count, where it came
/// from, and what the machine itself reports — enough for a bench record or
/// service log to explain an unexpected 1× speedup instead of hiding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedParallelism {
    /// The concrete worker count (always ≥ 1).
    pub workers: usize,
    /// What decided `workers`.
    pub source: ThreadsSource,
    /// What [`machine_parallelism`] reports, regardless of `source`.
    pub machine: usize,
    /// A rejected `ACT_THREADS` override, when one was ignored.
    pub warning: Option<ThreadsWarning>,
    /// The break-even outcome when resolved through
    /// [`Parallelism::resolve_for`]; [`BatchDecision::Unconditional`] for
    /// plain [`Parallelism::resolve_detailed`] and explicit policies.
    pub decision: BatchDecision,
}

/// The break-even outcome of a length-aware [`Parallelism::resolve_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchDecision {
    /// No threshold was consulted: an explicit policy, an `ACT_THREADS`
    /// override, a single-core host, or a plain length-independent resolve.
    Unconditional,
    /// `Auto` dispatched in parallel: the batch cleared the calibrated
    /// break-even threshold.
    ParallelAboveThreshold {
        /// The threshold that was cleared, in points.
        threshold: usize,
    },
    /// `Auto` fell back to serial: the batch was below the calibrated
    /// break-even threshold, so dispatch overhead would exceed the win.
    SerialBelowThreshold {
        /// The threshold that was not met, in points.
        threshold: usize,
    },
}

impl BatchDecision {
    /// Stable lower-case name for machine-readable output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Unconditional => "unconditional",
            Self::ParallelAboveThreshold { .. } => "parallel",
            Self::SerialBelowThreshold { .. } => "serial-below-threshold",
        }
    }
}

/// The process-wide break-even calibration consulted by
/// [`Parallelism::resolve_for`]: the minimum batch size (in points) at
/// which a machine-default `Auto` dispatches in parallel.
///
/// Resolution order, decided once per process and cached:
///
/// 1. `ACT_PAR_THRESHOLD` — a non-negative integer forces the threshold
///    (`0` means "always parallel"); invalid values are ignored.
/// 2. Single-core hosts (or the `parallel` feature compiled out) pin the
///    threshold to `usize::MAX`: parallel can never win.
/// 3. Otherwise a one-shot microcalibration measures pool-dispatch
///    overhead against a reference kernel's per-point cost and picks the
///    break-even batch size with a 2× safety margin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Calibration {
    /// Minimum batch length for a parallel `Auto` dispatch.
    pub threshold_points: usize,
    /// Where the threshold came from.
    pub source: CalibrationSource,
}

/// Where a [`Calibration`] threshold came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CalibrationSource {
    /// A valid `ACT_PAR_THRESHOLD` environment override.
    Env,
    /// The one-shot dispatch-vs-kernel microcalibration.
    Measured,
    /// A single-core host (or the `parallel` feature compiled out):
    /// parallel dispatch can never win, threshold is `usize::MAX`.
    SingleCore,
}

impl CalibrationSource {
    /// Stable lower-case name for machine-readable output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Env => "env",
            Self::Measured => "measured",
            Self::SingleCore => "single-core",
        }
    }
}

impl act_json::ToJson for Calibration {
    /// `{"threshold_points": <points|null>, "source": "<name>"}` — the one
    /// shape shared by `act bench-sweep` records, `cargo xtask bench`
    /// gates, and `act-server` trailers.
    ///
    /// The single-core pin `usize::MAX` means "unbounded: parallel can
    /// never win" and has no faithful JSON integer form — through an `f64`
    /// it would print as the garbage integer `18446744073709552000` — so
    /// an unbounded threshold serializes as `null` (`"source":
    /// "single-core"` already says why).
    fn to_json(&self) -> act_json::JsonValue {
        let threshold = if self.threshold_points == usize::MAX {
            act_json::JsonValue::Null
        } else {
            act_json::ToJson::to_json(&self.threshold_points)
        };
        act_json::JsonValue::Object(
            act_json::JsonObject::new()
                .with("threshold_points", threshold)
                .with("source", act_json::ToJson::to_json(self.source.as_str())),
        )
    }
}

/// The cached process-wide [`Calibration`]. The first call on a multi-core
/// host without an `ACT_PAR_THRESHOLD` override runs the microcalibration
/// (well under a millisecond); every later call is a load.
#[must_use]
pub fn calibration() -> Calibration {
    static CALIBRATION: OnceLock<Calibration> = OnceLock::new();
    *CALIBRATION.get_or_init(calibrate)
}

fn calibrate() -> Calibration {
    if let Some(threshold_points) = env_par_threshold() {
        return Calibration { threshold_points, source: CalibrationSource::Env };
    }
    if machine_parallelism() <= 1 {
        return Calibration {
            threshold_points: usize::MAX,
            source: CalibrationSource::SingleCore,
        };
    }
    Calibration { threshold_points: measure_threshold(), source: CalibrationSource::Measured }
}

/// The `ACT_PAR_THRESHOLD` override, `None` when unset or unusable.
fn env_par_threshold() -> Option<usize> {
    match std::env::var("ACT_PAR_THRESHOLD") {
        Ok(raw) => parse_par_threshold(&raw),
        Err(_) => None,
    }
}

/// Pure parser behind [`env_par_threshold`], split out for tests (same
/// rationale as [`parse_threads`]). Unlike `ACT_THREADS`, `0` is valid
/// here — it means "no threshold, always dispatch in parallel".
fn parse_par_threshold(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// Measures the break-even batch size: pool-dispatch overhead divided by
/// the per-point serial win of going parallel, with a 2× safety margin so
/// borderline batches stay serial. The reference kernel approximates the
/// flop mix of a compiled footprint point; callers with much heavier
/// kernels can lower `ACT_PAR_THRESHOLD`, much lighter ones raise it.
#[cfg(feature = "parallel")]
fn measure_threshold() -> usize {
    let workers = machine_parallelism();
    let overhead = crate::pool::measure_dispatch_overhead(workers, 16);
    // Per-point cost of the reference kernel, serial, best of 3 runs.
    const POINTS: usize = 65_536;
    let mut per_point_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let mut acc = 0.0f64;
        for i in 0..POINTS {
            acc += reference_kernel(i as f64);
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        // Keep `acc` observable so the loop cannot be optimized away.
        std::hint::black_box(acc);
        per_point_ns = per_point_ns.min(elapsed / POINTS as f64);
    }
    // Parallel wins when n·c − n·c/w > overhead, i.e. beyond
    // n = overhead / (c · (1 − 1/w)); double it for a safety margin.
    let w = workers as f64;
    let efficiency = 1.0 - 1.0 / w;
    let overhead_ns = overhead.as_nanos() as f64;
    let break_even = (2.0 * overhead_ns) / (per_point_ns.max(0.1) * efficiency.max(0.1));
    // Clamp to sane bounds: never parallelize truly tiny batches, never
    // refuse batches big enough that any real overhead is amortized.
    break_even.clamp(512.0, 1_048_576.0) as usize
}

#[cfg(not(feature = "parallel"))]
fn measure_threshold() -> usize {
    usize::MAX
}

/// A few flops approximating one compiled-footprint evaluation.
#[cfg(feature = "parallel")]
#[inline]
fn reference_kernel(x: f64) -> f64 {
    let a = x.mul_add(1.000_000_119, 0.5);
    let b = a.mul_add(a, x) + 1.0;
    b / (a.abs() + 1.0) + (a * b).abs().sqrt()
}

/// Where a resolved worker count came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ThreadsSource {
    /// An explicit policy: `Serial` or `Threads(n)`.
    Policy,
    /// A valid `ACT_THREADS` environment override.
    Env,
    /// The machine's available parallelism (the `Auto` default).
    Machine,
}

impl ThreadsSource {
    /// Stable lower-case name for machine-readable output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Policy => "policy",
            Self::Env => "env",
            Self::Machine => "machine",
        }
    }
}

/// The host's available parallelism as the engine sees it: what
/// [`std::thread::available_parallelism`] reports (which honors cgroup and
/// affinity limits), clamped to 1 when the call fails, and 1 whenever the
/// `parallel` feature is compiled out.
#[must_use]
pub fn machine_parallelism() -> usize {
    default_threads()
}

/// A set-but-unusable `ACT_THREADS` value, reported by
/// [`Parallelism::resolve`] so the rejection is observable instead of a
/// silent fallback to the machine default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadsWarning {
    /// The raw `ACT_THREADS` value that was rejected, verbatim.
    pub raw: String,
    /// Why it was rejected.
    pub reason: ThreadsWarningReason,
}

/// Why an `ACT_THREADS` value was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ThreadsWarningReason {
    /// The variable was set but empty or whitespace-only.
    Empty,
    /// The value did not parse as a base-10 unsigned integer (this
    /// includes values too large for `usize`).
    NotAPositiveInteger,
    /// The value parsed as `0`, which is not a valid worker count.
    Zero,
}

impl std::fmt::Display for ThreadsWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let detail = match self.reason {
            ThreadsWarningReason::Empty => "it is empty",
            ThreadsWarningReason::NotAPositiveInteger => "it is not a positive integer",
            ThreadsWarningReason::Zero => "a worker count must be at least 1",
        };
        write!(f, "ignoring ACT_THREADS={:?} ({detail}); using the machine default", self.raw)
    }
}

impl std::error::Error for ThreadsWarning {}

/// The `ACT_THREADS` override: `Ok(Some(n))` forces `n` workers,
/// `Ok(None)` means the variable is unset (or not unicode), `Err` means it
/// is set but unusable.
fn env_threads() -> Result<Option<usize>, ThreadsWarning> {
    match std::env::var("ACT_THREADS") {
        Ok(raw) => parse_threads(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

/// Pure parser behind [`env_threads`], split out so the rejection cases
/// are testable without touching process-global environment state (which
/// would race under the parallel test harness).
fn parse_threads(raw: &str) -> Result<usize, ThreadsWarning> {
    let reject = |reason| ThreadsWarning { raw: raw.to_owned(), reason };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(reject(ThreadsWarningReason::Empty));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(reject(ThreadsWarningReason::Zero)),
        Ok(n) => Ok(n),
        Err(_) => Err(reject(ThreadsWarningReason::NotAPositiveInteger)),
    }
}

#[cfg(feature = "parallel")]
fn default_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

#[cfg(not(feature = "parallel"))]
fn default_threads() -> usize {
    1
}

/// Applies `f(index, item)` to every element of a conceptual range
/// `0..len`, in parallel, returning results in index order.
///
/// This is the engine under [`par_map_ordered`] and the `par_*` sweep and
/// Monte-Carlo entry points; it is public so model code can parallelize
/// index-driven work (e.g. per-sample seeding) without materializing an
/// input slice.
///
/// A panicking `f` propagates its payload to the caller after every worker
/// has stopped, matching the serial loop's failure mode.
///
/// # Examples
///
/// ```
/// use act_dse::{par_map_range, Parallelism};
///
/// let squares = par_map_range(Parallelism::Auto, 5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map_range<R, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = parallelism.worker_count().min(len.max(1));
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    par_map_threaded(workers, len, &f)
}

/// Applies `f(index, &item)` to every element of `items`, in parallel,
/// returning results in input order.
///
/// # Examples
///
/// ```
/// use act_dse::{par_map_ordered, Parallelism};
///
/// let doubled = par_map_ordered(Parallelism::Auto, &[1, 2, 3], |_, x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map_ordered<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(parallelism, items.len(), |index| f(index, &items[index]))
}

#[cfg(feature = "parallel")]
fn par_map_threaded<R, F>(workers: usize, len: usize, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, PoisonError};

    let next = AtomicUsize::new(0);
    let buckets: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::with_capacity(workers));
    // Dispatch onto the persistent pool: the caller plus `workers - 1`
    // pool threads each run this work-stealing loop until the shared
    // cursor drains. A panicking `f` propagates out of `pool::run` after
    // every participant has stopped, matching the serial failure mode.
    crate::pool::run(workers, &|| {
        let mut local = Vec::new();
        loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= len {
                break;
            }
            local.push((index, f(index)));
        }
        if !local.is_empty() {
            buckets.lock().unwrap_or_else(PoisonError::into_inner).push(local);
        }
    });
    let buckets = buckets.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut indexed: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    indexed.sort_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(not(feature = "parallel"))]
fn par_map_threaded<R, F>(_workers: usize, len: usize, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    (0..len).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four() -> Parallelism {
        Parallelism::threads(4)
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map_ordered(Parallelism::Serial, &items, |_, x| x * 3);
        let parallel = par_map_ordered(four(), &items, |_, x| x * 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[17], 51);
    }

    #[test]
    fn skewed_workloads_still_order_correctly() {
        // Later items finish first; ordering must still hold.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_ordered(four(), &items, |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            *x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_ordered(four(), &empty, |_, x| *x).is_empty());
        assert_eq!(par_map_range(four(), 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_ordered(four(), &[9], |_, x| *x + 1), vec![10]);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::threads(6).worker_count(), 6);
        assert_eq!(Parallelism::threads(0).worker_count(), 1);
        assert!(Parallelism::Auto.worker_count() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    /// Regression test for the pr5-hermetic bench mystery (`act all`
    /// speedup ≈1×): `Auto` must resolve to the machine's full available
    /// parallelism — in particular **more than one worker on a multi-core
    /// host** — unless a valid `ACT_THREADS` override says otherwise. On a
    /// genuinely single-core host (as the pr5 bench machine turned out to
    /// be) the correct resolution is 1 and the source still says why.
    #[test]
    fn auto_resolves_to_machine_parallelism() {
        let detail = Parallelism::Auto.resolve_detailed();
        assert!(detail.workers >= 1);
        assert_eq!(detail.machine, machine_parallelism());
        match std::env::var("ACT_THREADS") {
            Ok(raw) => match parse_threads(&raw) {
                Ok(n) => {
                    assert_eq!(detail.source, ThreadsSource::Env);
                    assert_eq!(detail.workers, n);
                    assert!(detail.warning.is_none());
                }
                Err(_) => {
                    assert_eq!(detail.source, ThreadsSource::Machine);
                    assert_eq!(detail.workers, detail.machine);
                    assert!(detail.warning.is_some());
                }
            },
            Err(_) => {
                assert_eq!(detail.source, ThreadsSource::Machine);
                assert_eq!(detail.workers, detail.machine);
                assert!(detail.warning.is_none());
                // The actual multi-core regression assertion: a host with
                // more than one core must never fall back to one worker
                // (with the `parallel` feature compiled out, 1 is correct).
                if cfg!(feature = "parallel")
                    && std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
                        > 1
                {
                    assert!(
                        detail.workers > 1,
                        "Auto resolved to 1 worker on a multi-core host"
                    );
                }
            }
        }
    }

    #[test]
    fn par_threshold_overrides_parse() {
        assert_eq!(parse_par_threshold("0"), Some(0));
        assert_eq!(parse_par_threshold("4096"), Some(4096));
        assert_eq!(parse_par_threshold(" 512\n"), Some(512));
        assert_eq!(parse_par_threshold(""), None);
        assert_eq!(parse_par_threshold("lots"), None);
        assert_eq!(parse_par_threshold("-1"), None);
        assert_eq!(parse_par_threshold("1e6"), None);
    }

    #[test]
    fn calibration_is_cached_and_coherent() {
        let first = calibration();
        assert_eq!(first, calibration(), "calibration must be stable per process");
        match first.source {
            CalibrationSource::Env => {
                let expected = std::env::var("ACT_PAR_THRESHOLD")
                    .ok()
                    .and_then(|raw| parse_par_threshold(&raw));
                assert_eq!(Some(first.threshold_points), expected);
            }
            CalibrationSource::SingleCore => {
                assert!(machine_parallelism() <= 1);
                assert_eq!(first.threshold_points, usize::MAX);
            }
            CalibrationSource::Measured => {
                assert!(machine_parallelism() > 1);
                assert!((512..=1_048_576).contains(&first.threshold_points));
            }
        }
    }

    /// Break-even fallback: a tiny batch under a machine-default `Auto`
    /// must resolve to one worker (serial) on any host — multi-core hosts
    /// via the calibrated threshold (which is clamped ≥ 512), single-core
    /// hosts trivially.
    #[test]
    fn tiny_batches_resolve_serial_under_auto() {
        let detail = Parallelism::Auto.resolve_for(4);
        if detail.source == ThreadsSource::Machine {
            assert_eq!(detail.workers, 1, "4 points can never amortize dispatch");
            if machine_parallelism() > 1 {
                let threshold = calibration().threshold_points;
                assert_eq!(detail.decision, BatchDecision::SerialBelowThreshold { threshold });
            }
        }
    }

    #[test]
    fn huge_batches_resolve_parallel_under_auto_on_multicore() {
        let detail = Parallelism::Auto.resolve_for(usize::MAX);
        if detail.source == ThreadsSource::Machine && machine_parallelism() > 1 {
            assert_eq!(detail.workers, machine_parallelism());
            let threshold = calibration().threshold_points;
            assert_eq!(detail.decision, BatchDecision::ParallelAboveThreshold { threshold });
        }
    }

    #[test]
    fn explicit_policies_bypass_the_threshold() {
        for policy in [Parallelism::Serial, Parallelism::threads(3)] {
            let detail = policy.resolve_for(1);
            assert_eq!(detail.decision, BatchDecision::Unconditional);
            assert_eq!(detail.workers, policy.worker_count());
        }
    }

    #[test]
    fn decision_and_calibration_names_are_stable() {
        assert_eq!(BatchDecision::Unconditional.as_str(), "unconditional");
        assert_eq!(BatchDecision::ParallelAboveThreshold { threshold: 1 }.as_str(), "parallel");
        assert_eq!(
            BatchDecision::SerialBelowThreshold { threshold: 1 }.as_str(),
            "serial-below-threshold"
        );
        assert_eq!(CalibrationSource::Env.as_str(), "env");
        assert_eq!(CalibrationSource::Measured.as_str(), "measured");
        assert_eq!(CalibrationSource::SingleCore.as_str(), "single-core");
    }

    /// The `usize::MAX` single-core pin must encode as `null`, never as
    /// the f64-rounded garbage integer `18446744073709552000`; bounded
    /// thresholds encode as plain integers.
    #[test]
    fn calibration_json_encodes_unbounded_threshold_as_null() {
        use act_json::ToJson;

        let pinned =
            Calibration { threshold_points: usize::MAX, source: CalibrationSource::SingleCore };
        assert_eq!(
            pinned.to_json().render_compact(),
            r#"{"threshold_points":null,"source":"single-core"}"#
        );

        let measured =
            Calibration { threshold_points: 2048, source: CalibrationSource::Measured };
        assert_eq!(
            measured.to_json().render_compact(),
            r#"{"threshold_points":2048,"source":"measured"}"#
        );
    }

    #[test]
    fn threads_source_names_are_stable() {
        assert_eq!(ThreadsSource::Policy.as_str(), "policy");
        assert_eq!(ThreadsSource::Env.as_str(), "env");
        assert_eq!(ThreadsSource::Machine.as_str(), "machine");
        assert_eq!(Parallelism::threads(3).resolve_detailed().source, ThreadsSource::Policy);
    }

    #[test]
    fn explicit_policies_never_warn() {
        assert_eq!(Parallelism::Serial.resolve(), (1, None));
        assert_eq!(Parallelism::threads(6).resolve(), (6, None));
        // `threads(0)` clamps to Serial at construction, before resolve.
        assert_eq!(Parallelism::threads(0).resolve(), (1, None));
    }

    #[test]
    fn valid_thread_overrides_parse() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("8"), Ok(8));
        // Surrounding whitespace is tolerated, matching historic behavior.
        assert_eq!(parse_threads("  4\n"), Ok(4));
        // Huge-but-representable counts are accepted; the thread engine
        // clamps workers to the work-item count, not here.
        assert_eq!(parse_threads("1000000"), Ok(1_000_000));
    }

    #[test]
    fn rejected_thread_overrides_say_why() {
        let cases = [
            ("0", ThreadsWarningReason::Zero),
            ("  0 ", ThreadsWarningReason::Zero),
            ("", ThreadsWarningReason::Empty),
            ("   ", ThreadsWarningReason::Empty),
            ("\t\n", ThreadsWarningReason::Empty),
            ("four", ThreadsWarningReason::NotAPositiveInteger),
            ("-2", ThreadsWarningReason::NotAPositiveInteger),
            ("3.5", ThreadsWarningReason::NotAPositiveInteger),
            // Larger than any usize: overflow is a rejection, not a wrap.
            ("99999999999999999999999", ThreadsWarningReason::NotAPositiveInteger),
        ];
        for (raw, reason) in cases {
            let warning = parse_threads(raw).expect_err(raw);
            assert_eq!(warning.reason, reason, "raw = {raw:?}");
            assert_eq!(warning.raw, raw, "raw value must round-trip verbatim");
        }
    }

    #[test]
    fn warning_display_names_the_variable_and_value() {
        let warning = parse_threads("banana").expect_err("not a number");
        let message = warning.to_string();
        assert!(message.contains("ACT_THREADS"), "got: {message}");
        assert!(message.contains("banana"), "got: {message}");
    }

    #[test]
    fn index_is_passed_through() {
        let out = par_map_range(four(), 10, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_with_payload() {
        let caught = std::panic::catch_unwind(|| {
            par_map_range(four(), 100, |i| {
                assert!(i != 37, "poisoned index");
                i
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        // A no-args `assert!` message panics with a `&'static str` payload;
        // formatted ones carry a `String`. Accept either.
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("poisoned index"), "got: {message}");
    }
}
