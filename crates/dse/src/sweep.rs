//! Parameter-sweep helpers.

/// Powers of two from `lo` to `hi` inclusive (the paper's MAC-count axis).
///
/// # Panics
///
/// Panics if `lo` is zero or `lo > hi`.
///
/// # Examples
///
/// ```
/// use act_dse::powers_of_two;
/// assert_eq!(powers_of_two(64, 512), vec![64, 128, 256, 512]);
/// ```
#[must_use]
pub fn powers_of_two(lo: u32, hi: u32) -> Vec<u32> {
    assert!(lo > 0, "lower bound must be positive");
    assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
    let mut out = Vec::new();
    let mut v = lo;
    while v <= hi {
        out.push(v);
        match v.checked_mul(2) {
            Some(next) => v = next,
            None => break,
        }
    }
    out
}

/// `n` evenly spaced values from `start` to `end` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use act_dse::linspace;
/// assert_eq!(linspace(0.0, 1.0, 3), vec![0.0, 0.5, 1.0]);
/// ```
#[must_use]
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (end - start) / (n - 1) as f64;
    (0..n).map(|i| start + step * i as f64).collect()
}

/// `n` logarithmically spaced values from `start` to `end` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either endpoint is not positive.
///
/// # Examples
///
/// ```
/// use act_dse::logspace;
/// let v = logspace(1.0, 100.0, 3);
/// assert!((v[1] - 10.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn logspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(start > 0.0 && end > 0.0, "logspace endpoints must be positive");
    linspace(start.ln(), end.ln(), n).into_iter().map(f64::exp).collect()
}

/// Evaluates `f` on every parameter, pairing inputs with results.
///
/// # Examples
///
/// ```
/// use act_dse::sweep;
/// let squares = sweep([1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![(1, 1), (2, 4), (3, 9)]);
/// ```
pub fn sweep<P, R>(params: impl IntoIterator<Item = P>, mut f: impl FnMut(&P) -> R) -> Vec<(P, R)> {
    params
        .into_iter()
        .map(|p| {
            let r = f(&p);
            (p, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_covers_paper_range() {
        assert_eq!(powers_of_two(64, 2048), vec![64, 128, 256, 512, 1024, 2048]);
    }

    #[test]
    fn powers_of_two_single_value() {
        assert_eq!(powers_of_two(8, 8), vec![8]);
    }

    #[test]
    fn powers_of_two_from_non_power_start() {
        assert_eq!(powers_of_two(3, 20), vec![3, 6, 12]);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn powers_of_two_rejects_inverted_range() {
        let _ = powers_of_two(16, 8);
    }

    #[test]
    fn powers_of_two_handles_overflow() {
        let v = powers_of_two(1 << 30, u32::MAX);
        assert_eq!(v, vec![1 << 30, 1 << 31]);
    }

    #[test]
    fn linspace_endpoints_exact() {
        let v = linspace(1.0, 10.0, 10);
        assert_eq!(v.len(), 10);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[9] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn logspace_is_geometric() {
        let v = logspace(1.0, 16.0, 5);
        for pair in v.windows(2) {
            assert!((pair[1] / pair[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let results = sweep(powers_of_two(1, 8), |m| *m * 10);
        assert_eq!(results, vec![(1, 10), (2, 20), (4, 40), (8, 80)]);
    }
}
