//! Parameter-sweep helpers.

use crate::parallel::{par_map_ordered, Parallelism};

/// Streaming variant of [`powers_of_two`]: yields the powers of two from
/// `lo` to `hi` inclusive without allocating, for use directly inside hot
/// sweep loops.
///
/// # Panics
///
/// Panics if `lo` is zero or `lo > hi`.
///
/// # Examples
///
/// ```
/// use act_dse::powers_of_two_iter;
/// assert_eq!(powers_of_two_iter(64, 512).collect::<Vec<_>>(), vec![64, 128, 256, 512]);
/// ```
pub fn powers_of_two_iter(lo: u32, hi: u32) -> impl Iterator<Item = u32> {
    assert!(lo > 0, "lower bound must be positive");
    assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
    std::iter::successors(Some(lo), |v| v.checked_mul(2)).take_while(move |v| *v <= hi)
}

/// Powers of two from `lo` to `hi` inclusive (the paper's MAC-count axis).
///
/// # Panics
///
/// Panics if `lo` is zero or `lo > hi`.
///
/// # Examples
///
/// ```
/// use act_dse::powers_of_two;
/// assert_eq!(powers_of_two(64, 512), vec![64, 128, 256, 512]);
/// ```
#[must_use]
pub fn powers_of_two(lo: u32, hi: u32) -> Vec<u32> {
    powers_of_two_iter(lo, hi).collect()
}

/// Streaming variant of [`linspace`]: yields `n` evenly spaced values from
/// `start` to `end` inclusive without allocating.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use act_dse::linspace_iter;
/// assert_eq!(linspace_iter(0.0, 1.0, 3).collect::<Vec<_>>(), vec![0.0, 0.5, 1.0]);
/// ```
pub fn linspace_iter(start: f64, end: f64, n: usize) -> impl Iterator<Item = f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (end - start) / (n - 1) as f64;
    (0..n).map(move |i| start + step * i as f64)
}

/// `n` evenly spaced values from `start` to `end` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use act_dse::linspace;
/// assert_eq!(linspace(0.0, 1.0, 3), vec![0.0, 0.5, 1.0]);
/// ```
#[must_use]
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    linspace_iter(start, end, n).collect()
}

/// Streaming variant of [`logspace`]: yields `n` logarithmically spaced
/// values from `start` to `end` inclusive without allocating.
///
/// # Panics
///
/// Panics if `n < 2` or either endpoint is not positive.
///
/// # Examples
///
/// ```
/// use act_dse::logspace_iter;
/// let v: Vec<f64> = logspace_iter(1.0, 100.0, 3).collect();
/// assert!((v[1] - 10.0).abs() < 1e-9);
/// ```
pub fn logspace_iter(start: f64, end: f64, n: usize) -> impl Iterator<Item = f64> {
    assert!(start > 0.0 && end > 0.0, "logspace endpoints must be positive");
    linspace_iter(start.ln(), end.ln(), n).map(f64::exp)
}

/// `n` logarithmically spaced values from `start` to `end` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either endpoint is not positive.
///
/// # Examples
///
/// ```
/// use act_dse::logspace;
/// let v = logspace(1.0, 100.0, 3);
/// assert!((v[1] - 10.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn logspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    logspace_iter(start, end, n).collect()
}

/// Evaluates `f` on every parameter, pairing inputs with results.
///
/// # Examples
///
/// ```
/// use act_dse::sweep;
/// let squares = sweep([1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![(1, 1), (2, 4), (3, 9)]);
/// ```
pub fn sweep<P, R>(
    params: impl IntoIterator<Item = P>,
    mut f: impl FnMut(&P) -> R,
) -> Vec<(P, R)> {
    params
        .into_iter()
        .map(|p| {
            let r = f(&p);
            (p, r)
        })
        .collect()
}

/// One design point a fallible sweep rejected, with its position in the
/// original parameter sequence and the model's reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectedPoint {
    /// Zero-based index of the point in the swept parameter sequence.
    pub index: usize,
    /// The model error, rendered.
    pub reason: String,
}

act_json::impl_to_json!(RejectedPoint { index, reason });

/// The result of a fallible sweep: the design points that evaluated cleanly
/// plus a record of every rejected one.
///
/// A sweep over mixed valid/invalid configurations never aborts: invalid
/// points are skipped and recorded so the driver can report them instead of
/// silently dropping (or crashing on) them.
#[derive(Clone, Debug)]
pub struct SweepOutcome<P, R> {
    /// Parameter/result pairs for the points that evaluated successfully,
    /// in sweep order.
    pub results: Vec<(P, R)>,
    /// The rejected points, in sweep order.
    pub rejected: Vec<RejectedPoint>,
}

impl<P, R> SweepOutcome<P, R> {
    /// Total number of points the sweep visited.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.results.len() + self.rejected.len()
    }

    /// Number of rejected points.
    #[must_use]
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }

    /// `true` when no point was rejected.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.rejected.is_empty()
    }

    /// One-line summary suitable for a report footer, e.g.
    /// `"18/20 points evaluated, 2 rejected"`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}/{} points evaluated, {} rejected",
            self.results.len(),
            self.total_points(),
            self.rejected_count()
        )
    }
}

/// Fallible variant of [`sweep`]: evaluates `f` on every parameter,
/// collecting successes and recording failures instead of aborting.
///
/// # Examples
///
/// ```
/// use act_dse::try_sweep;
///
/// let outcome = try_sweep([1.0_f64, -1.0, 4.0], |x| {
///     if *x >= 0.0 { Ok(x.sqrt()) } else { Err("negative input") }
/// });
/// assert_eq!(outcome.results.len(), 2);
/// assert_eq!(outcome.rejected_count(), 1);
/// assert_eq!(outcome.rejected[0].index, 1);
/// ```
pub fn try_sweep<P, R, E: std::fmt::Display>(
    params: impl IntoIterator<Item = P>,
    mut f: impl FnMut(&P) -> Result<R, E>,
) -> SweepOutcome<P, R> {
    let mut results = Vec::new();
    let mut rejected = Vec::new();
    for (index, p) in params.into_iter().enumerate() {
        match f(&p) {
            Ok(r) => results.push((p, r)),
            Err(e) => rejected.push(RejectedPoint { index, reason: e.to_string() }),
        }
    }
    SweepOutcome { results, rejected }
}

/// Convenience over [`try_sweep`] for infallible scalar models: evaluates
/// `f` on every parameter and rejects points whose result is NaN or
/// infinite.
///
/// # Examples
///
/// ```
/// use act_dse::sweep_finite;
///
/// let outcome = sweep_finite([4.0, 0.0, 1.0], |x| 1.0 / x);
/// assert_eq!(outcome.results.len(), 2);
/// assert_eq!(outcome.rejected[0].index, 1);
/// ```
pub fn sweep_finite<P>(
    params: impl IntoIterator<Item = P>,
    mut f: impl FnMut(&P) -> f64,
) -> SweepOutcome<P, f64> {
    try_sweep(params, |p| {
        let v = f(p);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("model produced a non-finite result ({v})"))
        }
    })
}

/// Parallel [`sweep`] under the default [`Parallelism::Auto`] policy.
///
/// Results come back in input order, so for any pure model
/// `par_sweep(params, f) == sweep(params, f)` — pinned by property tests.
///
/// # Examples
///
/// ```
/// use act_dse::par_sweep;
/// let squares = par_sweep([1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![(1, 1), (2, 4), (3, 9)]);
/// ```
pub fn par_sweep<P, R>(
    params: impl IntoIterator<Item = P>,
    f: impl Fn(&P) -> R + Sync,
) -> Vec<(P, R)>
where
    P: Sync,
    R: Send,
{
    par_sweep_with(Parallelism::Auto, params, f)
}

/// Parallel [`sweep`] under an explicit [`Parallelism`] policy.
///
/// # Examples
///
/// ```
/// use act_dse::{par_sweep_with, Parallelism};
/// let serial = par_sweep_with(Parallelism::Serial, 0..100u32, |x| x + 1);
/// let parallel = par_sweep_with(Parallelism::threads(4), 0..100u32, |x| x + 1);
/// assert_eq!(serial, parallel);
/// ```
pub fn par_sweep_with<P, R>(
    parallelism: Parallelism,
    params: impl IntoIterator<Item = P>,
    f: impl Fn(&P) -> R + Sync,
) -> Vec<(P, R)>
where
    P: Sync,
    R: Send,
{
    let params: Vec<P> = params.into_iter().collect();
    let results = par_map_ordered(parallelism, &params, |_, p| f(p));
    params.into_iter().zip(results).collect()
}

/// Parallel [`try_sweep`] under the default [`Parallelism::Auto`] policy:
/// evaluates every parameter concurrently while preserving the serial
/// skip-and-record semantics — successes in sweep order, rejections
/// carrying their original sweep index and rendered reason.
///
/// # Examples
///
/// ```
/// use act_dse::par_try_sweep;
///
/// let outcome = par_try_sweep([1.0_f64, -1.0, 4.0], |x| {
///     if *x >= 0.0 { Ok(x.sqrt()) } else { Err("negative input") }
/// });
/// assert_eq!(outcome.results.len(), 2);
/// assert_eq!(outcome.rejected[0].index, 1);
/// ```
pub fn par_try_sweep<P, R, E>(
    params: impl IntoIterator<Item = P>,
    f: impl Fn(&P) -> Result<R, E> + Sync,
) -> SweepOutcome<P, R>
where
    P: Sync,
    R: Send,
    E: std::fmt::Display,
{
    par_try_sweep_with(Parallelism::Auto, params, f)
}

/// Parallel [`try_sweep`] under an explicit [`Parallelism`] policy.
pub fn par_try_sweep_with<P, R, E>(
    parallelism: Parallelism,
    params: impl IntoIterator<Item = P>,
    f: impl Fn(&P) -> Result<R, E> + Sync,
) -> SweepOutcome<P, R>
where
    P: Sync,
    R: Send,
    E: std::fmt::Display,
{
    let params: Vec<P> = params.into_iter().collect();
    let evaluated =
        par_map_ordered(parallelism, &params, |_, p| f(p).map_err(|e| e.to_string()));
    let mut results = Vec::new();
    let mut rejected = Vec::new();
    for (index, (p, outcome)) in params.into_iter().zip(evaluated).enumerate() {
        match outcome {
            Ok(r) => results.push((p, r)),
            Err(reason) => rejected.push(RejectedPoint { index, reason }),
        }
    }
    SweepOutcome { results, rejected }
}

/// Parallel [`sweep_finite`] under the default [`Parallelism::Auto`]
/// policy: rejects NaN/infinite results with the same reason strings as
/// the serial path.
///
/// # Examples
///
/// ```
/// use act_dse::par_sweep_finite;
///
/// let outcome = par_sweep_finite([4.0, 0.0, 1.0], |x| 1.0 / x);
/// assert_eq!(outcome.results.len(), 2);
/// assert_eq!(outcome.rejected[0].index, 1);
/// ```
pub fn par_sweep_finite<P>(
    params: impl IntoIterator<Item = P>,
    f: impl Fn(&P) -> f64 + Sync,
) -> SweepOutcome<P, f64>
where
    P: Sync,
{
    par_sweep_finite_with(Parallelism::Auto, params, f)
}

/// Parallel [`sweep_finite`] under an explicit [`Parallelism`] policy.
pub fn par_sweep_finite_with<P>(
    parallelism: Parallelism,
    params: impl IntoIterator<Item = P>,
    f: impl Fn(&P) -> f64 + Sync,
) -> SweepOutcome<P, f64>
where
    P: Sync,
{
    par_try_sweep_with(parallelism, params, |p| {
        let v = f(p);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(format!("model produced a non-finite result ({v})"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_covers_paper_range() {
        assert_eq!(powers_of_two(64, 2048), vec![64, 128, 256, 512, 1024, 2048]);
    }

    #[test]
    fn powers_of_two_single_value() {
        assert_eq!(powers_of_two(8, 8), vec![8]);
    }

    #[test]
    fn powers_of_two_from_non_power_start() {
        assert_eq!(powers_of_two(3, 20), vec![3, 6, 12]);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn powers_of_two_rejects_inverted_range() {
        let _ = powers_of_two(16, 8);
    }

    #[test]
    fn powers_of_two_handles_overflow() {
        let v = powers_of_two(1 << 30, u32::MAX);
        assert_eq!(v, vec![1 << 30, 1 << 31]);
    }

    #[test]
    fn linspace_endpoints_exact() {
        let v = linspace(1.0, 10.0, 10);
        assert_eq!(v.len(), 10);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[9] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn logspace_is_geometric() {
        let v = logspace(1.0, 16.0, 5);
        for pair in v.windows(2) {
            assert!((pair[1] / pair[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_preserves_order() {
        let results = sweep(powers_of_two(1, 8), |m| *m * 10);
        assert_eq!(results, vec![(1, 10), (2, 20), (4, 40), (8, 80)]);
    }

    #[test]
    fn try_sweep_partitions_points() {
        let outcome = try_sweep(0..6, |i| if i % 2 == 0 { Ok(i * 10) } else { Err("odd") });
        assert_eq!(outcome.results, vec![(0, 0), (2, 20), (4, 40)]);
        assert_eq!(outcome.rejected_count(), 3);
        assert_eq!(outcome.rejected.iter().map(|r| r.index).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(outcome.total_points(), 6);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.summary(), "3/6 points evaluated, 3 rejected");
    }

    #[test]
    fn try_sweep_clean_when_all_succeed() {
        let outcome = try_sweep(0..4, |i| Ok::<_, String>(i + 1));
        assert!(outcome.is_clean());
        assert_eq!(outcome.rejected_count(), 0);
        assert_eq!(outcome.summary(), "4/4 points evaluated, 0 rejected");
    }

    #[test]
    fn sweep_finite_rejects_poisoned_results() {
        let outcome = sweep_finite([1.0, 0.0, -1.0, 2.0], |x| 1.0 / x);
        // 1/0 = inf is rejected; 1/-1 is finite and kept.
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.rejected_count(), 1);
        assert_eq!(outcome.rejected[0].index, 1);
        assert!(outcome.rejected[0].reason.contains("non-finite"));
    }

    #[test]
    fn rejected_points_serialize() {
        use act_json::ToJson;
        let outcome = sweep_finite([0.0], |x| 1.0 / x);
        let json = outcome.rejected.to_json().render_compact();
        assert!(json.contains("\"index\":0"));
    }

    #[test]
    fn iterator_variants_match_vec_variants() {
        assert_eq!(powers_of_two_iter(3, 20).collect::<Vec<_>>(), powers_of_two(3, 20));
        assert_eq!(powers_of_two_iter(8, 8).collect::<Vec<_>>(), vec![8]);
        let overflow: Vec<u32> = powers_of_two_iter(1 << 30, u32::MAX).collect();
        assert_eq!(overflow, vec![1 << 30, 1 << 31]);
        assert_eq!(linspace_iter(1.0, 10.0, 10).collect::<Vec<_>>(), linspace(1.0, 10.0, 10));
        assert_eq!(logspace_iter(1.0, 16.0, 5).collect::<Vec<_>>(), logspace(1.0, 16.0, 5));
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn powers_of_two_iter_rejects_inverted_range() {
        let _ = powers_of_two_iter(16, 8);
    }

    #[test]
    fn par_sweep_matches_serial_sweep() {
        let params = powers_of_two(1, 1 << 20);
        let serial = sweep(params.clone(), |m| u64::from(*m) * 3);
        let parallel = par_sweep_with(Parallelism::threads(4), params, |m| u64::from(*m) * 3);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_try_sweep_matches_serial_try_sweep() {
        let check = |i: &i32| if i % 3 == 0 { Ok(i * 10) } else { Err("not divisible") };
        let serial = try_sweep(0..50, check);
        let parallel = par_try_sweep_with(Parallelism::threads(4), 0..50, check);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.rejected, parallel.rejected);
    }

    #[test]
    fn par_sweep_finite_matches_serial_reasons() {
        let model = |x: &f64| 1.0 / x;
        let params = [1.0, 0.0, -2.0, f64::NAN];
        let serial = sweep_finite(params, model);
        let parallel = par_sweep_finite_with(Parallelism::threads(3), params, model);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.rejected, parallel.rejected);
        assert_eq!(parallel.rejected[0].reason, "model produced a non-finite result (inf)");
    }
}
