//! Pareto-dominance utilities for multi-objective (minimization) spaces.

/// Returns `true` if point `a` dominates point `b`: `a` is no worse on every
/// objective and strictly better on at least one. All objectives minimize.
///
/// # Panics
///
/// Panics if the points have different dimensionality.
///
/// # Examples
///
/// ```
/// use act_dse::dominates;
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
/// ```
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal (non-dominated) points, in input order.
/// All objectives minimize. Duplicate points are all kept.
///
/// # Examples
///
/// ```
/// use act_dse::pareto_indices;
/// let points = vec![
///     vec![1.0, 4.0], // frontier
///     vec![2.0, 2.0], // frontier
///     vec![2.5, 2.5], // dominated by [2.0, 2.0]
///     vec![4.0, 1.0], // frontier
/// ];
/// assert_eq!(pareto_indices(&points), vec![0, 1, 3]);
/// ```
#[must_use]
pub fn pareto_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(dominates(&[1.0, 0.9], &[1.0, 1.0]));
        assert!(!dominates(&[0.9, 1.1], &[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_dims_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn single_point_is_optimal() {
        assert_eq!(pareto_indices(&[vec![5.0, 5.0]]), vec![0]);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn duplicates_are_both_kept() {
        let points = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_indices(&points), vec![0, 1]);
    }

    #[test]
    fn convex_frontier_extraction() {
        let points = vec![
            vec![0.0, 10.0],
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 2.9], // dominated? no: better on nothing... 3.0>2.0 and 2.9<3.0 -> frontier
            vec![5.0, 2.95], // dominated by [3.0, 2.9]
            vec![10.0, 0.0],
        ];
        assert_eq!(pareto_indices(&points), vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn one_dimensional_frontier_is_the_minimum() {
        let points = vec![vec![3.0], vec![1.0], vec![2.0], vec![1.0]];
        assert_eq!(pareto_indices(&points), vec![1, 3]);
    }
}
