//! Pareto-dominance utilities for multi-objective (minimization) spaces.
//!
//! [`pareto_indices`] keeps its original public contract — indices of the
//! non-dominated points, in input order, duplicates all kept — but no
//! longer runs the all-pairs O(n²) scan for the common cases: 2-D inputs
//! take a sort-then-scan skyline (O(n log n)), 1-D inputs a min scan
//! (O(n)), and k-D inputs a lexicographic-sort + non-dominated-archive
//! pruning pass that only ever compares against current frontier members.
//! The old quadratic implementation survives as
//! [`pareto_indices_reference`], the oracle for the randomized
//! equivalence tests and the baseline for the criterion benchmarks.

use std::cmp::Ordering;

/// Returns `true` if point `a` dominates point `b`: `a` is no worse on every
/// objective and strictly better on at least one. All objectives minimize.
///
/// # Panics
///
/// Panics if the points have different dimensionality.
///
/// # Examples
///
/// ```
/// use act_dse::dominates;
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
/// ```
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal (non-dominated) points, in input order.
/// All objectives minimize. Duplicate points are all kept.
///
/// 2-D inputs run in O(n log n), 1-D in O(n); higher dimensions use a
/// pruning pass that compares only against the frontier found so far.
/// Inputs containing NaN coordinates fall back to
/// [`pareto_indices_reference`] so the (degenerate) NaN comparison
/// semantics stay exactly as before.
///
/// # Panics
///
/// Panics if the points have different dimensionality (two or more
/// points).
///
/// # Examples
///
/// ```
/// use act_dse::pareto_indices;
/// let points = vec![
///     vec![1.0, 4.0], // frontier
///     vec![2.0, 2.0], // frontier
///     vec![2.5, 2.5], // dominated by [2.0, 2.0]
///     vec![4.0, 1.0], // frontier
/// ];
/// assert_eq!(pareto_indices(&points), vec![0, 1, 3]);
/// ```
#[must_use]
pub fn pareto_indices(points: &[Vec<f64>]) -> Vec<usize> {
    if points.len() <= 1 {
        return (0..points.len()).collect();
    }
    let dims = points[0].len();
    for p in points {
        assert_eq!(p.len(), dims, "objective vectors must have equal length");
    }
    if dims == 0 {
        // Zero objectives: nothing can be strictly better, everything is
        // non-dominated (matching the reference scan).
        return (0..points.len()).collect();
    }
    if points.iter().any(|p| p.iter().any(|v| v.is_nan())) {
        return pareto_indices_reference(points);
    }
    match dims {
        1 => skyline_1d(points),
        2 => skyline_2d(points),
        _ => skyline_kd(points),
    }
}

/// The original all-pairs O(n²) frontier scan, kept as the behavioral
/// reference: the randomized oracle tests assert `pareto_indices` agrees
/// with it exactly, and the `engine` criterion benchmarks measure the fast
/// paths against it.
#[must_use]
pub fn pareto_indices_reference(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .collect()
}

/// Normalizes `-0.0` to `+0.0` so `f64::total_cmp` agrees with the `<`/`==`
/// comparisons the dominance relation is defined over (no NaN by the time
/// the fast paths run).
fn key(v: f64) -> f64 {
    v + 0.0
}

/// 1-D frontier: every point equal to the minimum (ties all kept).
fn skyline_1d(points: &[Vec<f64>]) -> Vec<usize> {
    let mut min = f64::INFINITY;
    for p in points {
        if p[0] < min {
            min = p[0];
        }
    }
    (0..points.len()).filter(|&i| key(points[i][0]) == key(min)).collect()
}

/// 2-D skyline: sort by (x, y), then one scan. A point survives iff it has
/// the lowest y within its x-group and beats the best y of every strictly
/// smaller x.
fn skyline_2d(points: &[Vec<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        key(points[a][0])
            .total_cmp(&key(points[b][0]))
            .then_with(|| key(points[a][1]).total_cmp(&key(points[b][1])))
    });
    let mut frontier = Vec::new();
    // Lowest y over all x-groups strictly to the left; `None` before the
    // first group so an all-infinite first group still survives.
    let mut best_left_y: Option<f64> = None;
    let mut i = 0;
    while i < order.len() {
        let x = key(points[order[i]][0]);
        let mut j = i;
        while j < order.len() && key(points[order[j]][0]) == x {
            j += 1;
        }
        // Within the group the sort put the lowest y first; only points
        // tying it can survive (anything above is dominated same-x).
        let group_min_y = key(points[order[i]][1]);
        if best_left_y.is_none_or(|left| group_min_y < left) {
            for &idx in &order[i..j] {
                if key(points[idx][1]) == group_min_y {
                    frontier.push(idx);
                }
            }
        }
        best_left_y = Some(match best_left_y {
            Some(left) if left < group_min_y => left,
            _ => group_min_y,
        });
        i = j;
    }
    frontier.sort_unstable();
    frontier
}

/// k-D pruning pass: lexicographic sort guarantees every dominator of a
/// point sorts strictly before it, so each point only needs checking
/// against the non-dominated archive built so far (dominance is
/// transitive, so dominated points never need to be consulted).
fn skyline_kd(points: &[Vec<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| lex_cmp(&points[a], &points[b]));
    let mut frontier: Vec<usize> = Vec::new();
    for &idx in &order {
        let dominated = frontier.iter().any(|&f| dominates(&points[f], &points[idx]));
        if !dominated {
            frontier.push(idx);
        }
    }
    frontier.sort_unstable();
    frontier
}

fn lex_cmp(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = key(*x).total_cmp(&key(*y));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(dominates(&[1.0, 0.9], &[1.0, 1.0]));
        assert!(!dominates(&[0.9, 1.1], &[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_dims_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn single_point_is_optimal() {
        assert_eq!(pareto_indices(&[vec![5.0, 5.0]]), vec![0]);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn duplicates_are_both_kept() {
        let points = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_indices(&points), vec![0, 1]);
    }

    #[test]
    fn convex_frontier_extraction() {
        let points = vec![
            vec![0.0, 10.0],
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 2.9], // dominated? no: better on nothing... 3.0>2.0 and 2.9<3.0 -> frontier
            vec![5.0, 2.95], // dominated by [3.0, 2.9]
            vec![10.0, 0.0],
        ];
        assert_eq!(pareto_indices(&points), vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn one_dimensional_frontier_is_the_minimum() {
        let points = vec![vec![3.0], vec![1.0], vec![2.0], vec![1.0]];
        assert_eq!(pareto_indices(&points), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_point_dims_panic() {
        let _ = pareto_indices(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn negative_zero_ties_positive_zero() {
        // -0.0 == 0.0 under the dominance comparisons, so neither point
        // dominates: both stay, exactly as the reference scan decides.
        let points = vec![vec![-0.0, 5.0], vec![0.0, 5.0]];
        assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
        assert_eq!(pareto_indices(&points), vec![0, 1]);
        // And an actual same-x domination across the 0.0/-0.0 boundary.
        let points = vec![vec![0.0, 5.0], vec![-0.0, 4.0]];
        assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
        assert_eq!(pareto_indices(&points), vec![1]);
    }

    #[test]
    fn infinite_coordinates_match_reference() {
        let points = vec![
            vec![0.0, f64::INFINITY],
            vec![1.0, f64::INFINITY],
            vec![f64::INFINITY, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
        ];
        assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
        assert_eq!(pareto_indices(&points), vec![0, 2]);
    }

    #[test]
    fn nan_points_fall_back_to_reference_semantics() {
        let points = vec![vec![f64::NAN, 1.0], vec![0.5, 2.0], vec![0.5, 0.5]];
        assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    }

    #[test]
    fn zero_dimensional_points_are_all_kept() {
        let points = vec![Vec::new(), Vec::new(), Vec::new()];
        assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
        assert_eq!(pareto_indices(&points), vec![0, 1, 2]);
    }

    #[test]
    fn three_dimensional_frontier_matches_reference() {
        let points = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 3.0],
            vec![3.0, 3.0, 3.0], // dominated by both above
            vec![1.0, 2.0, 3.0], // duplicate of 0: kept
            vec![0.5, 2.5, 3.5],
        ];
        assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
        assert_eq!(pareto_indices(&points), vec![0, 1, 3, 4]);
    }
}
