//! Determinism and equivalence properties of the parallel evaluation
//! engine: `par_sweep == sweep`, parallel-vs-serial Monte-Carlo bitwise
//! equality, and the skyline `pareto_indices` against the quadratic
//! reference oracle.
//!
//! The randomized-input (proptest) companion lives in
//! `external-dev/tests/dse_parallel.rs`; this suite drives the same
//! properties from seeded `act_rng` streams so the hermetic std-only
//! workspace pins them reproducibly.

use act_dse::{
    monte_carlo, par_monte_carlo_with, par_sweep_finite_with, par_sweep_with,
    par_try_monte_carlo_with, par_try_sweep_with, pareto_indices, pareto_indices_reference,
    sweep, sweep_finite, try_monte_carlo, try_sweep, Parallelism,
};
use act_rng::Rng;

fn threads(n: usize) -> Parallelism {
    Parallelism::threads(n)
}

/// Input sizes covering empty, singleton, sub-worker and multi-chunk runs.
const SIZES: [usize; 5] = [0, 1, 7, 64, 200];

/// Worker counts covering serial, two-way and oversubscribed pools.
const WORKERS: [usize; 4] = [1, 2, 5, 8];

/// A seeded vector of uniform draws in `lo..hi`.
fn draws(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn par_sweep_equals_serial_sweep() {
    let model = |x: &f64| x.mul_add(3.0, 1.0).abs().sqrt();
    for (i, n) in SIZES.into_iter().enumerate() {
        let params = draws(i as u64, n, -1e6, 1e6);
        let serial = sweep(params.clone(), model);
        for workers in WORKERS {
            let parallel = par_sweep_with(threads(workers), params.clone(), model);
            assert_eq!(serial, parallel, "n={n}, workers={workers}");
        }
    }
}

#[test]
fn par_try_sweep_equals_serial_try_sweep() {
    let model = |x: &i64| {
        if x % 7 == 0 {
            Err(format!("multiple of seven: {x}"))
        } else {
            Ok(x * x)
        }
    };
    for (i, n) in SIZES.into_iter().enumerate() {
        let mut rng = Rng::seed_from_u64(100 + i as u64);
        #[allow(clippy::cast_possible_wrap)]
        let params: Vec<i64> = (0..n).map(|_| rng.gen_range(0..200_u64) as i64 - 100).collect();
        let serial = try_sweep(params.clone(), model);
        for workers in WORKERS {
            let parallel = par_try_sweep_with(threads(workers), params.clone(), model);
            assert_eq!(serial.results, parallel.results, "n={n}, workers={workers}");
            assert_eq!(serial.rejected, parallel.rejected, "n={n}, workers={workers}");
        }
    }
}

#[test]
fn par_sweep_finite_equals_serial_sweep_finite() {
    // Poles at 0 produce infinities that must be rejected identically;
    // inject exact zeros so the rejection path is always exercised.
    let model = |x: &f64| 1.0 / x;
    for (i, n) in SIZES.into_iter().enumerate() {
        let mut params = draws(200 + i as u64, n, -10.0, 10.0);
        for slot in params.iter_mut().step_by(5) {
            *slot = 0.0;
        }
        let serial = sweep_finite(params.clone(), model);
        for workers in WORKERS {
            let parallel = par_sweep_finite_with(threads(workers), params.clone(), model);
            assert_eq!(serial.results, parallel.results, "n={n}, workers={workers}");
            assert_eq!(serial.rejected, parallel.rejected, "n={n}, workers={workers}");
        }
    }
}

#[test]
fn par_monte_carlo_is_bitwise_thread_count_invariant() {
    let model = |rng: &mut Rng| {
        let y: f64 = rng.gen_range(0.5..1.5);
        1370.0 / y
    };
    for seed in [0, 1, 0xDEAD_BEEF, u64::MAX] {
        for samples in [1, 2, 63, 500, 2999] {
            let serial = par_monte_carlo_with(Parallelism::Serial, samples, seed, model);
            for workers in [2, 3, 8] {
                let parallel = par_monte_carlo_with(threads(workers), samples, seed, model);
                // PartialEq on McStats is f64 equality — bit-for-bit stats.
                assert_eq!(
                    serial, parallel,
                    "seed={seed}, samples={samples}, workers={workers}"
                );
            }
        }
    }
}

#[test]
fn par_try_monte_carlo_is_bitwise_thread_count_invariant() {
    let model = |rng: &mut Rng| {
        let y: f64 = rng.gen_range(-0.2..1.0);
        1.0 / y.max(0.0)
    };
    for seed in [7, 0xAC70, u64::MAX - 1] {
        for samples in [1, 64, 1000] {
            let serial = par_try_monte_carlo_with(Parallelism::Serial, samples, seed, model);
            for workers in [2, 5, 8] {
                let parallel = par_try_monte_carlo_with(threads(workers), samples, seed, model);
                assert_eq!(
                    serial, parallel,
                    "seed={seed}, samples={samples}, workers={workers}"
                );
            }
        }
    }
}

#[test]
fn serial_apis_unchanged_by_engine() {
    // The legacy single-RNG entry points still agree with themselves
    // run-to-run (regression guard for the shared-RNG schedule).
    let model = |rng: &mut Rng| rng.gen_range(0.0..1.0);
    for seed in [0, 42, u64::MAX] {
        for samples in [1, 17, 500] {
            assert_eq!(monte_carlo(samples, seed, model), monte_carlo(samples, seed, model));
            let a = try_monte_carlo(samples, seed, model);
            let b = try_monte_carlo(samples, seed, model);
            assert_eq!(a, b, "seed={seed}, samples={samples}");
        }
    }
}

/// A seeded `n × dims` point cloud in `[lo, hi)`.
fn cloud(seed: u64, n: usize, dims: usize, lo: f64, hi: f64) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| (0..dims).map(|_| rng.gen_range(lo..hi)).collect()).collect()
}

#[test]
fn pareto_skyline_matches_quadratic_oracle_2d() {
    for (seed, n) in [(0, 0), (1, 1), (2, 13), (3, 60), (4, 120)] {
        let points = cloud(seed, n, 2, -5.0, 5.0);
        assert_eq!(
            pareto_indices(&points),
            pareto_indices_reference(&points),
            "seed={seed}, n={n}"
        );
    }
}

#[test]
fn pareto_skyline_matches_quadratic_oracle_kd() {
    for dims in 1..5 {
        for n in [0, 1, 20, 80] {
            let points = cloud(1000 + dims as u64, n, dims, -3.0, 3.0);
            assert_eq!(
                pareto_indices(&points),
                pareto_indices_reference(&points),
                "dims={dims}, n={n}"
            );
        }
    }
}

#[test]
fn pareto_skyline_keeps_duplicates_like_oracle() {
    for (seed, base_n, dupes) in [(7, 1, 1), (8, 10, 2), (9, 39, 3)] {
        // Duplicate a prefix of the cloud so exact ties are guaranteed.
        let base = cloud(seed, base_n, 2, 0.0, 2.0);
        let mut points = base.clone();
        for _ in 0..dupes {
            points.extend(base.iter().take(3).cloned());
        }
        assert_eq!(
            pareto_indices(&points),
            pareto_indices_reference(&points),
            "seed={seed}, base_n={base_n}, dupes={dupes}"
        );
    }
}

#[test]
fn pareto_skyline_handles_discrete_grids() {
    // Integer-valued coordinates force heavy tie/duplicate pressure.
    for (seed, n) in [(20, 10), (21, 35), (22, 60)] {
        let mut rng = Rng::seed_from_u64(seed);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| f64::from(rng.gen_range(0..4_u32))).collect())
            .collect();
        assert_eq!(
            pareto_indices(&points),
            pareto_indices_reference(&points),
            "seed={seed}, n={n}"
        );
    }
}

#[test]
fn pareto_nan_and_signed_zero_edge_cases_match_reference() {
    let clouds: Vec<Vec<Vec<f64>>> = vec![
        vec![vec![f64::NAN, 0.0], vec![0.0, 0.0], vec![1.0, 1.0]],
        vec![vec![-0.0, 0.0], vec![0.0, -0.0], vec![0.0, 0.0]],
        vec![vec![f64::INFINITY, 1.0], vec![1.0, f64::INFINITY], vec![2.0, 2.0]],
        vec![vec![f64::NEG_INFINITY, 5.0], vec![0.0, 5.0]],
    ];
    for cloud in clouds {
        assert_eq!(pareto_indices(&cloud), pareto_indices_reference(&cloud), "cloud {cloud:?}");
    }
}

#[test]
fn one_dimensional_oracle_including_ties() {
    let points: Vec<Vec<f64>> =
        [3.0, 1.0, 2.0, 1.0, 1.0, 9.0].iter().map(|&v| vec![v]).collect();
    assert_eq!(pareto_indices(&points), pareto_indices_reference(&points));
    assert_eq!(pareto_indices(&points), vec![1, 3, 4]);
}
