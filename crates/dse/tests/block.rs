//! Equivalence and determinism properties of the block-vectorized batch
//! engine: the `_block` twins must reproduce the per-point paths bit for
//! bit — same values, same rejection log, same Monte-Carlo summaries —
//! for any batch length, thread count, and budget, with cut-offs landing
//! on identical completed prefixes.
//!
//! The kernels here are plain closures (act-dse is model-agnostic); the
//! `act_core::EvalPlan::eval_block` pairing is pinned by the property
//! suite in `act-core` itself.

use std::ops::Range;
use std::time::{Duration, Instant};

use act_dse::{
    monte_carlo_compiled_block_budgeted, monte_carlo_compiled_budgeted,
    par_monte_carlo_compiled_block_with, par_sweep_compiled_block_budgeted,
    par_sweep_compiled_block_with, sweep_compiled, sweep_compiled_block,
    sweep_compiled_block_budgeted, BatchOutput, BatchRun, BatchShapeError, EvalBudget,
    McBuffer, Parallelism, PointBatch,
};
use act_rng::Rng;

/// Batch lengths straddling the worker, budget-block (1024 default check
/// interval) and chunk boundaries, including a ragged tail.
const SIZES: [usize; 7] = [0, 1, 63, 64, 65, 1024, 5000];

/// Worker counts covering serial, two-way and oversubscribed pools.
const WORKERS: [usize; 4] = [1, 2, 5, 8];

/// The reference model: two axes, a pole along `x == 0` so rejection
/// slots are exercised, evaluated with one exact per-point chain.
fn model(x: f64, y: f64) -> f64 {
    (y.mul_add(3.0, 1.0) / x).sqrt() + x * y
}

fn point_kernel(p: &[f64]) -> f64 {
    model(p[0], p[1])
}

fn block_kernel(cols: &[&[f64]], range: Range<usize>, out: &mut [f64]) {
    let xs = &cols[0][range.clone()];
    let ys = &cols[1][range];
    for ((slot, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        *slot = model(x, y);
    }
}

/// A seeded two-column batch with exact zeros injected on the pole axis.
fn batch(seed: u64, n: usize) -> PointBatch {
    let mut rng = Rng::seed_from_u64(seed);
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
    for slot in xs.iter_mut().step_by(7) {
        *slot = 0.0;
    }
    let ys = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    PointBatch::from_columns(vec![xs, ys])
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: bit divergence at point {i}");
    }
}

#[test]
fn block_sweep_equals_per_point_sweep_bitwise() {
    for (i, n) in SIZES.into_iter().enumerate() {
        let batch = batch(i as u64, n);
        let mut per_point = BatchOutput::new();
        sweep_compiled(&batch, point_kernel, &mut per_point);
        let mut block = BatchOutput::new();
        sweep_compiled_block(&batch, block_kernel, &mut block);
        assert_bitwise_eq(per_point.values(), block.values(), &format!("n={n}"));
        assert_eq!(per_point.rejected(), block.rejected(), "n={n}: rejection logs differ");
    }
}

#[test]
fn par_block_sweep_is_thread_count_invariant() {
    for (i, n) in SIZES.into_iter().enumerate() {
        let batch = batch(100 + i as u64, n);
        let mut serial = BatchOutput::new();
        sweep_compiled_block(&batch, block_kernel, &mut serial);
        for workers in WORKERS {
            let mut parallel = BatchOutput::new();
            par_sweep_compiled_block_with(
                Parallelism::threads(workers),
                &batch,
                block_kernel,
                &mut parallel,
            );
            let context = format!("n={n}, workers={workers}");
            assert_bitwise_eq(serial.values(), parallel.values(), &context);
            assert_eq!(serial.rejected(), parallel.rejected(), "{context}: rejection logs");
        }
    }
}

#[test]
fn budgeted_block_cutoff_is_a_bit_identical_prefix_for_any_thread_count() {
    let n = 5000;
    let batch = batch(7, n);
    let mut reference = BatchOutput::new();
    sweep_compiled_block(&batch, block_kernel, &mut reference);
    // A deadline a few hundred microseconds out: the run may finish or be
    // cut anywhere, but whatever prefix completed must match the
    // unbudgeted bits and every untouched slot must hold NaN.
    for workers in WORKERS {
        let budget = EvalBudget::with_deadline(Instant::now() + Duration::from_micros(300));
        let mut out = BatchOutput::new();
        let run = par_sweep_compiled_block_budgeted(
            Parallelism::threads(workers),
            &batch,
            block_kernel,
            &mut out,
            &budget,
        );
        let completed = match run {
            BatchRun::Completed => n,
            BatchRun::DeadlineExceeded { completed } => completed,
        };
        assert!(completed <= n);
        let context = format!("workers={workers}, completed={completed}");
        assert_bitwise_eq(
            &reference.values()[..completed],
            &out.values()[..completed],
            &context,
        );
        for (i, v) in out.values()[completed..].iter().enumerate() {
            assert!(
                v.is_nan(),
                "{context}: slot {} past the prefix must be NaN",
                completed + i
            );
        }
        // Every logged rejection belongs to the completed prefix and
        // matches the reference log's order for that prefix.
        let expected: Vec<_> =
            reference.rejected().iter().filter(|r| r.index < completed).cloned().collect();
        assert_eq!(expected.as_slice(), out.rejected(), "{context}: rejection prefix");
    }
}

#[test]
fn expired_budget_reports_an_empty_block_prefix() {
    let batch = batch(11, 512);
    let budget = EvalBudget::with_deadline(Instant::now() - Duration::from_millis(1));
    let mut out = BatchOutput::new();
    let run = sweep_compiled_block_budgeted(&batch, block_kernel, &mut out, &budget);
    assert_eq!(run, BatchRun::DeadlineExceeded { completed: 0 });
    assert!(out.values().iter().all(|v| v.is_nan()));
    assert!(out.rejected().is_empty());
}

#[test]
fn block_monte_carlo_matches_per_point_monte_carlo_bitwise() {
    let ranges = [(-4.0_f64, 4.0_f64), (-2.0, 2.0)];
    let per_point_sampler = |rng: &mut Rng, scratch: &mut [f64]| {
        for (slot, (low, high)) in scratch.iter_mut().zip(&ranges) {
            *slot = rng.gen_range(*low..*high);
        }
    };
    let block_sampler = |rng: &mut Rng, k: usize, columns: &mut [Vec<f64>]| {
        for (column, (low, high)) in columns.iter_mut().zip(&ranges) {
            column[k] = rng.gen_range(*low..*high);
        }
    };
    for seed in [0, 42, 0xAC70, u64::MAX] {
        for samples in [1, 63, 64, 65, 1024, 3000] {
            let mut per_point_buf = McBuffer::default();
            let per_point = monte_carlo_compiled_budgeted(
                samples,
                seed,
                2,
                per_point_sampler,
                point_kernel,
                &mut per_point_buf,
                &EvalBudget::unlimited(),
            );
            let mut block_buf = McBuffer::default();
            let block = monte_carlo_compiled_block_budgeted(
                samples,
                seed,
                2,
                block_sampler,
                block_kernel,
                &mut block_buf,
                &EvalBudget::unlimited(),
            );
            let context = format!("seed={seed}, samples={samples}");
            match (per_point, block) {
                (Ok((a, _)), Ok((b, _))) => {
                    assert_eq!(a, b, "{context}: summaries diverged");
                    assert_bitwise_eq(per_point_buf.draws(), block_buf.draws(), &context);
                }
                (a, b) => {
                    assert_eq!(a.is_err(), b.is_err(), "{context}: outcome kind diverged")
                }
            }
            // The pooled block engine is invariant under thread count too.
            let serial = monte_carlo_compiled_block_budgeted(
                samples,
                seed,
                2,
                block_sampler,
                block_kernel,
                &mut block_buf,
                &EvalBudget::unlimited(),
            )
            .map(|(outcome, _)| outcome);
            for workers in [2, 5, 8] {
                let mut par_buf = McBuffer::default();
                let parallel = par_monte_carlo_compiled_block_with(
                    Parallelism::threads(workers),
                    samples,
                    seed,
                    2,
                    block_sampler,
                    block_kernel,
                    &mut par_buf,
                );
                assert_eq!(serial, parallel, "{context}, workers={workers}");
            }
        }
    }
}

#[test]
fn try_from_columns_rejects_malformed_shapes() {
    assert_eq!(PointBatch::try_from_columns(Vec::new()), Err(BatchShapeError::Empty));
    let ragged = PointBatch::try_from_columns(vec![vec![1.0, 2.0], vec![3.0]]);
    assert_eq!(ragged, Err(BatchShapeError::Ragged { axis: 1, len: 1, expected: 2 }));
    let err = ragged.expect_err("ragged columns must be rejected");
    assert_eq!(err.to_string(), "axis column 1 has 1 points but column 0 has 2");
    assert_eq!(
        BatchShapeError::Empty.to_string(),
        "a point batch needs at least one axis column"
    );
    let ok = PointBatch::try_from_columns(vec![vec![1.0, 2.0], vec![3.0, 4.0]])
        .expect("well-formed columns");
    assert_eq!(ok.len(), 2);
    assert_eq!(ok.axis_count(), 2);
}
