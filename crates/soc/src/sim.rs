//! The simulator core: thread scheduling over clusters, DVFS, the memory
//! wall, and a TDP-normalized power model.

use act_data::{ClusterSpec, SocSpec};
use act_units::{Energy, Power, TimeSpan};

use crate::workload::Workload;

/// DVFS policy applied uniformly across clusters during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum DvfsGovernor {
    /// Run at maximum frequency.
    #[default]
    Performance,
    /// Run at a fixed fraction of maximum frequency.
    Fixed(
        /// Frequency as a fraction of maximum, in `(0, 1]`.
        f64,
    ),
    /// Pick the frequency that roughly minimizes energy for the workload:
    /// memory-bound work is clocked down (extra frequency buys little
    /// throughput but cubic power), compute-bound work runs fast.
    OnDemand,
}

impl DvfsGovernor {
    fn frequency_fraction(self, workload: &Workload) -> f64 {
        match self {
            Self::Performance => 1.0,
            Self::Fixed(fraction) => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "fixed DVFS fraction must be in (0, 1], got {fraction}"
                );
                fraction
            }
            Self::OnDemand => 1.0 - 0.35 * workload.memory_intensity(),
        }
    }
}

/// The outcome of one workload run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunResult {
    /// Wall-clock run time.
    pub time: TimeSpan,
    /// Energy consumed over the run.
    pub energy: Energy,
    /// Average power over the run.
    pub power: Power,
}

act_json::impl_to_json!(RunResult { time, energy, power });
act_json::impl_from_json!(RunResult { time, energy, power });

/// The outcome of running the whole suite.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteResult {
    /// Geometric-mean performance score across workloads (higher = faster),
    /// scaled to Geekbench-5-like magnitudes.
    pub score: f64,
    /// Total energy over the suite.
    pub energy: Energy,
    /// Per-workload results in suite order.
    pub runs: Vec<RunResult>,
}

act_json::impl_to_json!(SuiteResult { score, energy, runs });
act_json::impl_from_json!(SuiteResult { score, energy, runs });

/// Leakage share of TDP at maximum frequency.
const LEAKAGE_SHARE: f64 = 0.15;

/// A first-order skin-temperature throttling model: phones sustain only a
/// fraction of TDP; workloads longer than the thermal time constant run at
/// a reduced frequency.
///
/// # Examples
///
/// ```
/// use act_soc::ThermalModel;
/// let t = ThermalModel::passive_phone();
/// // Short bursts run unthrottled, long runs are clamped.
/// assert_eq!(t.frequency_cap(1.0), 1.0);
/// assert!(t.frequency_cap(600.0) < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThermalModel {
    /// Fraction of TDP sustainable indefinitely.
    pub sustained_power_fraction: f64,
    /// Seconds of full-power headroom before throttling engages.
    pub burst_seconds: f64,
}

act_json::impl_to_json!(ThermalModel { sustained_power_fraction, burst_seconds });
act_json::impl_from_json!(ThermalModel { sustained_power_fraction, burst_seconds });

impl ThermalModel {
    /// A passively cooled phone: ~60 % of TDP sustained, 30 s of burst.
    #[must_use]
    pub fn passive_phone() -> Self {
        Self { sustained_power_fraction: 0.6, burst_seconds: 30.0 }
    }

    /// The frequency multiplier for a run of `duration_s` seconds. Power
    /// scales ~cubically with frequency, so sustaining a power fraction
    /// `p` means clamping frequency to `p^(1/3)`.
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are out of range.
    #[must_use]
    pub fn frequency_cap(&self, duration_s: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&self.sustained_power_fraction)
                && self.sustained_power_fraction > 0.0,
            "sustained power fraction must be in (0, 1]"
        );
        assert!(self.burst_seconds >= 0.0, "burst window cannot be negative");
        if duration_s <= self.burst_seconds {
            1.0
        } else {
            self.sustained_power_fraction.cbrt()
        }
    }
}

/// Score scale, calibrated so flagship 2020 SoCs land near Geekbench-5
/// multi-core magnitudes.
const SCORE_SCALE: f64 = 2200.0;

/// Memory-limited effective rate in G-instructions/s/core for 2015-era
/// LPDDR3 systems; successive memory generations (LPDDR4/4X/5) raise it.
const MEMORY_RATE_2015: f64 = 1.2;

/// Annual improvement of the memory-limited rate.
const MEMORY_RATE_PER_YEAR: f64 = 0.25;

/// Thread-placement policy across big.LITTLE clusters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Fill the fastest clusters first (performance scheduling).
    #[default]
    BigFirst,
    /// Fill the most efficient (littlest) clusters first (energy
    /// scheduling, as mobile EAS does for background work).
    LittleFirst,
}

act_json::impl_json_enum!(Placement { BigFirst, LittleFirst });

/// A simulator bound to one SoC description.
///
/// # Examples
///
/// ```
/// use act_data::MOBILE_SOCS;
/// use act_soc::{DvfsGovernor, SocSimulator, Workload};
///
/// let sim = SocSimulator::new(&MOBILE_SOCS[0]).with_governor(DvfsGovernor::OnDemand);
/// let run = sim.run(&Workload::new("AES", 8.0, 0.15, 4.0));
/// assert!(run.time.as_seconds() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct SocSimulator {
    soc: &'static SocSpec,
    governor: DvfsGovernor,
    placement: Placement,
    thermal: Option<ThermalModel>,
}

impl SocSimulator {
    /// Binds a simulator to an SoC with the default performance governor
    /// and big-first placement.
    #[must_use]
    pub fn new(soc: &'static SocSpec) -> Self {
        Self {
            soc,
            governor: DvfsGovernor::default(),
            placement: Placement::default(),
            thermal: None,
        }
    }

    /// Enables skin-temperature throttling.
    #[must_use]
    pub fn with_thermal(mut self, thermal: ThermalModel) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// Replaces the DVFS governor.
    #[must_use]
    pub fn with_governor(mut self, governor: DvfsGovernor) -> Self {
        self.governor = governor;
        self
    }

    /// Replaces the thread-placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The SoC under simulation.
    #[must_use]
    pub fn soc(&self) -> &'static SocSpec {
        self.soc
    }

    /// Greedy thread placement per the policy: returns active core counts
    /// per cluster (same order as `soc.clusters`, which lists the biggest
    /// tier first).
    fn schedule(&self, parallelism: f64) -> Vec<f64> {
        let mut remaining = parallelism;
        let mut active = vec![0.0; self.soc.clusters.len()];
        let order: Vec<usize> = match self.placement {
            Placement::BigFirst => (0..self.soc.clusters.len()).collect(),
            Placement::LittleFirst => (0..self.soc.clusters.len()).rev().collect(),
        };
        for idx in order {
            let take = remaining.min(f64::from(self.soc.clusters[idx].count));
            active[idx] = take;
            remaining -= take;
        }
        active
    }

    /// Memory-limited per-core rate for this SoC's generation: memory
    /// technology (LPDDR3 → LPDDR4/4X → LPDDR5) improves year over year.
    fn memory_rate(&self) -> f64 {
        MEMORY_RATE_2015 + MEMORY_RATE_PER_YEAR * f64::from(self.soc.year - 2015)
    }

    /// Effective instruction throughput of one cluster in G-instructions/s:
    /// cores × frequency × IPC, derated by the memory wall (memory-bound
    /// workloads see frequency-insensitive stall time).
    fn cluster_throughput(
        cluster: &ClusterSpec,
        active: f64,
        freq_fraction: f64,
        memory_rate: f64,
        workload: &Workload,
    ) -> f64 {
        if active == 0.0 {
            return 0.0;
        }
        let freq = cluster.freq_ghz * freq_fraction;
        // Memory wall: a fraction `mi` of work is stalls that frequency and
        // IPC do not help; harmonic blend between the compute-limited rate
        // and the generation's memory-limited rate.
        let mi = workload.memory_intensity();
        let compute_rate = freq * cluster.ipc_index;
        let per_core = 1.0 / ((1.0 - mi) / compute_rate + mi / memory_rate);
        active * per_core
    }

    /// Dynamic power of one cluster in arbitrary units (normalized against
    /// TDP below): cores × capacitance-proxy × f³ (voltage tracks
    /// frequency).
    fn cluster_dynamic_units(cluster: &ClusterSpec, active: f64, freq_fraction: f64) -> f64 {
        let width_cost = cluster.ipc_index.powf(1.2);
        active * width_cost * (cluster.freq_ghz * freq_fraction).powi(3)
    }

    /// Runs one workload to completion.
    pub fn run(&self, workload: &Workload) -> RunResult {
        let mut freq_fraction = self.governor.frequency_fraction(workload);
        // Thermal throttling: estimate the unthrottled duration, and clamp
        // frequency if it outlasts the burst window.
        if let Some(thermal) = self.thermal {
            let unthrottled = self.run_at(workload, freq_fraction);
            freq_fraction *= thermal.frequency_cap(unthrottled.time.as_seconds());
        }
        self.run_at(workload, freq_fraction)
    }

    fn run_at(&self, workload: &Workload, freq_fraction: f64) -> RunResult {
        let active = self.schedule(workload.parallelism());

        let memory_rate = self.memory_rate();
        let throughput: f64 = self
            .soc
            .clusters
            .iter()
            .zip(&active)
            .map(|(c, &a)| Self::cluster_throughput(c, a, freq_fraction, memory_rate, workload))
            .sum();
        let time = TimeSpan::seconds(workload.giga_instructions() / throughput);

        // Normalize dynamic power so all-cores-max-frequency dissipates the
        // dynamic share of TDP.
        let max_units: f64 = self
            .soc
            .clusters
            .iter()
            .map(|c| Self::cluster_dynamic_units(c, f64::from(c.count), 1.0))
            .sum();
        let run_units: f64 = self
            .soc
            .clusters
            .iter()
            .zip(&active)
            .map(|(c, &a)| Self::cluster_dynamic_units(c, a, freq_fraction))
            .sum();
        let dynamic = self.soc.tdp() * (1.0 - LEAKAGE_SHARE) * (run_units / max_units);
        let leakage = self.soc.tdp() * LEAKAGE_SHARE;
        let power = dynamic + leakage;

        RunResult { time, energy: power * time, power }
    }

    /// Runs the full suite, returning the geometric-mean score and total
    /// energy.
    ///
    /// # Panics
    ///
    /// Panics if `suite` is empty.
    pub fn run_suite(&self, suite: &[Workload]) -> SuiteResult {
        assert!(!suite.is_empty(), "suite must contain at least one workload");
        let runs: Vec<RunResult> = suite.iter().map(|w| self.run(w)).collect();
        let log_sum: f64 = runs.iter().map(|r| (SCORE_SCALE / r.time.as_seconds()).ln()).sum();
        let score = (log_sum / runs.len() as f64).exp();
        let energy = runs.iter().map(|r| r.energy).sum();
        SuiteResult { score, energy, runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::geekbench_suite;
    use act_data::{SocFamily, MOBILE_SOCS};

    fn by_name(name: &str) -> &'static SocSpec {
        MOBILE_SOCS.iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn scheduling_fills_big_cores_first() {
        let sim = SocSimulator::new(by_name("Snapdragon 865"));
        let active = sim.schedule(2.0);
        assert_eq!(active[0], 1.0); // prime core
        assert_eq!(active[1], 1.0); // one gold core
        assert_eq!(active[2], 0.0); // little cores idle
    }

    #[test]
    fn oversubscription_caps_at_core_count() {
        let sim = SocSimulator::new(by_name("Snapdragon 865"));
        let active = sim.schedule(64.0);
        let total: f64 = active.iter().sum();
        assert_eq!(total, 8.0);
    }

    #[test]
    fn newer_socs_score_higher_within_each_family() {
        let suite = geekbench_suite();
        for family in SocFamily::ALL {
            let mut socs: Vec<_> = MOBILE_SOCS.iter().filter(|s| s.family == family).collect();
            socs.sort_by_key(|s| s.year);
            let scores: Vec<f64> =
                socs.iter().map(|s| SocSimulator::new(s).run_suite(&suite).score).collect();
            for (pair, socs_pair) in scores.windows(2).zip(socs.windows(2)) {
                assert!(
                    pair[1] > pair[0],
                    "{} ({}) should outscore {} ({})",
                    socs_pair[1].name,
                    pair[1],
                    socs_pair[0].name,
                    pair[0]
                );
            }
        }
    }

    #[test]
    fn simulated_scores_track_reference_magnitudes() {
        // The simulator is calibrated against the reference scores: every
        // SoC should land within ±35 % of its database entry.
        let suite = geekbench_suite();
        for soc in &MOBILE_SOCS {
            let score = SocSimulator::new(soc).run_suite(&suite).score;
            let ratio = score / soc.reference_score;
            assert!(
                (0.65..=1.35).contains(&ratio),
                "{}: simulated {score:.0} vs reference {} (ratio {ratio:.2})",
                soc.name,
                soc.reference_score
            );
        }
    }

    #[test]
    fn power_never_exceeds_tdp() {
        let suite = geekbench_suite();
        for soc in &MOBILE_SOCS {
            for run in SocSimulator::new(soc).run_suite(&suite).runs {
                assert!(
                    run.power.as_watts() <= soc.tdp_w + 1e-9,
                    "{} exceeded TDP: {}",
                    soc.name,
                    run.power
                );
            }
        }
    }

    #[test]
    fn memory_bound_work_gains_little_from_frequency() {
        let soc = by_name("Kirin 980");
        let compute = Workload::new("compute", 10.0, 0.0, 4.0);
        let memory = Workload::new("memory", 10.0, 0.9, 4.0);
        let full = SocSimulator::new(soc);
        let slow = SocSimulator::new(soc).with_governor(DvfsGovernor::Fixed(0.6));
        let compute_slowdown =
            slow.run(&compute).time.as_seconds() / full.run(&compute).time.as_seconds();
        let memory_slowdown =
            slow.run(&memory).time.as_seconds() / full.run(&memory).time.as_seconds();
        assert!(compute_slowdown > memory_slowdown);
        assert!(memory_slowdown < 1.15, "memory-bound slowdown {memory_slowdown}");
    }

    #[test]
    fn ondemand_governor_saves_energy_on_memory_bound_work() {
        let soc = by_name("Snapdragon 845");
        let memory = Workload::new("memory", 10.0, 0.8, 4.0);
        let perf = SocSimulator::new(soc).run(&memory);
        let ondemand =
            SocSimulator::new(soc).with_governor(DvfsGovernor::OnDemand).run(&memory);
        assert!(ondemand.energy < perf.energy);
        assert!(ondemand.time >= perf.time);
    }

    #[test]
    fn thermal_throttling_slows_sustained_work_only() {
        let soc = by_name("Snapdragon 865");
        let burst = Workload::new("burst", 5.0, 0.2, 8.0); // sub-second
        let sustained = Workload::new("export", 5000.0, 0.2, 8.0); // minutes
        let cool = SocSimulator::new(soc);
        let hot = SocSimulator::new(soc).with_thermal(ThermalModel::passive_phone());
        assert_eq!(cool.run(&burst).time, hot.run(&burst).time);
        assert!(hot.run(&sustained).time > cool.run(&sustained).time);
        // Throttled runs draw less power.
        assert!(hot.run(&sustained).power < cool.run(&sustained).power);
    }

    #[test]
    fn throttled_frequency_follows_cube_root_of_power_budget() {
        let t = ThermalModel { sustained_power_fraction: 0.512, burst_seconds: 10.0 };
        assert!((t.frequency_cap(100.0) - 0.8).abs() < 1e-12);
        assert_eq!(t.frequency_cap(5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "sustained power fraction")]
    fn bad_thermal_model_rejected() {
        let t = ThermalModel { sustained_power_fraction: 0.0, burst_seconds: 1.0 };
        let _ = t.frequency_cap(10.0);
    }

    #[test]
    fn little_first_placement_prefers_little_cores() {
        let sim =
            SocSimulator::new(by_name("Snapdragon 865")).with_placement(Placement::LittleFirst);
        let active = sim.schedule(3.0);
        assert_eq!(active[2], 3.0, "little cluster should host all threads");
        assert_eq!(active[0] + active[1], 0.0);
    }

    #[test]
    fn little_first_saves_energy_on_memory_bound_background_work() {
        // Background, memory-bound work runs nearly as fast on little
        // cores (the memory wall caps both) at far lower power — the
        // premise of energy-aware scheduling.
        let soc = by_name("Snapdragon 865");
        let background = Workload::new("sync", 6.0, 0.8, 2.0);
        let big = SocSimulator::new(soc).run(&background);
        let little =
            SocSimulator::new(soc).with_placement(Placement::LittleFirst).run(&background);
        assert!(little.energy < big.energy, "little {} vs big {}", little.energy, big.energy);
        // ...while compute-bound foreground work belongs on big cores.
        let foreground = Workload::new("render", 6.0, 0.05, 2.0);
        let big_fg = SocSimulator::new(soc).run(&foreground);
        let little_fg =
            SocSimulator::new(soc).with_placement(Placement::LittleFirst).run(&foreground);
        assert!(big_fg.time < little_fg.time * 0.7);
    }

    #[test]
    fn energy_is_power_times_time() {
        let sim = SocSimulator::new(by_name("Exynos 9820"));
        let run = sim.run(&Workload::new("w", 5.0, 0.3, 4.0));
        let product = run.power * run.time;
        assert!((run.energy.ratio(product) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_suite_rejected() {
        let _ = SocSimulator::new(&MOBILE_SOCS[0]).run_suite(&[]);
    }

    #[test]
    #[should_panic(expected = "fixed DVFS fraction")]
    fn bad_fixed_governor_rejected() {
        let _ = SocSimulator::new(&MOBILE_SOCS[0])
            .with_governor(DvfsGovernor::Fixed(0.0))
            .run(&Workload::new("w", 1.0, 0.1, 1.0));
    }
}
