//! The seven-workload mobile suite, modeled after the Geekbench 5 workloads
//! the paper averages: HTML 5 rendering, AES encryption, text compression,
//! image compression, face detection, speech recognition and AI-based image
//! classification.

/// An abstract mobile workload.
///
/// * `giga_instructions` — total dynamic instruction volume,
/// * `memory_intensity` — 0 (pure compute) to 1 (memory bound); memory-bound
///   work gains little from core width or frequency,
/// * `parallelism` — how many hardware threads the workload can keep busy.
///
/// # Examples
///
/// ```
/// use act_soc::Workload;
/// let aes = Workload::new("AES", 8.0, 0.15, 4.0);
/// assert_eq!(aes.name(), "AES");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    name: String,
    giga_instructions: f64,
    memory_intensity: f64,
    parallelism: f64,
}

act_json::impl_to_json!(Workload { name, giga_instructions, memory_intensity, parallelism });
act_json::impl_from_json!(Workload { name, giga_instructions, memory_intensity, parallelism });

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if the instruction volume or parallelism is not positive, or
    /// the memory intensity is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        giga_instructions: f64,
        memory_intensity: f64,
        parallelism: f64,
    ) -> Self {
        assert!(giga_instructions > 0.0, "instruction volume must be positive");
        assert!((0.0..=1.0).contains(&memory_intensity), "memory intensity must be in [0, 1]");
        assert!(parallelism >= 1.0, "parallelism must be at least one thread");
        Self { name: name.into(), giga_instructions, memory_intensity, parallelism }
    }

    /// Workload label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total dynamic instructions, in billions.
    #[must_use]
    pub fn giga_instructions(&self) -> f64 {
        self.giga_instructions
    }

    /// Memory-boundedness in `[0, 1]`.
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        self.memory_intensity
    }

    /// Exploitable hardware threads.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        self.parallelism
    }
}

/// The seven-workload suite mirroring the paper's Geekbench 5 selection.
#[must_use]
pub fn geekbench_suite() -> Vec<Workload> {
    vec![
        Workload::new("HTML5 rendering", 12.0, 0.55, 2.0),
        Workload::new("AES encryption", 8.0, 0.15, 4.0),
        Workload::new("Text compression", 10.0, 0.45, 4.0),
        Workload::new("Image compression", 14.0, 0.30, 6.0),
        Workload::new("Face detection", 16.0, 0.35, 6.0),
        Workload::new("Speech recognition", 15.0, 0.50, 3.0),
        Workload::new("Image classification", 20.0, 0.40, 8.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_workloads() {
        let suite = geekbench_suite();
        assert_eq!(suite.len(), 7);
        let names: Vec<_> = suite.iter().map(Workload::name).collect();
        assert!(names.contains(&"AES encryption"));
        assert!(names.contains(&"Image classification"));
    }

    #[test]
    fn suite_spans_compute_and_memory_bound_work() {
        let suite = geekbench_suite();
        assert!(suite.iter().any(|w| w.memory_intensity() < 0.2));
        assert!(suite.iter().any(|w| w.memory_intensity() > 0.5));
        assert!(suite.iter().any(|w| w.parallelism() >= 8.0));
        assert!(suite.iter().any(|w| w.parallelism() <= 2.0));
    }

    #[test]
    #[should_panic(expected = "memory intensity")]
    fn invalid_memory_intensity_rejected() {
        let _ = Workload::new("bad", 1.0, 1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn invalid_parallelism_rejected() {
        let _ = Workload::new("bad", 1.0, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "instruction volume")]
    fn invalid_volume_rejected() {
        let _ = Workload::new("bad", 0.0, 0.5, 1.0);
    }
}
