//! The Figure 14 (right) replacement model: how hardware lifetime trades
//! embodied against operational emissions over a deployment horizon.

use act_units::UnitError;

/// Models a user who always owns one device over a fixed horizon, replacing
/// it every `lifetime` years with the then-current generation. Longer
/// lifetimes amortize embodied carbon over more years but forfeit the
/// annual energy-efficiency improvements of newer hardware.
///
/// Footprints are expressed relative to the first device's first-year
/// operational carbon, so only the ratio between embodied-per-device and
/// that quantity matters.
///
/// # Examples
///
/// ```
/// use act_soc::ReplacementModel;
///
/// let model = ReplacementModel::mobile_study(1.21);
/// // The paper finds the optimum around 5 years over a 10-year horizon.
/// assert_eq!(model.optimal_lifetime_years(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplacementModel {
    /// Deployment horizon in whole years.
    pub horizon_years: u32,
    /// Embodied carbon per device, in units of the first device's
    /// first-year operational carbon.
    pub embodied_per_device: f64,
    /// Annual energy-efficiency improvement factor of new hardware
    /// (e.g. 1.21 = 21 %/year).
    pub improvement_rate: f64,
}

act_json::impl_to_json!(ReplacementModel {
    horizon_years,
    embodied_per_device,
    improvement_rate
});
act_json::impl_from_json!(ReplacementModel {
    horizon_years,
    embodied_per_device,
    improvement_rate
});

impl ReplacementModel {
    /// The paper's mobile study: a 10-year horizon with mobile-IC embodied
    /// carbon ≈ 1.6× the first year's operational carbon, and the measured
    /// efficiency trend.
    ///
    /// # Panics
    ///
    /// Panics if `improvement_rate <= 1.0`. Use [`Self::try_mobile_study`]
    /// for user-supplied rates.
    #[must_use]
    pub fn mobile_study(improvement_rate: f64) -> Self {
        assert!(improvement_rate > 1.0, "hardware must improve for the study to be meaningful");
        Self { horizon_years: 10, embodied_per_device: 1.58, improvement_rate }
    }

    /// Checked variant of [`Self::mobile_study`].
    ///
    /// # Errors
    ///
    /// Returns a [`UnitError`] if `improvement_rate` is NaN, infinite or not
    /// above one.
    pub fn try_mobile_study(improvement_rate: f64) -> Result<Self, UnitError> {
        if !improvement_rate.is_finite() {
            return Err(UnitError::non_finite("efficiency improvement rate", improvement_rate));
        }
        if improvement_rate <= 1.0 {
            return Err(UnitError::out_of_domain(
                "efficiency improvement rate",
                improvement_rate,
                "above 1.0",
            ));
        }
        Ok(Self::mobile_study(improvement_rate))
    }

    /// Validates the model: a positive horizon, a finite non-negative
    /// embodied share, and an improvement rate above one.
    ///
    /// # Errors
    ///
    /// Returns a [`UnitError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), UnitError> {
        if self.horizon_years == 0 {
            return Err(UnitError::out_of_domain(
                "deployment horizon",
                0.0,
                "at least one year",
            ));
        }
        if !self.embodied_per_device.is_finite() {
            return Err(UnitError::non_finite(
                "embodied carbon per device",
                self.embodied_per_device,
            ));
        }
        if self.embodied_per_device < 0.0 {
            return Err(UnitError::out_of_domain(
                "embodied carbon per device",
                self.embodied_per_device,
                "a finite, non-negative number",
            ));
        }
        if !self.improvement_rate.is_finite() {
            return Err(UnitError::non_finite(
                "efficiency improvement rate",
                self.improvement_rate,
            ));
        }
        if self.improvement_rate <= 1.0 {
            return Err(UnitError::out_of_domain(
                "efficiency improvement rate",
                self.improvement_rate,
                "above 1.0",
            ));
        }
        Ok(())
    }

    /// Number of devices consumed when replacing every `lifetime_years`.
    #[must_use]
    pub fn devices_needed(&self, lifetime_years: u32) -> u32 {
        assert!(lifetime_years > 0, "lifetime must be at least one year");
        self.horizon_years.div_ceil(lifetime_years)
    }

    /// Total embodied carbon over the horizon (relative units).
    #[must_use]
    pub fn embodied_total(&self, lifetime_years: u32) -> f64 {
        f64::from(self.devices_needed(lifetime_years)) * self.embodied_per_device
    }

    /// Total operational carbon over the horizon (relative units): each
    /// device generation runs the same workload at the efficiency of its
    /// purchase year.
    #[must_use]
    pub fn operational_total(&self, lifetime_years: u32) -> f64 {
        assert!(lifetime_years > 0, "lifetime must be at least one year");
        let mut total = 0.0;
        let mut year = 0;
        while year < self.horizon_years {
            let span = lifetime_years.min(self.horizon_years - year);
            let generation_efficiency = self.improvement_rate.powi(year as i32);
            total += f64::from(span) / generation_efficiency;
            year += span;
        }
        total
    }

    /// Combined footprint over the horizon (relative units).
    #[must_use]
    pub fn total(&self, lifetime_years: u32) -> f64 {
        self.embodied_total(lifetime_years) + self.operational_total(lifetime_years)
    }

    /// The lifetime in `1..=horizon` minimizing the combined footprint.
    #[must_use]
    pub fn optimal_lifetime_years(&self) -> u32 {
        (1..=self.horizon_years)
            .min_by(|a, b| self.total(*a).total_cmp(&self.total(*b)))
            .unwrap_or(1)
    }

    /// Checked variant of [`Self::optimal_lifetime_years`]: validates the
    /// model first, so a deserialized degenerate configuration reports an
    /// error instead of returning a meaningless optimum.
    ///
    /// # Errors
    ///
    /// Returns a [`UnitError`] if the model does not [`validate`](Self::validate).
    pub fn try_optimal_lifetime_years(&self) -> Result<u32, UnitError> {
        self.validate()?;
        Ok(self.optimal_lifetime_years())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReplacementModel {
        ReplacementModel::mobile_study(1.21)
    }

    #[test]
    fn device_counts() {
        let m = model();
        assert_eq!(m.devices_needed(1), 10);
        assert_eq!(m.devices_needed(3), 4);
        assert_eq!(m.devices_needed(5), 2);
        assert_eq!(m.devices_needed(10), 1);
    }

    #[test]
    fn embodied_falls_with_longer_lifetimes() {
        let m = model();
        let mut last = f64::INFINITY;
        for lt in 1..=10 {
            let e = m.embodied_total(lt);
            assert!(e <= last, "embodied should not rise with lifetime");
            last = e;
        }
    }

    #[test]
    fn operational_rises_with_longer_lifetimes() {
        let m = model();
        let mut last = 0.0;
        for lt in 1..=10 {
            let o = m.operational_total(lt);
            assert!(o >= last, "operational should not fall with lifetime");
            last = o;
        }
    }

    #[test]
    fn paper_optimum_is_five_years() {
        assert_eq!(model().optimal_lifetime_years(), 5);
    }

    #[test]
    fn five_years_beats_current_lifetimes_by_about_1_26x() {
        // "Compared to current lifetimes of 2-3 years ... reduce overall
        // carbon footprint by up to 1.26x."
        let m = model();
        let current = (m.total(2) + m.total(3)) / 2.0;
        let ratio = current / m.total(5);
        assert!((1.15..=1.40).contains(&ratio), "improvement {ratio}");
    }

    #[test]
    fn optimum_is_robust_across_measured_trend_band() {
        for rate in [1.17, 1.19, 1.21, 1.23] {
            let m = ReplacementModel::mobile_study(rate);
            let opt = m.optimal_lifetime_years();
            assert!((4..=6).contains(&opt), "rate {rate} -> optimum {opt}");
        }
    }

    #[test]
    fn faster_improvement_favors_shorter_lifetimes() {
        let slow = ReplacementModel::mobile_study(1.05);
        let fast = ReplacementModel::mobile_study(1.60);
        assert!(slow.optimal_lifetime_years() >= fast.optimal_lifetime_years());
    }

    #[test]
    fn one_year_horizon_is_trivial() {
        let m = ReplacementModel { horizon_years: 1, ..model() };
        assert_eq!(m.optimal_lifetime_years(), 1);
    }

    #[test]
    #[should_panic(expected = "lifetime must be at least one year")]
    fn zero_lifetime_rejected() {
        let _ = model().total(0);
    }

    #[test]
    #[should_panic(expected = "must improve")]
    fn degenerate_improvement_rejected() {
        let _ = ReplacementModel::mobile_study(1.0);
    }

    #[test]
    fn try_mobile_study_errors_instead_of_panicking() {
        assert_eq!(
            ReplacementModel::try_mobile_study(1.21).unwrap(),
            ReplacementModel::mobile_study(1.21)
        );
        assert!(ReplacementModel::try_mobile_study(1.0).is_err());
        assert!(ReplacementModel::try_mobile_study(f64::NAN).is_err());
    }

    #[test]
    fn try_optimum_validates_first() {
        assert_eq!(model().try_optimal_lifetime_years().unwrap(), 5);
        let degenerate = ReplacementModel { horizon_years: 0, ..model() };
        assert!(degenerate.try_optimal_lifetime_years().is_err());
        let poisoned = ReplacementModel { embodied_per_device: f64::NAN, ..model() };
        assert!(poisoned.try_optimal_lifetime_years().is_err());
    }
}
