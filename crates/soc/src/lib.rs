//! A mobile-SoC performance/energy simulator: the substrate that replaces
//! the paper's Geekbench measurements on physical phones.
//!
//! Figure 8 and Figure 14 of the ACT paper are driven by measured mobile
//! workloads. We do not have racks of phones, so this crate simulates the
//! seven-workload suite analytically: each [`Workload`] carries an
//! instruction volume, a memory intensity (how quickly extra frequency stops
//! helping) and a thread-level parallelism; each SoC is its
//! [`act_data::SocSpec`] cluster configuration. The simulator schedules
//! threads over clusters (big cores first), applies a DVFS governor, derates
//! throughput by the memory wall, and integrates a dynamic + leakage power
//! model normalized to the SoC's TDP.
//!
//! The absolute numbers are synthetic; what the substitution preserves — and
//! what the tests pin — are the *relative* generational trends the paper's
//! figures rely on: newer SoCs in a family are faster, energy efficiency
//! improves ~20 % per year, and big.LITTLE scheduling behaves sanely.
//!
//! # Examples
//!
//! ```
//! use act_data::MOBILE_SOCS;
//! use act_soc::{geekbench_suite, SocSimulator};
//!
//! let sim = SocSimulator::new(&MOBILE_SOCS[0]);
//! let result = sim.run_suite(&geekbench_suite());
//! assert!(result.score > 0.0);
//! assert!(result.energy.as_joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lifetime;
mod sim;
mod trend;
mod workload;

pub use lifetime::ReplacementModel;
pub use sim::{DvfsGovernor, Placement, RunResult, SocSimulator, SuiteResult, ThermalModel};
pub use trend::annual_efficiency_improvement;
pub use workload::{geekbench_suite, Workload};
