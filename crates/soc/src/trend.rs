//! The Figure 14 (left) efficiency trend: annual energy-efficiency
//! improvement across mobile SoC generations.

use act_data::SocSpec;

/// Fits `ln(efficiency) = a + r·year` across the SoCs by least squares and
/// returns the annual improvement factor `e^r` (the paper reports ≈1.21×).
///
/// # Panics
///
/// Panics if fewer than two distinct years are present.
///
/// # Examples
///
/// ```
/// use act_data::MOBILE_SOCS;
/// use act_soc::annual_efficiency_improvement;
///
/// let rate = annual_efficiency_improvement(&MOBILE_SOCS);
/// assert!(rate > 1.1 && rate < 1.35);
/// ```
#[must_use]
pub fn annual_efficiency_improvement(socs: &[SocSpec]) -> f64 {
    assert!(socs.len() >= 2, "need at least two SoCs to fit a trend");
    let n = socs.len() as f64;
    let mean_x = socs.iter().map(|s| f64::from(s.year)).sum::<f64>() / n;
    let mean_y = socs.iter().map(|s| s.efficiency_score().ln()).sum::<f64>() / n;
    let (mut sxy, mut sxx) = (0.0, 0.0);
    for s in socs {
        let dx = f64::from(s.year) - mean_x;
        let dy = s.efficiency_score().ln() - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
    }
    assert!(sxx > 0.0, "need at least two distinct release years");
    (sxy / sxx).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_data::MOBILE_SOCS;

    #[test]
    fn matches_papers_21_percent_band() {
        let rate = annual_efficiency_improvement(&MOBILE_SOCS);
        assert!(
            (1.12..=1.30).contains(&rate),
            "annual efficiency improvement {rate} outside the paper's band"
        );
    }

    #[test]
    fn trend_is_an_improvement() {
        assert!(annual_efficiency_improvement(&MOBILE_SOCS) > 1.0);
    }

    #[test]
    #[should_panic(expected = "distinct release years")]
    fn same_year_socs_rejected() {
        let same_year: Vec<_> =
            MOBILE_SOCS.iter().filter(|s| s.year == 2019).copied().collect();
        let _ = annual_efficiency_improvement(&same_year);
    }

    #[test]
    #[should_panic(expected = "at least two SoCs")]
    fn single_soc_rejected() {
        let _ = annual_efficiency_improvement(&MOBILE_SOCS[..1]);
    }
}
