//! Golden bit-identity: compiling a committed JSON fixture of a built-in
//! device produces the **exact** embodied footprint — total and per
//! component, compared by `f64::to_bits` — as compiling the Rust
//! constant through [`SystemSpec::from_bom`]. This pins the scenario
//! compiler to the constant path: both must replay the same builder fold
//! in the same order, or these tests fail on the first differing bit.

use act_core::{FabScenario, SystemSpec};
use act_data::{devices, scenarios};
use act_scenario::Scenario;

/// Every fixture parses, compiles, and matches its oracle bit-for-bit.
#[test]
fn every_fixture_is_bitwise_identical_to_the_constant_path() {
    let fab = FabScenario::default();
    assert_eq!(devices::ALL.len(), scenarios::ALL.len());
    for (bom, doc) in devices::ALL.iter().zip(scenarios::ALL) {
        let scenario = Scenario::parse(doc)
            .unwrap_or_else(|err| panic!("fixture for {} failed to parse: {err}", bom.name));
        assert_eq!(scenario.name, bom.name, "fixture/constant name mismatch");

        let compiled = scenario
            .compile()
            .unwrap_or_else(|err| panic!("fixture for {} failed to compile: {err}", bom.name));
        let oracle = SystemSpec::from_bom(bom)
            .try_embodied(&fab)
            .unwrap_or_else(|err| panic!("oracle for {} failed: {err}", bom.name));

        // Total, compared by bits — approximate equality would hide a
        // reordered fold.
        assert_eq!(
            compiled.embodied_grams().to_bits(),
            oracle.total().as_grams().to_bits(),
            "{}: embodied total differs from the constant path",
            bom.name
        );

        // And per component: same count, same labels, same bits.
        let compiled_parts: Vec<_> = compiled.embodied().components().collect();
        let oracle_parts: Vec<_> = oracle.components().collect();
        assert_eq!(compiled_parts.len(), oracle_parts.len(), "{}: component count", bom.name);
        for (ours, theirs) in compiled_parts.iter().zip(&oracle_parts) {
            assert_eq!(ours.label, theirs.label, "{}: component label", bom.name);
            assert_eq!(
                ours.kind, theirs.kind,
                "{}: component kind for {}",
                bom.name, ours.label
            );
            assert_eq!(
                ours.footprint.as_grams().to_bits(),
                theirs.footprint.as_grams().to_bits(),
                "{}: footprint bits for {}",
                bom.name,
                ours.label
            );
        }
    }
}

/// The fixture corpus also matches under a non-default fab profile, so
/// the equivalence is structural, not an artifact of one parameter set.
#[test]
fn fixtures_match_the_constant_path_under_alternate_fabs() {
    for fab in [FabScenario::coal(), FabScenario::renewable()] {
        for (bom, doc) in devices::ALL.iter().zip(scenarios::ALL) {
            let mut scenario = Scenario::parse(doc).expect("fixture parses");
            scenario.fab = Some(fab);
            let compiled = scenario.compile().expect("fixture compiles");
            let oracle = SystemSpec::from_bom(bom).try_embodied(&fab).expect("oracle");
            assert_eq!(
                compiled.embodied_grams().to_bits(),
                oracle.total().as_grams().to_bits(),
                "{}: embodied total differs under alternate fab",
                bom.name
            );
        }
    }
}
