//! Fleet Monte-Carlo contract tests: thread-count bit-identity, the
//! point-distribution ↔ single-device consistency law, rejection
//! accounting, deadline prefix determinism, and compile-time validation
//! of fleet blocks.

use std::time::{Duration, Instant};

use act_dse::{BatchRun, EvalBudget, McBuffer, McError};
use act_scenario::{Scenario, ScenarioError};

/// A phone-class scenario with genuinely random distributions.
fn fleet_doc() -> &'static str {
    r#"{
        "name": "handset fleet",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 98.5, "count": 1}],
        "dram": [{"technology": "Lpddr4", "capacity_gb": 4.0}],
        "ssd": [{"technology": "V3NandTlc", "capacity_gb": 64.0}],
        "packaged_ic_count": 30,
        "workload": {
            "power_w": 2.5, "utilization": 0.15,
            "lifetime_years": 3.0, "use_intensity_g_per_kwh": 301.0
        },
        "fleet": {
            "devices": 1000000, "samples": 4096, "seed": 7,
            "lifetime_years": {"dist": "triangular", "low": 1.0, "mode": 3.0, "high": 6.0},
            "use_intensity_g_per_kwh": {"dist": "normal", "mean": 301.0, "std_dev": 80.0},
            "utilization": {"dist": "uniform", "low": 0.05, "high": 0.3}
        }
    }"#
}

/// Sharding is a scheduling decision, never a numerical one: the serial
/// and 8-thread runs agree on every statistic and every draw, bit for
/// bit.
#[test]
fn fleet_outcome_is_bit_identical_across_thread_counts() {
    let compiled = Scenario::parse(fleet_doc()).expect("parse").compile().expect("compile");
    let fleet = compiled.fleet().expect("fleet block");
    let budget = EvalBudget::unlimited();

    let mut serial_buf = McBuffer::new();
    let (serial, run) = fleet.run(1, &mut serial_buf, &budget).expect("serial run");
    assert_eq!(run, BatchRun::Completed);

    let mut par_buf = McBuffer::new();
    let (par, run) = fleet.run(8, &mut par_buf, &budget).expect("parallel run");
    assert_eq!(run, BatchRun::Completed);

    assert_eq!(serial.stats.mean.to_bits(), par.stats.mean.to_bits());
    assert_eq!(serial.stats.p05.to_bits(), par.stats.p05.to_bits());
    assert_eq!(serial.stats.p50.to_bits(), par.stats.p50.to_bits());
    assert_eq!(serial.stats.p95.to_bits(), par.stats.p95.to_bits());
    assert_eq!(serial.stats.samples, par.stats.samples);
    assert_eq!(serial.rejected, par.rejected);
    assert_eq!(serial_buf.draws().len(), par_buf.draws().len());
    for (i, (a, b)) in serial_buf.draws().iter().zip(par_buf.draws()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
            "draw {i} diverged: {a} vs {b}"
        );
    }
    // The fleet total scales the per-device mean; with a million devices
    // it must dwarf a single handset's footprint.
    assert!(fleet.fleet_total_grams(&serial) > serial.stats.mean * 1e5);
}

/// Point distributions pin every draw to the workload's values, so each
/// Monte-Carlo sample reproduces the single-device footprint exactly —
/// the fleet path and the device path are the same kernel.
#[test]
fn point_distributions_reproduce_the_device_footprint_bitwise() {
    let doc = r#"{
        "name": "degenerate fleet",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 98.5, "count": 1}],
        "packaged_ic_count": 30,
        "workload": {
            "power_w": 2.5, "utilization": 0.15,
            "lifetime_years": 3.0, "use_intensity_g_per_kwh": 301.0
        },
        "fleet": {
            "devices": 50, "samples": 257, "seed": 1,
            "lifetime_years": {"dist": "point", "value": 3.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 301.0},
            "utilization": {"dist": "point", "value": 0.15}
        }
    }"#;
    let compiled = Scenario::parse(doc).expect("parse").compile().expect("compile");
    let device = compiled.device().expect("device footprint");
    let fleet = compiled.fleet().expect("fleet block");

    let mut buf = McBuffer::new();
    let (outcome, _) = fleet.run(1, &mut buf, &EvalBudget::unlimited()).expect("run");
    assert_eq!(outcome.rejected, 0);
    for (i, draw) in buf.draws().iter().enumerate() {
        assert_eq!(
            draw.to_bits(),
            device.total_g.to_bits(),
            "sample {i} diverged from the device footprint"
        );
    }
}

/// Out-of-range draws (a wide normal's tail) are counted as rejections;
/// the surviving statistics stay finite.
#[test]
fn out_of_range_draws_are_rejected_not_poisoned() {
    let doc = r#"{
        "name": "noisy fleet",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 50.0, "count": 1}],
        "packaged_ic_count": 8,
        "workload": {
            "power_w": 1.0, "utilization": 0.5,
            "lifetime_years": 3.0, "use_intensity_g_per_kwh": 300.0
        },
        "fleet": {
            "devices": 10, "samples": 2048, "seed": 42,
            "lifetime_years": {"dist": "normal", "mean": 3.0, "std_dev": 10.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 300.0},
            "utilization": {"dist": "point", "value": 0.5}
        }
    }"#;
    let compiled = Scenario::parse(doc).expect("parse").compile().expect("compile");
    let fleet = compiled.fleet().expect("fleet block");
    let mut buf = McBuffer::new();
    let (outcome, _) = fleet.run(1, &mut buf, &EvalBudget::unlimited()).expect("run");
    assert!(outcome.rejected > 0, "a std_dev-10 normal must throw tails outside [0.1, 50]");
    assert!(outcome.stats.samples + outcome.rejected == 2048);
    for stat in [outcome.stats.mean, outcome.stats.p05, outcome.stats.p50, outcome.stats.p95] {
        assert!(stat.is_finite());
    }
}

/// A distribution whose entire support is out of range rejects every
/// draw and surfaces as the typed `AllRejected` error, never a panic.
#[test]
fn fully_out_of_range_support_is_all_rejected() {
    let doc = r#"{
        "name": "broken fleet",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 50.0, "count": 1}],
        "packaged_ic_count": 8,
        "workload": {
            "power_w": 1.0, "utilization": 0.5,
            "lifetime_years": 3.0, "use_intensity_g_per_kwh": 300.0
        },
        "fleet": {
            "devices": 10, "samples": 64, "seed": 3,
            "lifetime_years": {"dist": "point", "value": 100.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 300.0},
            "utilization": {"dist": "point", "value": 0.5}
        }
    }"#;
    let compiled = Scenario::parse(doc).expect("parse").compile().expect("compile");
    let fleet = compiled.fleet().expect("fleet block");
    let mut buf = McBuffer::new();
    let err = fleet.run(1, &mut buf, &EvalBudget::unlimited()).expect_err("must reject all");
    assert!(matches!(err, McError::AllRejected { rejected: 64 }), "got {err:?}");
}

/// A deadline that expires mid-run completes a prefix, and that prefix
/// is bitwise identical to the unlimited run — the budget changes how
/// far we get, never what we compute.
#[test]
fn deadline_cutoff_yields_a_bitwise_prefix() {
    let doc = fleet_doc().replace("\"samples\": 4096", "\"samples\": 400000");
    let compiled = Scenario::parse(&doc).expect("parse").compile().expect("compile");
    let fleet = compiled.fleet().expect("fleet block");

    let mut reference = McBuffer::new();
    let (_, run) = fleet.run(1, &mut reference, &EvalBudget::unlimited()).expect("reference");
    assert_eq!(run, BatchRun::Completed);

    let deadline = Instant::now() + Duration::from_micros(500);
    let budget = EvalBudget::with_deadline(deadline).check_every(64);
    let mut clipped = McBuffer::new();
    match fleet.run(1, &mut clipped, &budget) {
        Ok((outcome, run)) => {
            let completed = match run {
                BatchRun::Completed => 400_000,
                BatchRun::DeadlineExceeded { completed } => completed,
            };
            assert_eq!(outcome.stats.samples + outcome.rejected, completed);
            for (i, (got, want)) in
                clipped.draws().iter().zip(&reference.draws()[..completed]).enumerate()
            {
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "prefix diverged at sample {i}"
                );
            }
        }
        // The deadline can expire before the first block on a loaded
        // machine; that is the documented NoSamples path, not a failure.
        Err(McError::NoSamples) => {}
        Err(other) => panic!("unexpected error: {other:?}"),
    }
}

/// Fleet blocks are rejected at compile time without a workload and with
/// malformed distributions.
#[test]
fn fleet_validation_rejects_bad_blocks_with_typed_errors() {
    let no_workload = r#"{
        "name": "x",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 50.0, "count": 1}],
        "packaged_ic_count": 8,
        "fleet": {
            "devices": 10, "samples": 64,
            "lifetime_years": {"dist": "point", "value": 3.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 300.0},
            "utilization": {"dist": "point", "value": 0.5}
        }
    }"#;
    let err = Scenario::parse(no_workload).expect("parse").compile().expect_err("no workload");
    assert!(matches!(err, ScenarioError::Invalid { field: "fleet", .. }), "{err}");

    let bad_dist = r#"{
        "name": "x",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 50.0, "count": 1}],
        "packaged_ic_count": 8,
        "workload": {
            "power_w": 1.0, "utilization": 0.5,
            "lifetime_years": 3.0, "use_intensity_g_per_kwh": 300.0
        },
        "fleet": {
            "devices": 10, "samples": 64,
            "lifetime_years": {"dist": "triangular", "low": 5.0, "mode": 2.0, "high": 1.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 300.0},
            "utilization": {"dist": "point", "value": 0.5}
        }
    }"#;
    let err = Scenario::parse(bad_dist).expect("parse").compile().expect_err("bad triangular");
    assert!(
        matches!(err, ScenarioError::Invalid { field: "fleet.lifetime_years", .. }),
        "{err}"
    );

    let zero_samples = r#"{
        "name": "x",
        "chips": [{"name": "SoC", "node": "N7", "area_mm2": 50.0, "count": 1}],
        "packaged_ic_count": 8,
        "workload": {
            "power_w": 1.0, "utilization": 0.5,
            "lifetime_years": 3.0, "use_intensity_g_per_kwh": 300.0
        },
        "fleet": {
            "devices": 10, "samples": 0,
            "lifetime_years": {"dist": "point", "value": 3.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 300.0},
            "utilization": {"dist": "point", "value": 0.5}
        }
    }"#;
    let err =
        Scenario::parse(zero_samples).expect("parse").compile().expect_err("zero samples");
    assert!(matches!(err, ScenarioError::Invalid { field: "fleet.samples", .. }), "{err}");
}
