//! Typed JSON schema for scenario documents.
//!
//! Leaf records (chips, memory populations, workloads) derive their
//! parsers with [`act_json::impl_from_json!`], so every listed field is
//! required and type-checked. [`Scenario`], [`FleetSpec`], and
//! [`Distribution`] parse manually because they carry optional sections
//! (`fab`, `workload`, `fleet`, `seed`) or a tagged-union shape.
//!
//! The schema is deliberately the same vocabulary as
//! [`act_data::devices`]: a committed fixture of a built-in teardown is a
//! field-for-field transcription of the Rust constant, which is what lets
//! the golden tests pin bitwise equality between the two paths.

use act_core::FabScenario;
use act_data::{DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_json::{FromJson, JsonError, JsonValue};

use crate::compile::ScenarioError;

/// One logic die population: mirrors [`act_data::devices::ChipEntry`].
///
/// `area_mm2` is the **total** silicon area across all `count` units —
/// the same convention the teardown tables use — so the embodied model
/// charges the area once and `count` stays descriptive (packaging is
/// covered separately by [`Scenario::packaged_ic_count`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ChipSpec {
    /// Human-readable die label (carried into the embodied report).
    pub name: String,
    /// Process node the die is fabbed on.
    pub node: ProcessNode,
    /// Total die area across all units, mm².
    pub area_mm2: f64,
    /// Number of physical units (descriptive; see struct docs).
    pub count: u32,
}

act_json::impl_from_json!(ChipSpec { name, node, area_mm2, count });
act_json::impl_to_json!(ChipSpec { name, node, area_mm2, count });

/// One DRAM population entry (technology, GB).
#[derive(Clone, Debug, PartialEq)]
pub struct DramSpec {
    /// DRAM technology class (Table 9 row).
    pub technology: DramTechnology,
    /// Capacity in gigabytes.
    pub capacity_gb: f64,
}

act_json::impl_from_json!(DramSpec { technology, capacity_gb });
act_json::impl_to_json!(DramSpec { technology, capacity_gb });

/// One SSD/NAND population entry (technology, GB).
#[derive(Clone, Debug, PartialEq)]
pub struct SsdSpec {
    /// NAND technology class (Table 10 row).
    pub technology: SsdTechnology,
    /// Capacity in gigabytes.
    pub capacity_gb: f64,
}

act_json::impl_from_json!(SsdSpec { technology, capacity_gb });
act_json::impl_to_json!(SsdSpec { technology, capacity_gb });

/// One HDD population entry (model, GB).
#[derive(Clone, Debug, PartialEq)]
pub struct HddSpec {
    /// Drive model (Table 11 row).
    pub model: HddModel,
    /// Capacity in gigabytes.
    pub capacity_gb: f64,
}

act_json::impl_from_json!(HddSpec { model, capacity_gb });
act_json::impl_to_json!(HddSpec { model, capacity_gb });

/// Use-phase workload: average draw, duty cycle, service life, and grid
/// carbon intensity. All four fields are required when the section is
/// present.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Average power draw while active, watts.
    pub power_w: f64,
    /// Duty cycle in `[0, 1]`.
    pub utilization: f64,
    /// Service lifetime `LT`, years (Table 1 range `[0.1, 50]`).
    pub lifetime_years: f64,
    /// Use-phase grid carbon intensity `CIuse`, g CO₂/kWh.
    pub use_intensity_g_per_kwh: f64,
}

act_json::impl_from_json!(Workload {
    power_w,
    utilization,
    lifetime_years,
    use_intensity_g_per_kwh
});
act_json::impl_to_json!(Workload {
    power_w,
    utilization,
    lifetime_years,
    use_intensity_g_per_kwh
});

/// A univariate distribution for a fleet parameter, tagged by `"dist"`:
///
/// ```json
/// {"dist": "point", "value": 3.0}
/// {"dist": "uniform", "low": 2.0, "high": 4.0}
/// {"dist": "triangular", "low": 2.0, "mode": 3.0, "high": 5.0}
/// {"dist": "normal", "mean": 3.0, "std_dev": 0.5}
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Distribution {
    /// Degenerate distribution: every draw is `value`.
    Point {
        /// The constant value.
        value: f64,
    },
    /// Uniform over `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound; must exceed `low`.
        high: f64,
    },
    /// Triangular over `[low, high]` peaking at `mode`.
    Triangular {
        /// Lower bound.
        low: f64,
        /// Peak; must satisfy `low <= mode <= high`.
        mode: f64,
        /// Upper bound; must exceed `low`.
        high: f64,
    },
    /// Normal with the given mean and (positive) standard deviation.
    Normal {
        /// Distribution mean.
        mean: f64,
        /// Standard deviation; must be finite and positive.
        std_dev: f64,
    },
}

impl Distribution {
    fn field(value: &JsonValue, name: &str) -> Result<f64, JsonError> {
        let field = value.get(name).ok_or_else(|| JsonError::missing_field(name))?;
        f64::from_json(field)
    }

    /// Checks the distribution's *shape* (finite, ordered parameters).
    /// Range conformance against Table 1 is enforced per draw by the
    /// fleet sampler, which rejects out-of-range values as NaN.
    pub(crate) fn validate(&self, field: &'static str) -> Result<(), ScenarioError> {
        let ok = match *self {
            Self::Point { value } => value.is_finite(),
            Self::Uniform { low, high } => low.is_finite() && high.is_finite() && low < high,
            Self::Triangular { low, mode, high } => {
                low.is_finite()
                    && mode.is_finite()
                    && high.is_finite()
                    && low < high
                    && (low..=high).contains(&mode)
            }
            Self::Normal { mean, std_dev } => {
                mean.is_finite() && std_dev.is_finite() && std_dev > 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ScenarioError::invalid(
                field,
                format!("invalid distribution parameters: {self:?}"),
            ))
        }
    }
}

impl FromJson for Distribution {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let tag = value.get("dist").ok_or_else(|| JsonError::missing_field("dist"))?;
        let Some(kind) = tag.as_str() else {
            return Err(JsonError::type_mismatch("distribution tag string", tag));
        };
        match kind {
            "point" => Ok(Self::Point { value: Self::field(value, "value")? }),
            "uniform" => Ok(Self::Uniform {
                low: Self::field(value, "low")?,
                high: Self::field(value, "high")?,
            }),
            "triangular" => Ok(Self::Triangular {
                low: Self::field(value, "low")?,
                mode: Self::field(value, "mode")?,
                high: Self::field(value, "high")?,
            }),
            "normal" => Ok(Self::Normal {
                mean: Self::field(value, "mean")?,
                std_dev: Self::field(value, "std_dev")?,
            }),
            other => Err(JsonError::new(format!(
                "unknown distribution `{other}` (expected point, uniform, triangular, or normal)"
            ))),
        }
    }
}

/// Fleet block: scales the device model to `devices` units, with
/// per-device lifetime, grid intensity, and utilization drawn from
/// [`Distribution`]s by a seeded Monte-Carlo run.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Number of devices in the fleet (scales the per-device mean).
    pub devices: u64,
    /// Monte-Carlo sample count.
    pub samples: usize,
    /// Base RNG seed (optional in JSON; defaults to 0). Each sample
    /// derives its own stream via `act_dse::mc_sample_seed`, so results
    /// are bit-identical across thread counts.
    pub seed: u64,
    /// Per-device service lifetime, years.
    pub lifetime_years: Distribution,
    /// Per-device grid carbon intensity, g CO₂/kWh.
    pub use_intensity_g_per_kwh: Distribution,
    /// Per-device duty cycle in `[0, 1]`.
    pub utilization: Distribution,
}

impl FromJson for FleetSpec {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let require =
            |name: &str| value.get(name).ok_or_else(|| JsonError::missing_field(name));
        let seed = match value.get("seed") {
            Some(raw) => u64::from_json(raw)?,
            None => 0,
        };
        Ok(Self {
            devices: u64::from_json(require("devices")?)?,
            samples: usize::from_json(require("samples")?)?,
            seed,
            lifetime_years: Distribution::from_json(require("lifetime_years")?)?,
            use_intensity_g_per_kwh: Distribution::from_json(require(
                "use_intensity_g_per_kwh",
            )?)?,
            utilization: Distribution::from_json(require("utilization")?)?,
        })
    }
}

/// A full scenario document. `name`, `chips`, and `packaged_ic_count`
/// are required; every other section is optional (`dram`/`ssd`/`hdd`
/// default to empty, `fab` to [`FabScenario::default`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name, echoed into reports.
    pub name: String,
    /// Logic die populations.
    pub chips: Vec<ChipSpec>,
    /// DRAM populations.
    pub dram: Vec<DramSpec>,
    /// SSD/NAND populations.
    pub ssd: Vec<SsdSpec>,
    /// HDD populations.
    pub hdd: Vec<HddSpec>,
    /// Packaged IC count `Nr` (eq. 3).
    pub packaged_ic_count: u32,
    /// Fab profile for the embodied model; defaults to the paper's
    /// industry-average fab.
    pub fab: Option<FabScenario>,
    /// Use-phase workload; required when `fleet` is present.
    pub workload: Option<Workload>,
    /// Fleet Monte-Carlo block.
    pub fleet: Option<FleetSpec>,
}

impl FromJson for Scenario {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let require =
            |name: &str| value.get(name).ok_or_else(|| JsonError::missing_field(name));
        fn optional<T: FromJson>(
            value: &JsonValue,
            name: &str,
        ) -> Result<Option<T>, JsonError> {
            match value.get(name) {
                Some(JsonValue::Null) | None => Ok(None),
                Some(raw) => T::from_json(raw).map(Some),
            }
        }
        Ok(Self {
            name: String::from_json(require("name")?)?,
            chips: Vec::from_json(require("chips")?)?,
            dram: optional(value, "dram")?.unwrap_or_default(),
            ssd: optional(value, "ssd")?.unwrap_or_default(),
            hdd: optional(value, "hdd")?.unwrap_or_default(),
            packaged_ic_count: u32::from_json(require("packaged_ic_count")?)?,
            fab: optional(value, "fab")?,
            workload: optional(value, "workload")?,
            fleet: optional(value, "fleet")?,
        })
    }
}

impl Scenario {
    /// Parses a scenario from JSON text under the default
    /// [`act_json::ParseLimits`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] on malformed JSON or a document
    /// that does not match the schema.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = JsonValue::parse(text)?;
        Ok(Self::from_json(&doc)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document_parses_with_defaults() {
        let doc = r#"{
            "name": "min",
            "chips": [{"name": "SoC", "node": "N7", "area_mm2": 10.0, "count": 1}],
            "packaged_ic_count": 1
        }"#;
        let scenario = Scenario::parse(doc).expect("minimal scenario");
        assert_eq!(scenario.name, "min");
        assert_eq!(scenario.chips.len(), 1);
        assert!(scenario.dram.is_empty());
        assert!(scenario.fab.is_none());
        assert!(scenario.workload.is_none());
        assert!(scenario.fleet.is_none());
    }

    #[test]
    fn distribution_tags_round_trip_through_from_json() {
        let cases = [
            (r#"{"dist":"point","value":3.0}"#, Distribution::Point { value: 3.0 }),
            (
                r#"{"dist":"uniform","low":1.0,"high":2.0}"#,
                Distribution::Uniform { low: 1.0, high: 2.0 },
            ),
            (
                r#"{"dist":"triangular","low":1.0,"mode":2.0,"high":4.0}"#,
                Distribution::Triangular { low: 1.0, mode: 2.0, high: 4.0 },
            ),
            (
                r#"{"dist":"normal","mean":3.0,"std_dev":0.5}"#,
                Distribution::Normal { mean: 3.0, std_dev: 0.5 },
            ),
        ];
        for (doc, expected) in cases {
            let parsed =
                Distribution::from_json(&JsonValue::parse(doc).expect(doc)).expect(doc);
            assert_eq!(parsed, expected, "{doc}");
        }
    }

    #[test]
    fn unknown_distribution_tag_is_a_typed_error() {
        let doc = JsonValue::parse(r#"{"dist":"cauchy","value":1.0}"#).expect("parse");
        let err = Distribution::from_json(&doc).expect_err("cauchy must fail");
        assert!(err.to_string().contains("cauchy"), "{err}");
    }

    #[test]
    fn missing_required_fields_name_the_field() {
        let doc = r#"{"chips": [], "packaged_ic_count": 0}"#;
        let err = Scenario::parse(doc).expect_err("missing name");
        assert!(err.to_string().contains("name"), "{err}");

        let doc = r#"{"name": "x", "chips": [{"name": "a", "node": "N7", "count": 1}],
                      "packaged_ic_count": 0}"#;
        let err = Scenario::parse(doc).expect_err("missing area_mm2");
        assert!(err.to_string().contains("area_mm2"), "{err}");
    }

    #[test]
    fn fleet_seed_defaults_to_zero() {
        let doc = r#"{
            "devices": 10, "samples": 4,
            "lifetime_years": {"dist": "point", "value": 3.0},
            "use_intensity_g_per_kwh": {"dist": "point", "value": 300.0},
            "utilization": {"dist": "point", "value": 0.5}
        }"#;
        let fleet =
            FleetSpec::from_json(&JsonValue::parse(doc).expect("parse")).expect("fleet");
        assert_eq!(fleet.seed, 0);
        assert_eq!(fleet.devices, 10);
    }
}
