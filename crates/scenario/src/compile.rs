//! Scenario validation and lowering.
//!
//! [`Scenario::compile`] turns a parsed document into a
//! [`CompiledScenario`]: an [`EmbodiedReport`] for the bill of materials,
//! an optional single-device [`DeviceFootprint`] when a workload is
//! present, and an optional [`FleetKernel`] when a fleet block is.
//!
//! ## Bit-identity with the constant path
//!
//! The embodied side is lowered through the *same* builder calls, in the
//! same order, as [`SystemSpec::from_bom`]: every chip through
//! [`SystemSpecBuilder::soc`], then DRAM, SSD, HDD populations, then the
//! packaged-IC count. IEEE-754 addition is order-sensitive, so replaying
//! the identical fold is what makes a JSON transcription of a built-in
//! teardown produce bitwise-equal component and total footprints — the
//! property the golden tests pin for every [`act_data::devices::ALL`]
//! system.
//!
//! ## Use-phase kernel
//!
//! The workload/fleet path compiles a [`CompiledFootprint`] over the axes
//! `[ExecutionTime, Lifetime, UseIntensity, Energy]` with **zero** SoC
//! area, no storage, and no packaging, so the kernel's embodied term
//! folds to `Const(0.0)` and each evaluation returns the operational term
//! alone. Callers then add the scenario's embodied total computed by the
//! [`SystemSpec`] oracle. Feeding the execution-time axis
//! `lifetime_years * SECONDS_PER_YEAR` — the exact product
//! [`TimeSpan::years`](act_units::TimeSpan::years) stores — makes the
//! kernel's `T/LT` amortization ratio exactly `1.0`, so nothing but the
//! operational energy varies per sample.

use std::fmt;

use act_core::{
    CompiledFootprint, EmbodiedReport, FreeAxis, ModelError, ModelParams, SystemSpec,
};
use act_data::ProcessNode;
use act_json::JsonError;
use act_units::{Area, Capacity, SECONDS_PER_YEAR};

use crate::fleet::FleetKernel;
use crate::schema::{Scenario, Workload};

/// Table 1 lifetime range, years.
pub(crate) const LIFETIME_RANGE: std::ops::RangeInclusive<f64> = 0.1..=50.0;
/// Table 1 carbon-intensity range, g CO₂/kWh.
pub(crate) const INTENSITY_RANGE: std::ops::RangeInclusive<f64> = 0.0..=2000.0;
/// Duty cycle is a fraction of wall time.
pub(crate) const UTILIZATION_RANGE: std::ops::RangeInclusive<f64> = 0.0..=1.0;
/// Sanity ceiling on average power (a megawatt device is a typo).
const MAX_POWER_W: f64 = 1.0e6;
/// Ceiling on per-request Monte-Carlo samples (matches the server's
/// sweep-size guard; keeps a hostile fleet block from pinning a core).
const MAX_SAMPLES: usize = 4_000_000;

/// Error from scenario parsing, validation, or model lowering.
#[derive(Debug)]
pub enum ScenarioError {
    /// The document is not valid JSON or does not match the schema.
    Json(JsonError),
    /// A field is outside its documented range.
    Invalid {
        /// Dotted path of the offending field (e.g. `"fleet.samples"`).
        field: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The lowered model rejected the parameters (Table 1 ranges,
    /// non-finite arithmetic).
    Model(ModelError),
}

impl ScenarioError {
    pub(crate) fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        Self::Invalid { field, message: message.into() }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(err) => write!(f, "scenario JSON: {err}"),
            Self::Invalid { field, message } => {
                write!(f, "scenario field `{field}`: {message}")
            }
            Self::Model(err) => write!(f, "scenario model: {err}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Json(err) => Some(err),
            Self::Invalid { .. } => None,
            Self::Model(err) => Some(err),
        }
    }
}

impl From<JsonError> for ScenarioError {
    fn from(err: JsonError) -> Self {
        Self::Json(err)
    }
}

impl From<ModelError> for ScenarioError {
    fn from(err: ModelError) -> Self {
        Self::Model(err)
    }
}

/// Single-device use-phase result: the operational footprint over the
/// workload's lifetime plus the embodied total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFootprint {
    /// Operational carbon over the full lifetime, grams CO₂.
    pub operational_g: f64,
    /// Operational + embodied, grams CO₂.
    pub total_g: f64,
}

act_json::impl_to_json!(DeviceFootprint { operational_g, total_g });

/// A validated, lowered scenario ready to evaluate.
#[derive(Debug)]
pub struct CompiledScenario {
    name: String,
    report: EmbodiedReport,
    device: Option<DeviceFootprint>,
    fleet: Option<FleetKernel>,
}

impl CompiledScenario {
    /// The scenario's `name` field.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-component embodied breakdown (eq. 3).
    #[must_use]
    pub fn embodied(&self) -> &EmbodiedReport {
        &self.report
    }

    /// Embodied total in grams CO₂ — the exact left-fold the constant
    /// path produces.
    #[must_use]
    pub fn embodied_grams(&self) -> f64 {
        self.report.total().as_grams()
    }

    /// Single-device footprint, when the scenario has a workload.
    #[must_use]
    pub fn device(&self) -> Option<&DeviceFootprint> {
        self.device.as_ref()
    }

    /// Fleet Monte-Carlo kernel, when the scenario has a fleet block.
    #[must_use]
    pub fn fleet(&self) -> Option<&FleetKernel> {
        self.fleet.as_ref()
    }
}

fn check_finite_positive(
    field: &'static str,
    label: &str,
    value: f64,
) -> Result<(), ScenarioError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::invalid(
            field,
            format!("`{label}` must be finite and positive, got {value}"),
        ))
    }
}

fn check_workload(workload: &Workload) -> Result<(), ScenarioError> {
    let w = workload;
    if !(w.power_w.is_finite() && w.power_w > 0.0 && w.power_w <= MAX_POWER_W) {
        return Err(ScenarioError::invalid(
            "workload.power_w",
            format!("power must be in (0, {MAX_POWER_W}] W, got {}", w.power_w),
        ));
    }
    if !UTILIZATION_RANGE.contains(&w.utilization) {
        return Err(ScenarioError::invalid(
            "workload.utilization",
            format!("utilization must be in [0, 1], got {}", w.utilization),
        ));
    }
    if !LIFETIME_RANGE.contains(&w.lifetime_years) {
        return Err(ScenarioError::invalid(
            "workload.lifetime_years",
            format!("lifetime must be in [0.1, 50] years, got {}", w.lifetime_years),
        ));
    }
    if !INTENSITY_RANGE.contains(&w.use_intensity_g_per_kwh) {
        return Err(ScenarioError::invalid(
            "workload.use_intensity_g_per_kwh",
            format!(
                "grid intensity must be in [0, 2000] g/kWh, got {}",
                w.use_intensity_g_per_kwh
            ),
        ));
    }
    Ok(())
}

/// Compiles the operational-only kernel described in the module docs.
/// Every embodied input is zeroed so the kernel's embodied term folds to
/// a constant `0.0` and each evaluation yields the operational term.
pub(crate) fn operational_kernel(
    node: ProcessNode,
) -> Result<CompiledFootprint, ScenarioError> {
    let params = ModelParams {
        execution_time_s: 1.0,
        lifetime_years: 1.0,
        packaged_ic_count: 0,
        soc_area_mm2: 0.0,
        process_node: node,
        use_intensity_g_per_kwh: 301.0,
        fab_intensity_g_per_kwh: 447.5,
        fab_yield: 0.875,
        dram: Vec::new(),
        ssd: Vec::new(),
        hdd: Vec::new(),
        energy_j: 1.0,
    };
    let axes =
        [FreeAxis::ExecutionTime, FreeAxis::Lifetime, FreeAxis::UseIntensity, FreeAxis::Energy];
    Ok(CompiledFootprint::try_compile(&params, &axes)?)
}

/// The kernel evaluation point for one device configuration. Feeding the
/// execution-time axis the exact seconds-per-lifetime product keeps the
/// amortization ratio at exactly `1.0` (see module docs), so the result
/// is the operational term alone.
pub(crate) fn device_point(
    power_w: f64,
    utilization: f64,
    lifetime_years: f64,
    intensity: f64,
) -> [f64; 4] {
    let exec_s = lifetime_years * SECONDS_PER_YEAR;
    [exec_s, lifetime_years, intensity, power_w * utilization * exec_s]
}

impl Scenario {
    /// Validates the scenario and lowers it to a [`CompiledScenario`].
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] when a field is out of range or a fleet
    /// block lacks a workload; [`ScenarioError::Model`] when the embodied
    /// or compiled-kernel layer rejects the lowered parameters.
    pub fn compile(&self) -> Result<CompiledScenario, ScenarioError> {
        // Mirror `SystemSpec::from_bom` exactly: chips (in order), then
        // DRAM, SSD, HDD populations, then the packaging count. The fold
        // order is load-bearing for the golden bit-identity tests.
        let mut builder = SystemSpec::builder();
        for (i, chip) in self.chips.iter().enumerate() {
            if chip.name.is_empty() {
                return Err(ScenarioError::invalid(
                    "chips.name",
                    format!("chip {i} has an empty name"),
                ));
            }
            if chip.count == 0 {
                return Err(ScenarioError::invalid(
                    "chips.count",
                    format!("chip `{}` has zero count", chip.name),
                ));
            }
            check_finite_positive("chips.area_mm2", &chip.name, chip.area_mm2)?;
            builder = builder.soc(
                chip.name.clone(),
                Area::square_millimeters(chip.area_mm2),
                chip.node,
            );
        }
        for entry in &self.dram {
            check_finite_positive("dram.capacity_gb", "capacity_gb", entry.capacity_gb)?;
            builder = builder.dram(entry.technology, Capacity::gigabytes(entry.capacity_gb));
        }
        for entry in &self.ssd {
            check_finite_positive("ssd.capacity_gb", "capacity_gb", entry.capacity_gb)?;
            builder = builder.ssd(entry.technology, Capacity::gigabytes(entry.capacity_gb));
        }
        for entry in &self.hdd {
            check_finite_positive("hdd.capacity_gb", "capacity_gb", entry.capacity_gb)?;
            builder = builder.hdd(entry.model, Capacity::gigabytes(entry.capacity_gb));
        }
        let spec = builder.packaged_ics(self.packaged_ic_count).build();

        let fab = self.fab.unwrap_or_default();
        let report = spec.try_embodied(&fab)?;
        let embodied_g = report.total().as_grams();

        let node = self.chips.first().map_or(ProcessNode::N7, |chip| chip.node);
        let mut device = None;
        let mut fleet = None;
        if let Some(workload) = &self.workload {
            check_workload(workload)?;
            let kernel = operational_kernel(node)?;
            let point = device_point(
                workload.power_w,
                workload.utilization,
                workload.lifetime_years,
                workload.use_intensity_g_per_kwh,
            );
            let operational_g = kernel.eval(&point);
            device =
                Some(DeviceFootprint { operational_g, total_g: operational_g + embodied_g });
            if let Some(spec) = &self.fleet {
                if spec.devices == 0 {
                    return Err(ScenarioError::invalid(
                        "fleet.devices",
                        "fleet needs at least one device",
                    ));
                }
                if spec.samples == 0 {
                    return Err(ScenarioError::invalid(
                        "fleet.samples",
                        "fleet needs at least one sample",
                    ));
                }
                if spec.samples > MAX_SAMPLES {
                    return Err(ScenarioError::invalid(
                        "fleet.samples",
                        format!("at most {MAX_SAMPLES} samples per run, got {}", spec.samples),
                    ));
                }
                spec.lifetime_years.validate("fleet.lifetime_years")?;
                spec.use_intensity_g_per_kwh.validate("fleet.use_intensity_g_per_kwh")?;
                spec.utilization.validate("fleet.utilization")?;
                fleet =
                    Some(FleetKernel::new(kernel, embodied_g, workload.power_w, spec.clone()));
            }
        } else if self.fleet.is_some() {
            return Err(ScenarioError::invalid(
                "fleet",
                "a fleet block requires a `workload` section (for the device power draw)",
            ));
        }

        Ok(CompiledScenario { name: self.name.clone(), report, device, fleet })
    }
}
