//! JSON scenario description language for the ACT carbon model.
//!
//! A *scenario* is a self-contained JSON document describing a hardware
//! system — chips with process nodes and die areas, memory and storage
//! populations, packaging count — plus an optional fab profile, an
//! optional use-phase *workload*, and an optional *fleet* block that
//! scales the single-device model to N devices under uncertainty.
//!
//! The pipeline has three stages, each a separate module:
//!
//! 1. [`schema`] — typed parse of the document via `act-json`'s
//!    [`FromJson`](act_json::FromJson), producing a [`Scenario`]. Shape
//!    errors (missing fields, wrong types, unknown distribution tags)
//!    surface here as [`act_json::JsonError`].
//! 2. [`compile`] — validation against the paper's Table 1 ranges and
//!    lowering to the exact same code paths the built-in Rust constants
//!    use: the embodied model goes through
//!    [`SystemSpecBuilder`](act_core::SystemSpecBuilder) in
//!    [`SystemSpec::from_bom`](act_core::SystemSpec::from_bom) order, and
//!    the use phase through a [`CompiledFootprint`](act_core::CompiledFootprint)
//!    kernel. Compiling a committed JSON fixture of a built-in
//!    [`act_data::devices`] system is therefore **bit-identical** to
//!    compiling the Rust constant — the golden tests in this crate pin
//!    that equivalence per component.
//! 3. [`fleet`] — sharded block-path Monte-Carlo over the compiled
//!    kernel via `act_dse::batch`'s `_block` family. Per-sample seed
//!    splitting (`mc_sample_seed`) makes the outcome bit-identical for
//!    any thread count, block size, or deadline budget.
//!
//! ```
//! use act_scenario::Scenario;
//!
//! let doc = r#"{
//!   "name": "pocket gadget",
//!   "chips": [{"name": "SoC", "node": "N7", "area_mm2": 80.0, "count": 1}],
//!   "dram": [{"technology": "Lpddr4", "capacity_gb": 4.0}],
//!   "packaged_ic_count": 10,
//!   "workload": {
//!     "power_w": 2.0, "utilization": 0.2,
//!     "lifetime_years": 3.0, "use_intensity_g_per_kwh": 301.0
//!   }
//! }"#;
//! let compiled = Scenario::parse(doc).unwrap().compile().unwrap();
//! let device = compiled.device().unwrap();
//! assert!(compiled.embodied_grams() > 0.0);
//! assert!(device.total_g > compiled.embodied_grams());
//! ```

pub mod compile;
pub mod fleet;
pub mod schema;

pub use compile::{CompiledScenario, DeviceFootprint, ScenarioError};
pub use fleet::FleetKernel;
pub use schema::{
    ChipSpec, Distribution, DramSpec, FleetSpec, HddSpec, Scenario, SsdSpec, Workload,
};
