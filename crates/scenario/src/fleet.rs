//! Fleet-scale Monte-Carlo over a compiled scenario kernel.
//!
//! [`FleetKernel::run`] drives `act_dse::batch`'s block-vectorized
//! Monte-Carlo family: sample `i` draws from an RNG seeded with
//! [`act_dse::mc_sample_seed`]`(seed, i)`, so the outcome is
//! **bit-identical** for any thread count, block size, or deadline
//! budget — sharding is a scheduling decision, never a numerical one.
//!
//! Each sample draws, in fixed order, a lifetime, a grid intensity, and
//! a utilization from the scenario's distributions, then evaluates the
//! operational kernel and adds the embodied total. Draws that land
//! outside the model's documented ranges (or are non-finite, e.g. a
//! wide normal's tail) poison the sample's columns to NaN; the batch
//! layer counts such samples as `rejected` instead of corrupting the
//! statistics.

use act_core::CompiledFootprint;
use act_dse::{
    monte_carlo_compiled_block_budgeted, par_monte_carlo_compiled_block_budgeted,
    try_triangular, BatchRun, EvalBudget, McBuffer, McError, McOutcome, Parallelism,
};
use act_rng::Rng;
use act_units::SECONDS_PER_YEAR;

use crate::compile::{INTENSITY_RANGE, LIFETIME_RANGE, UTILIZATION_RANGE};
use crate::schema::{Distribution, FleetSpec};

impl Distribution {
    /// One draw. Invalid parameters (unreachable after
    /// [`Distribution::validate`], but kept total for safety) and
    /// non-finite results surface as NaN, which the sampler treats as a
    /// rejection.
    fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Self::Point { value } => value,
            Self::Uniform { low, high } => rng.gen_range(low..high),
            Self::Triangular { low, mode, high } => {
                try_triangular(rng, low, mode, high).unwrap_or(f64::NAN)
            }
            Self::Normal { mean, std_dev } => rng.normal_with(mean, std_dev),
        }
    }
}

/// A compiled fleet block: the operational kernel, the embodied constant,
/// and the per-device distributions.
#[derive(Debug)]
pub struct FleetKernel {
    kernel: CompiledFootprint,
    embodied_g: f64,
    power_w: f64,
    spec: FleetSpec,
}

impl FleetKernel {
    pub(crate) fn new(
        kernel: CompiledFootprint,
        embodied_g: f64,
        power_w: f64,
        spec: FleetSpec,
    ) -> Self {
        Self { kernel, embodied_g, power_w, spec }
    }

    /// Number of devices the fleet total scales to.
    #[must_use]
    pub fn devices(&self) -> u64 {
        self.spec.devices
    }

    /// Monte-Carlo sample count.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.spec.samples
    }

    /// Base RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.spec.seed
    }

    /// Fleet total in grams CO₂: the per-device mean scaled to the fleet
    /// size. NaN-free whenever `outcome` came from a successful run.
    #[must_use]
    pub fn fleet_total_grams(&self, outcome: &McOutcome) -> f64 {
        outcome.stats.mean * self.spec.devices as f64
    }

    /// Runs the fleet Monte-Carlo under `budget`, sharded over `threads`
    /// (serial when `threads <= 1`). The caller supplies the thread
    /// count and budget so this crate never consults the clock or the
    /// machine topology itself.
    ///
    /// # Errors
    ///
    /// [`McError::NoSamples`] when the budget expires before the first
    /// block completes; [`McError::AllRejected`] when every draw landed
    /// outside the model's ranges.
    pub fn run(
        &self,
        threads: usize,
        buf: &mut McBuffer,
        budget: &EvalBudget,
    ) -> Result<(McOutcome, BatchRun), McError> {
        let lifetime = self.spec.lifetime_years;
        let intensity = self.spec.use_intensity_g_per_kwh;
        let utilization = self.spec.utilization;
        let power_w = self.power_w;
        // Column layout matches the kernel's axes: [ExecutionTime,
        // Lifetime, UseIntensity, Energy]. The draw order (lifetime,
        // intensity, utilization) is part of the seed contract — changing
        // it would change every result.
        let sampler = move |rng: &mut Rng, k: usize, columns: &mut [Vec<f64>]| {
            let l = lifetime.sample(rng);
            let ci = intensity.sample(rng);
            let u = utilization.sample(rng);
            let valid = LIFETIME_RANGE.contains(&l)
                && INTENSITY_RANGE.contains(&ci)
                && UTILIZATION_RANGE.contains(&u);
            let point = if valid {
                // Exactly `TimeSpan::years(l).as_seconds()`: the ratio
                // axis divides this by the lifetime column and must see
                // x/x == 1.0 (see `crate::compile` module docs).
                let exec_s = l * SECONDS_PER_YEAR;
                [exec_s, l, ci, power_w * u * exec_s]
            } else {
                [f64::NAN; 4]
            };
            for (column, value) in columns.iter_mut().zip(point) {
                if let Some(slot) = column.get_mut(k) {
                    *slot = value;
                }
            }
        };
        let plan = self.kernel.plan();
        let embodied = self.embodied_g;
        let block_kernel =
            move |cols: &[&[f64]], range: std::ops::Range<usize>, out: &mut [f64]| {
                plan.eval_block(cols, range, out);
                // The kernel's embodied term folded to 0.0; add the oracle's
                // embodied total so each draw is a full per-device footprint.
                for slot in out.iter_mut() {
                    *slot += embodied;
                }
            };
        if threads > 1 {
            par_monte_carlo_compiled_block_budgeted(
                Parallelism::threads(threads),
                self.spec.samples,
                self.spec.seed,
                4,
                sampler,
                block_kernel,
                buf,
                budget,
            )
        } else {
            monte_carlo_compiled_block_budgeted(
                self.spec.samples,
                self.spec.seed,
                4,
                sampler,
                block_kernel,
                buf,
                budget,
            )
        }
    }
}
