//! Time-varying carbon intensity and carbon-aware scheduling.
//!
//! The paper's appendix notes that "while these are average values, carbon
//! intensity can fluctuate over time", and its renewable-energy discussion
//! builds on carbon-aware computing (zero-carbon cloud, carbon-aware
//! datacenters). This module provides the primitive those use cases need:
//! an hourly intensity profile and window selection over it.

use act_units::{CarbonIntensity, Energy, MassCo2, TimeSpan};

/// A 24-hour carbon-intensity profile with hourly resolution.
///
/// # Examples
///
/// ```
/// use act_core::IntensityProfile;
/// use act_units::{CarbonIntensity, Energy};
///
/// let grid = IntensityProfile::solar_grid(
///     CarbonIntensity::grams_per_kwh(500.0),
///     0.6,
/// );
/// // Midday is cleaner than midnight on a solar-heavy grid.
/// assert!(grid.at_hour(13) < grid.at_hour(0));
///
/// // Schedule a 4-hour job in its cleanest window.
/// let start = grid.cleanest_window_start(4);
/// let best = grid.window_footprint(start, 4, Energy::kilowatt_hours(1.0));
/// let worst = grid.window_footprint(0, 4, Energy::kilowatt_hours(1.0));
/// assert!(best <= worst);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct IntensityProfile {
    hourly: [CarbonIntensity; 24],
}

act_json::impl_to_json!(IntensityProfile { hourly });
act_json::impl_from_json!(IntensityProfile { hourly });

impl IntensityProfile {
    /// A flat profile (the paper's average-value assumption).
    #[must_use]
    pub fn constant(intensity: CarbonIntensity) -> Self {
        Self { hourly: [intensity; 24] }
    }

    /// A profile from explicit hourly samples.
    #[must_use]
    pub fn from_hourly(hourly: [CarbonIntensity; 24]) -> Self {
        Self { hourly }
    }

    /// A stylized solar-heavy grid: the baseline intensity is displaced by
    /// solar generation following a half-sine between 06:00 and 18:00,
    /// scaled so that at peak (noon) a `solar_share` fraction of demand is
    /// solar-served at 41 g CO₂/kWh.
    ///
    /// # Panics
    ///
    /// Panics if `solar_share` is outside `[0, 1]`.
    #[must_use]
    pub fn solar_grid(baseline: CarbonIntensity, solar_share: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&solar_share),
            "solar share must be in [0, 1], got {solar_share}"
        );
        let solar = CarbonIntensity::grams_per_kwh(41.0);
        let mut hourly = [baseline; 24];
        for (hour, slot) in hourly.iter_mut().enumerate() {
            let h = hour as f64;
            if (6.0..=18.0).contains(&h) {
                let elevation = ((h - 6.0) / 12.0 * std::f64::consts::PI).sin();
                *slot = baseline.blended_with(solar, solar_share * elevation);
            }
        }
        Self { hourly }
    }

    /// The intensity at an hour of day (wraps modulo 24).
    #[must_use]
    pub fn at_hour(&self, hour: usize) -> CarbonIntensity {
        self.hourly[hour % 24]
    }

    /// Demand-weighted daily average (uniform demand).
    #[must_use]
    pub fn daily_average(&self) -> CarbonIntensity {
        let sum: f64 = self.hourly.iter().map(|c| c.as_grams_per_kwh()).sum();
        CarbonIntensity::grams_per_kwh(sum / 24.0)
    }

    /// Footprint of consuming `energy` uniformly over a window of
    /// `duration_hours` starting at `start_hour` (wrapping past midnight).
    ///
    /// # Panics
    ///
    /// Panics if `duration_hours` is zero.
    #[must_use]
    pub fn window_footprint(
        &self,
        start_hour: usize,
        duration_hours: usize,
        energy: Energy,
    ) -> MassCo2 {
        assert!(duration_hours > 0, "a job needs a positive duration");
        let per_hour = energy / duration_hours as f64;
        (0..duration_hours).map(|h| self.at_hour(start_hour + h) * per_hour).sum()
    }

    /// The start hour minimizing the footprint of a `duration_hours` job —
    /// the core move of carbon-aware scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `duration_hours` is zero.
    #[must_use]
    pub fn cleanest_window_start(&self, duration_hours: usize) -> usize {
        let probe = Energy::kilowatt_hours(1.0);
        (0..24)
            .min_by(|&a, &b| {
                self.window_footprint(a, duration_hours, probe)
                    .total_cmp(&self.window_footprint(b, duration_hours, probe))
            })
            .unwrap_or(0)
    }

    /// Carbon saved by shifting a job from the *dirtiest* window into the
    /// cleanest one, as a fraction of the dirtiest-window footprint.
    ///
    /// # Panics
    ///
    /// Panics if `duration_hours` is zero.
    #[must_use]
    pub fn shifting_benefit(&self, duration_hours: usize) -> f64 {
        let probe = Energy::kilowatt_hours(1.0);
        let best = self.window_footprint(
            self.cleanest_window_start(duration_hours),
            duration_hours,
            probe,
        );
        let worst = (0..24)
            .map(|s| self.window_footprint(s, duration_hours, probe))
            .max_by(MassCo2::total_cmp)
            .unwrap_or(MassCo2::ZERO);
        if worst == MassCo2::ZERO {
            0.0
        } else {
            1.0 - best.ratio(worst)
        }
    }

    /// An [`TimeSpan`]-weighted footprint for a job described by average
    /// power drawn over a window (convenience wrapper).
    #[must_use]
    pub fn job_footprint(
        &self,
        start_hour: usize,
        duration: TimeSpan,
        energy: Energy,
    ) -> MassCo2 {
        let hours =
            (duration.as_seconds() / act_units::SECONDS_PER_HOUR).ceil().max(1.0) as usize;
        self.window_footprint(start_hour, hours, energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solar() -> IntensityProfile {
        IntensityProfile::solar_grid(CarbonIntensity::grams_per_kwh(500.0), 0.6)
    }

    #[test]
    fn constant_profile_is_flat() {
        let p = IntensityProfile::constant(CarbonIntensity::grams_per_kwh(300.0));
        for h in 0..24 {
            assert_eq!(p.at_hour(h), CarbonIntensity::grams_per_kwh(300.0));
        }
        assert_eq!(p.daily_average(), CarbonIntensity::grams_per_kwh(300.0));
        assert_eq!(p.shifting_benefit(4), 0.0);
    }

    #[test]
    fn solar_grid_dips_at_noon() {
        let p = solar();
        assert!(p.at_hour(12) < p.at_hour(9));
        assert!(p.at_hour(12) < p.at_hour(17));
        assert_eq!(p.at_hour(0), CarbonIntensity::grams_per_kwh(500.0));
        assert_eq!(p.at_hour(23), CarbonIntensity::grams_per_kwh(500.0));
        // Peak displacement: 60 % solar at 41 g.
        let noon = p.at_hour(12).as_grams_per_kwh();
        assert!((noon - (0.4 * 500.0 + 0.6 * 41.0)).abs() < 6.0, "noon {noon}");
    }

    #[test]
    fn hour_wraps_modulo_24() {
        let p = solar();
        assert_eq!(p.at_hour(26), p.at_hour(2));
    }

    #[test]
    fn cleanest_window_straddles_noon() {
        let start = solar().cleanest_window_start(4);
        assert!((9..=12).contains(&start), "start {start}");
    }

    #[test]
    fn window_footprint_sums_hours() {
        let p = IntensityProfile::constant(CarbonIntensity::grams_per_kwh(100.0));
        let m = p.window_footprint(5, 3, Energy::kilowatt_hours(3.0));
        assert!((m.as_grams() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn scheduling_saves_real_carbon_on_solar_grids() {
        let benefit = solar().shifting_benefit(4);
        assert!((0.2..0.7).contains(&benefit), "benefit {benefit}");
    }

    #[test]
    fn longer_jobs_benefit_less_from_shifting() {
        let p = solar();
        assert!(p.shifting_benefit(2) > p.shifting_benefit(12));
        assert!(p.shifting_benefit(24) < 1e-9);
    }

    #[test]
    fn daily_average_sits_between_extremes() {
        let p = solar();
        let avg = p.daily_average();
        assert!(avg < p.at_hour(0));
        assert!(avg > p.at_hour(12));
    }

    #[test]
    fn job_footprint_rounds_duration_up() {
        let p = IntensityProfile::constant(CarbonIntensity::grams_per_kwh(100.0));
        let m = p.job_footprint(0, TimeSpan::seconds(90.0 * 60.0), Energy::kilowatt_hours(1.0));
        assert!((m.as_grams() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_rejected() {
        let _ = solar().window_footprint(0, 0, Energy::kilowatt_hours(1.0));
    }

    #[test]
    #[should_panic(expected = "solar share")]
    fn invalid_share_rejected() {
        let _ = IntensityProfile::solar_grid(CarbonIntensity::grams_per_kwh(500.0), 1.5);
    }
}
