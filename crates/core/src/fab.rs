//! The semiconductor-fab model behind eq. 5:
//! `CPA = (CIfab × EPA + GPA + MPA) / Y`.

use act_data::{Abatement, EnergySource, Location, ProcessNode};
use act_units::{CarbonIntensity, Fraction, MassPerArea, UnitError};

use crate::{ModelError, Validate};

/// A semiconductor-fab operating scenario: the energy source powering the
/// fab, its gaseous-abatement strategy, and its yield.
///
/// The paper's default ("average fab characteristics") is a fab on the
/// Taiwan power grid procuring 25 % renewable (solar) energy, with 97 %
/// gaseous abatement — the solid line of Figure 6.
///
/// # Examples
///
/// ```
/// use act_core::FabScenario;
/// use act_data::ProcessNode;
///
/// let default_fab = FabScenario::default();
/// let green_fab = FabScenario::renewable();
/// let node = ProcessNode::N7Euv;
/// assert!(green_fab.carbon_per_area(node) < default_fab.carbon_per_area(node));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabScenario {
    /// Carbon intensity of the electricity the fab consumes (`CIfab`).
    pub energy_intensity: CarbonIntensity,
    /// Gaseous abatement effectiveness (selects the `GPA` column).
    pub abatement: Abatement,
    /// Fab yield `Y`; good dies per wafer dies.
    pub fab_yield: Fraction,
}

act_json::impl_to_json!(FabScenario { energy_intensity, abatement, fab_yield });
act_json::impl_from_json!(FabScenario { energy_intensity, abatement, fab_yield });

/// The paper's default yield assumption, validated at compile time.
const DEFAULT_YIELD: Fraction = Fraction::new_const(0.875);

impl FabScenario {
    /// A fab with an explicit energy carbon intensity, the default 97 %
    /// abatement and 0.875 yield.
    #[must_use]
    pub fn with_intensity(energy_intensity: CarbonIntensity) -> Self {
        Self { energy_intensity, abatement: Abatement::default(), fab_yield: DEFAULT_YIELD }
    }

    /// The paper's upper-bound fab: powered by the average Taiwan grid.
    #[must_use]
    pub fn taiwan_grid() -> Self {
        Self::with_intensity(Location::Taiwan.carbon_intensity())
    }

    /// The paper's default fab: the Taiwan grid with 25 % solar procurement
    /// (the solid line of Figure 6).
    #[must_use]
    pub fn taiwan_partially_renewable() -> Self {
        Self::with_intensity(
            Location::Taiwan
                .carbon_intensity()
                .blended_with(EnergySource::Solar.carbon_intensity(), 0.25),
        )
    }

    /// The paper's lower-bound fab: 100 % solar powered.
    #[must_use]
    pub fn renewable() -> Self {
        Self::with_intensity(EnergySource::Solar.carbon_intensity())
    }

    /// A coal-powered fab (the dirty end of Figure 10's bottom sweep).
    #[must_use]
    pub fn coal() -> Self {
        Self::with_intensity(EnergySource::Coal.carbon_intensity())
    }

    /// A hypothetical carbon-free fab: only gas and material emissions
    /// remain.
    #[must_use]
    pub fn carbon_free() -> Self {
        Self::with_intensity(CarbonIntensity::grams_per_kwh(0.0))
    }

    /// Replaces the abatement strategy.
    #[must_use]
    pub fn with_abatement(mut self, abatement: Abatement) -> Self {
        self.abatement = abatement;
        self
    }

    /// Replaces the fab yield.
    #[must_use]
    pub fn with_yield(mut self, fab_yield: Fraction) -> Self {
        self.fab_yield = fab_yield;
        self
    }

    /// The per-area carbon components before yield derating:
    /// fab energy (`CIfab × EPA`), gases (`GPA`) and materials (`MPA`).
    #[must_use]
    pub fn cpa_breakdown(&self, node: ProcessNode) -> CpaBreakdown {
        let energy_kwh = node.energy_per_area().as_kwh_per_cm2();
        let energy =
            MassPerArea::grams_per_cm2(self.energy_intensity.as_grams_per_kwh() * energy_kwh);
        CpaBreakdown {
            energy,
            gas: node.gas_per_area(self.abatement),
            materials: node.materials_per_area(),
            fab_yield: self.fab_yield,
        }
    }

    /// Carbon per manufactured area, `CPA` (eq. 5): the yield-derated sum of
    /// the energy, gas and material components.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's yield is zero. Use
    /// [`Self::try_carbon_per_area`] when the scenario comes from user
    /// configuration.
    #[must_use]
    pub fn carbon_per_area(&self, node: ProcessNode) -> MassPerArea {
        self.cpa_breakdown(node).total()
    }

    /// Checked variant of [`Self::carbon_per_area`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the scenario is invalid (non-finite
    /// energy intensity or zero yield).
    pub fn try_carbon_per_area(&self, node: ProcessNode) -> Result<MassPerArea, ModelError> {
        self.validate()?;
        self.cpa_breakdown(node).try_total()
    }

    /// The uncertainty band of Figure 6 (bottom): lower bound with a solar
    /// fab and 99 % abatement, upper bound with the Taiwan grid and 95 %
    /// abatement, both at this scenario's yield.
    #[must_use]
    pub fn cpa_bounds(&self, node: ProcessNode) -> (MassPerArea, MassPerArea) {
        let lower = FabScenario::renewable()
            .with_abatement(Abatement::Percent99)
            .with_yield(self.fab_yield)
            .carbon_per_area(node);
        let upper = FabScenario::taiwan_grid()
            .with_abatement(Abatement::Percent95)
            .with_yield(self.fab_yield)
            .carbon_per_area(node);
        (lower, upper)
    }
}

impl Default for FabScenario {
    /// The paper's default: Taiwan grid with 25 % solar, 97 % abatement,
    /// 0.875 yield.
    fn default() -> Self {
        Self::taiwan_partially_renewable()
    }
}

impl Validate for FabScenario {
    fn validate(&self) -> Result<(), ModelError> {
        let ci = self.energy_intensity.as_grams_per_kwh();
        if !ci.is_finite() {
            return Err(UnitError::non_finite("fab energy carbon intensity", ci).into());
        }
        if ci < 0.0 {
            return Err(UnitError::out_of_domain(
                "fab energy carbon intensity",
                ci,
                "a finite, non-negative number",
            )
            .into());
        }
        if self.fab_yield.get() <= 0.0 {
            return Err(UnitError::out_of_domain(
                "fab yield",
                self.fab_yield.get(),
                "within (0, 1]",
            )
            .into());
        }
        Ok(())
    }
}

/// The components of `CPA` for one node under one fab scenario (the stacked
/// quantities of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpaBreakdown {
    /// Carbon from fab electricity: `CIfab × EPA`.
    pub energy: MassPerArea,
    /// Carbon from fab gases and chemicals: `GPA`.
    pub gas: MassPerArea,
    /// Carbon from raw-material procurement: `MPA`.
    pub materials: MassPerArea,
    /// Yield the total is derated by.
    pub fab_yield: Fraction,
}

act_json::impl_to_json!(CpaBreakdown { energy, gas, materials, fab_yield });
act_json::impl_from_json!(CpaBreakdown { energy, gas, materials, fab_yield });

impl CpaBreakdown {
    /// Pre-yield sum of the components.
    #[must_use]
    pub fn before_yield(&self) -> MassPerArea {
        self.energy + self.gas + self.materials
    }

    /// Yield-derated `CPA` (eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if yield is zero. Use [`Self::try_total`] when the yield comes
    /// from user configuration.
    #[must_use]
    pub fn total(&self) -> MassPerArea {
        let y = self.fab_yield.get();
        assert!(y > 0.0, "fab yield must be positive to derate emissions");
        self.before_yield() / y
    }

    /// Checked variant of [`Self::total`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the yield is zero or the derated sum is
    /// non-finite.
    pub fn try_total(&self) -> Result<MassPerArea, ModelError> {
        let y = self.fab_yield.get();
        if y <= 0.0 {
            return Err(UnitError::out_of_domain("fab yield", y, "within (0, 1]").into());
        }
        Ok((self.before_yield() / y).ensure_finite("yield-derated CPA")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_average_fab() {
        let fab = FabScenario::default();
        // 0.75 x 583 + 0.25 x 41 = 447.5 g/kWh.
        assert!((fab.energy_intensity.as_grams_per_kwh() - 447.5).abs() < 1e-9);
        assert_eq!(fab.abatement, Abatement::Percent97);
        assert!((fab.fab_yield.get() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn cpa_matches_hand_computation_at_10nm() {
        // (447.5 * 1.475 + 195 + 500) / 0.875 = 1548.6 g/cm^2.
        let cpa = FabScenario::default().carbon_per_area(ProcessNode::N10);
        assert!((cpa.as_grams_per_cm2() - 1548.64).abs() < 0.5, "{cpa}");
    }

    #[test]
    fn cpa_rises_monotonically_with_node_generation() {
        // Figure 6 (bottom): newer nodes emit more per area under any fixed
        // fab scenario.
        for fab in
            [FabScenario::taiwan_grid(), FabScenario::default(), FabScenario::renewable()]
        {
            for pair in ProcessNode::ALL.windows(2) {
                assert!(
                    fab.carbon_per_area(pair[0]) <= fab.carbon_per_area(pair[1]),
                    "{} -> {} under {fab:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn greener_fab_energy_lowers_cpa() {
        for node in ProcessNode::ALL {
            let grid = FabScenario::taiwan_grid().carbon_per_area(node);
            let partial = FabScenario::default().carbon_per_area(node);
            let solar = FabScenario::renewable().carbon_per_area(node);
            let free = FabScenario::carbon_free().carbon_per_area(node);
            assert!(grid > partial && partial > solar && solar > free, "{node}");
        }
    }

    #[test]
    fn carbon_free_fab_keeps_gas_and_materials() {
        let breakdown = FabScenario::carbon_free().cpa_breakdown(ProcessNode::N5);
        assert_eq!(breakdown.energy.as_grams_per_cm2(), 0.0);
        assert!(breakdown.gas.as_grams_per_cm2() > 0.0);
        assert_eq!(breakdown.materials.as_grams_per_cm2(), 500.0);
    }

    #[test]
    fn yield_derates_inversely() {
        let full = FabScenario::default().with_yield(Fraction::ONE);
        let half = FabScenario::default().with_yield(Fraction::new(0.5).unwrap());
        let node = ProcessNode::N7;
        let ratio = half.carbon_per_area(node).ratio(full.carbon_per_area(node));
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "yield must be positive")]
    fn zero_yield_panics() {
        let _ =
            FabScenario::default().with_yield(Fraction::ZERO).carbon_per_area(ProcessNode::N7);
    }

    #[test]
    fn abatement_bounds_bracket_default() {
        let node = ProcessNode::N5;
        let worst = FabScenario::default().with_abatement(Abatement::Percent95);
        let best = FabScenario::default().with_abatement(Abatement::Percent99);
        let mid = FabScenario::default();
        assert!(best.carbon_per_area(node) < mid.carbon_per_area(node));
        assert!(mid.carbon_per_area(node) < worst.carbon_per_area(node));
    }

    #[test]
    fn bounds_bracket_every_scenario() {
        for node in ProcessNode::ALL {
            let (lo, hi) = FabScenario::default().cpa_bounds(node);
            assert!(lo < hi);
            for fab in [
                FabScenario::default(),
                FabScenario::taiwan_grid(),
                FabScenario::renewable().with_abatement(Abatement::Percent99),
            ] {
                let cpa = fab.carbon_per_area(node);
                assert!(lo <= cpa && cpa <= hi, "{node}: {cpa} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn breakdown_components_sum() {
        let b = FabScenario::default().cpa_breakdown(ProcessNode::N28);
        let sum = b.energy + b.gas + b.materials;
        assert_eq!(b.before_yield(), sum);
        assert!((b.total().ratio(b.before_yield()) - 1.0 / 0.875).abs() < 1e-9);
    }

    #[test]
    fn try_carbon_per_area_agrees_and_rejects_zero_yield() {
        let fab = FabScenario::default();
        let node = ProcessNode::N7;
        assert_eq!(fab.try_carbon_per_area(node).unwrap(), fab.carbon_per_area(node));

        let err = FabScenario::default()
            .with_yield(Fraction::ZERO)
            .try_carbon_per_area(node)
            .unwrap_err();
        assert!(err.to_string().contains("yield"), "{err}");
        // The unit-level cause survives the source chain.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn scenario_validation_accepts_all_presets() {
        for fab in [
            FabScenario::default(),
            FabScenario::taiwan_grid(),
            FabScenario::renewable(),
            FabScenario::coal(),
            FabScenario::carbon_free(),
        ] {
            assert!(fab.validate().is_ok(), "{fab:?}");
        }
    }
}
