//! The workspace-level model error taxonomy and the [`Validate`] trait.
//!
//! [`ModelError`] is the single error type the checked evaluation entry
//! points (`try_total_footprint`, `SystemSpec::try_embodied`,
//! `ModelParams::try_footprint`, …) return. It wraps the leaf errors of the
//! lower layers — [`act_units::UnitError`] for quantity-domain violations and
//! [`ParamsError`] for Table 1 range violations — and chains them through
//! [`std::error::Error::source`], so a sweep driver can log "embodied
//! footprint is non-finite: fab yield must be within (0, 1], got 0" without
//! knowing which layer rejected the value.

use std::fmt;

use act_units::UnitError;

use crate::ParamsError;

/// Error returned by the checked (`try_*`) evaluation entry points of the
/// ACT model.
///
/// # Examples
///
/// ```
/// use act_core::{ModelError, Validate};
///
/// let mut params = act_core::ModelParams::mobile_reference();
/// params.fab_yield = 0.0;
/// let err = Validate::validate(&params).unwrap_err();
/// assert!(err.to_string().contains("yield"));
/// // The underlying cause is preserved through the source chain.
/// assert!(std::error::Error::source(&err).is_some());
/// ```
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A physical quantity was outside its valid domain (NaN, infinite,
    /// negative, or otherwise out of range).
    Unit(UnitError),
    /// A [`crate::ModelParams`] field violated Table 1's documented ranges.
    Params(ParamsError),
    /// A model invariant was violated (e.g. a non-positive lifetime where
    /// the amortization of eq. 1 requires a positive one).
    Invariant(String),
    /// A computed result was poisoned: NaN or infinite where the model
    /// guarantees a finite footprint.
    NonFinite {
        /// What was being computed when the poisoning was detected.
        what: String,
    },
}

impl ModelError {
    /// Shorthand for [`ModelError::Invariant`].
    #[must_use]
    pub fn invariant(message: impl Into<String>) -> Self {
        Self::Invariant(message.into())
    }

    /// Shorthand for [`ModelError::NonFinite`].
    #[must_use]
    pub fn non_finite(what: impl Into<String>) -> Self {
        Self::NonFinite { what: what.into() }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unit(err) => write!(f, "invalid quantity: {err}"),
            Self::Params(err) => err.fmt(f),
            Self::Invariant(message) => write!(f, "model invariant violated: {message}"),
            Self::NonFinite { what } => write!(f, "{what} is not finite"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Unit(err) => Some(err),
            Self::Params(err) => Some(err),
            Self::Invariant(_) | Self::NonFinite { .. } => None,
        }
    }
}

impl From<UnitError> for ModelError {
    fn from(err: UnitError) -> Self {
        Self::Unit(err)
    }
}

impl From<ParamsError> for ModelError {
    fn from(err: ParamsError) -> Self {
        Self::Params(err)
    }
}

/// Structural validation of model inputs.
///
/// Implemented by every deserializable input surface of the model
/// ([`crate::ModelParams`], [`crate::FabScenario`], [`crate::SystemSpec`],
/// [`crate::OperationalModel`], [`crate::TransportModel`]), so a driver can
/// reject a config file before evaluating anything with it.
pub trait Validate {
    /// Checks every invariant the checked entry points rely on.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the first violated invariant.
    fn validate(&self) -> Result<(), ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_unit_error_with_source() {
        let unit = UnitError::out_of_domain("fab yield", 0.0, "within (0, 1]");
        let err = ModelError::from(unit);
        assert!(err.to_string().contains("fab yield"));
        let source = err.source().expect("unit errors chain through source");
        assert_eq!(source.to_string(), unit.to_string());
    }

    #[test]
    fn invariant_and_non_finite_have_no_source() {
        assert!(ModelError::invariant("lifetime must be positive").source().is_none());
        assert!(ModelError::non_finite("embodied footprint").source().is_none());
    }

    #[test]
    fn display_is_descriptive() {
        let err = ModelError::invariant("hardware lifetime must be positive");
        assert_eq!(
            err.to_string(),
            "model invariant violated: hardware lifetime must be positive"
        );
        let err = ModelError::non_finite("total footprint");
        assert_eq!(err.to_string(), "total footprint is not finite");
    }
}
