//! Table 2's use-case dependent optimization metrics: the classic EDP/EDAP
//! next to ACT's carbon-aware CDP, CEP, C²EP and CE²P.

use std::fmt;

use act_units::{Area, Energy, MassCo2, TimeSpan};

/// The coordinates of one hardware design in the optimization space:
/// embodied carbon `C`, energy `E`, delay `D` and area `A`.
///
/// # Examples
///
/// ```
/// use act_core::{DesignPoint, OptimizationMetric};
/// use act_units::{Area, Energy, MassCo2, TimeSpan};
///
/// let cpu = DesignPoint {
///     embodied: MassCo2::grams(253.0),
///     energy: Energy::millijoules(39.6),
///     delay: TimeSpan::milliseconds(6.0),
///     area: Area::square_millimeters(16.3),
/// };
/// assert!(OptimizationMetric::Cdp.score(&cpu) > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// Embodied carbon footprint `C`.
    pub embodied: MassCo2,
    /// Operational energy `E` for the task of interest.
    pub energy: Energy,
    /// Task delay `D`.
    pub delay: TimeSpan,
    /// Silicon area `A`.
    pub area: Area,
}

act_json::impl_to_json!(DesignPoint { embodied, energy, delay, area });
act_json::impl_from_json!(DesignPoint { embodied, energy, delay, area });

/// A hardware optimization metric from ACT's Table 2. Lower is better for
/// all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptimizationMetric {
    /// Energy-delay product: classic operational-energy optimization
    /// (e.g. mobile).
    Edp,
    /// Energy-delay-area product: energy plus capital cost (e.g. mobile).
    Edap,
    /// Carbon-delay product: balance embodied CO₂ and performance
    /// (e.g. sustainable data centers).
    Cdp,
    /// Carbon-energy product: balance embodied CO₂ and energy
    /// (e.g. sustainable mobile devices).
    Cep,
    /// Carbon²-energy product: prioritize embodied CO₂ — systems powered by
    /// renewable/carbon-free energy.
    C2ep,
    /// Carbon-energy² product: prioritize energy — systems powered by
    /// "brown" energy.
    Ce2p,
}

act_json::impl_json_enum!(OptimizationMetric { Edp, Edap, Cdp, Cep, C2ep, Ce2p });

impl OptimizationMetric {
    /// All metrics in Table 2 order.
    pub const ALL: [Self; 6] =
        [Self::Edp, Self::Edap, Self::Cdp, Self::Cep, Self::C2ep, Self::Ce2p];

    /// The four carbon-aware metrics ACT introduces.
    pub const CARBON_AWARE: [Self; 4] = [Self::Cdp, Self::Cep, Self::C2ep, Self::Ce2p];

    /// Evaluates the metric on a design point. Scores are products of base
    /// units (grams, joules, seconds, cm²); only ratios between designs are
    /// meaningful.
    #[must_use]
    pub fn score(&self, point: &DesignPoint) -> f64 {
        let c = point.embodied.as_grams();
        let e = point.energy.as_joules();
        let d = point.delay.as_seconds();
        let a = point.area.as_square_centimeters();
        match self {
            Self::Edp => e * d,
            Self::Edap => e * d * a,
            Self::Cdp => c * d,
            Self::Cep => c * e,
            Self::C2ep => c * c * e,
            Self::Ce2p => c * e * e,
        }
    }

    /// `true` for the metrics that include embodied carbon.
    #[must_use]
    pub fn is_carbon_aware(&self) -> bool {
        Self::CARBON_AWARE.contains(self)
    }

    /// Table 2's use-case description.
    #[must_use]
    pub fn use_case(&self) -> &'static str {
        match self {
            Self::Edp => "energy optimization (e.g., mobile)",
            Self::Edap => "energy and cost optimization (e.g., mobile)",
            Self::Cdp => "balance CO2 and perf. (e.g., sustainable data center)",
            Self::Cep => "balance CO2 and energy (e.g., sustainable mobile device)",
            Self::C2ep => "sustainable device dominated by embodied footprint",
            Self::Ce2p => "sustainable device dominated by operational footprint",
        }
    }

    /// Index of the design with the lowest (best) score. Returns `None` for
    /// an empty slice or when every design scores NaN; designs with NaN
    /// scores are never selected.
    #[must_use]
    pub fn best<'a, I>(&self, designs: I) -> Option<usize>
    where
        I: IntoIterator<Item = &'a DesignPoint>,
    {
        designs
            .into_iter()
            .map(|p| self.score(p))
            .enumerate()
            .filter(|(_, score)| !score.is_nan())
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
    }
}

impl fmt::Display for OptimizationMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Edp => "EDP",
            Self::Edap => "EDAP",
            Self::Cdp => "CDP",
            Self::Cep => "CEP",
            Self::C2ep => "C2EP",
            Self::Ce2p => "CE2P",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(c: f64, e: f64, d: f64, a: f64) -> DesignPoint {
        DesignPoint {
            embodied: MassCo2::grams(c),
            energy: Energy::joules(e),
            delay: TimeSpan::seconds(d),
            area: Area::square_centimeters(a),
        }
    }

    #[test]
    fn scores_are_the_advertised_products() {
        let p = point(2.0, 3.0, 5.0, 7.0);
        assert!((OptimizationMetric::Edp.score(&p) - 15.0).abs() < 1e-12);
        assert!((OptimizationMetric::Edap.score(&p) - 105.0).abs() < 1e-12);
        assert!((OptimizationMetric::Cdp.score(&p) - 10.0).abs() < 1e-12);
        assert!((OptimizationMetric::Cep.score(&p) - 6.0).abs() < 1e-12);
        assert!((OptimizationMetric::C2ep.score(&p) - 12.0).abs() < 1e-12);
        assert!((OptimizationMetric::Ce2p.score(&p) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn carbon_weighting_orders_designs_differently() {
        // A lean, slow design vs an over-provisioned fast one.
        let lean = point(1.0, 2.0, 4.0, 0.5);
        let big = point(4.0, 1.0, 1.0, 2.0);
        // Pure performance metrics favor the big design...
        assert!(OptimizationMetric::Edp.score(&big) < OptimizationMetric::Edp.score(&lean));
        // ...while embodied-heavy metrics favor the lean one.
        assert!(OptimizationMetric::C2ep.score(&lean) < OptimizationMetric::C2ep.score(&big));
    }

    #[test]
    fn best_selects_minimum() {
        let designs =
            [point(1.0, 1.0, 1.0, 1.0), point(0.5, 1.0, 1.0, 1.0), point(2.0, 0.1, 1.0, 1.0)];
        assert_eq!(OptimizationMetric::Cdp.best(&designs), Some(1));
        assert_eq!(OptimizationMetric::Edp.best(&designs), Some(2));
        assert_eq!(OptimizationMetric::Cdp.best([].iter()), None);
    }

    #[test]
    fn best_skips_nan_scores_instead_of_panicking() {
        // A poisoned embodied value, produced by arithmetic rather than a
        // constructor (constructors debug-assert finiteness).
        let mut poisoned = point(1.0, 1.0, 1.0, 1.0);
        poisoned.embodied = MassCo2::ZERO / 0.0;
        assert!(OptimizationMetric::Cdp.score(&poisoned).is_nan());
        let designs = [poisoned, point(0.5, 1.0, 1.0, 1.0)];
        assert_eq!(OptimizationMetric::Cdp.best(&designs), Some(1));
        assert_eq!(OptimizationMetric::Cdp.best(&[poisoned]), None);
    }

    #[test]
    fn carbon_aware_partition() {
        assert!(!OptimizationMetric::Edp.is_carbon_aware());
        assert!(!OptimizationMetric::Edap.is_carbon_aware());
        for m in OptimizationMetric::CARBON_AWARE {
            assert!(m.is_carbon_aware());
        }
    }

    #[test]
    fn table2_use_cases_present() {
        for m in OptimizationMetric::ALL {
            assert!(!m.use_case().is_empty());
            assert!(!m.to_string().is_empty());
        }
        assert_eq!(OptimizationMetric::C2ep.to_string(), "C2EP");
    }
}
