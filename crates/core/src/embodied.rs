//! The embodied-carbon model of eqs. 3–8: per-component footprints for
//! application processors, DRAM, SSD and HDD storage, plus IC packaging.

use std::borrow::Cow;
use std::fmt;

use act_data::devices::DeviceBom;
use act_data::{DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_units::{Area, Capacity, MassCo2, UnitError};

use crate::{FabScenario, ModelError, Validate};

/// Per-IC packaging footprint `Kr` (eq. 3), from SPIL's environmental
/// reporting: 0.15 kg CO₂ per packaged IC.
pub const PACKAGING_FOOTPRINT: MassCo2 = MassCo2::grams(150.0);

/// The component class an embodied contribution belongs to (the categories
/// of eq. 3 plus packaging).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// Application processors and other logic dies (eq. 4).
    Soc,
    /// DRAM memory (eq. 6).
    Dram,
    /// NAND-flash storage (eq. 8).
    Ssd,
    /// Magnetic storage (eq. 7).
    Hdd,
    /// IC packaging overhead (`Nr × Kr`).
    Packaging,
}

act_json::impl_json_enum!(ComponentKind { Soc, Dram, Ssd, Hdd, Packaging });

impl ComponentKind {
    /// All kinds in eq. 3 order.
    pub const ALL: [Self; 5] = [Self::Soc, Self::Dram, Self::Ssd, Self::Hdd, Self::Packaging];
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Soc => "SoC",
            Self::Dram => "DRAM",
            Self::Ssd => "SSD",
            Self::Hdd => "HDD",
            Self::Packaging => "Packaging",
        };
        f.write_str(name)
    }
}

/// One hardware component of a [`SystemSpec`].
#[derive(Clone, Debug, PartialEq)]
enum Component {
    Soc { label: Cow<'static, str>, area: Area, node: ProcessNode },
    Dram { technology: DramTechnology, capacity: Capacity },
    Ssd { technology: SsdTechnology, capacity: Capacity },
    Hdd { model: HddModel, capacity: Capacity },
}

impl act_json::ToJson for Component {
    fn to_json(&self) -> act_json::JsonValue {
        match self {
            Self::Soc { label, area, node } => act_json::obj! {
                "Soc": act_json::obj! { "label": label, "area": area, "node": node },
            },
            Self::Dram { technology, capacity } => act_json::obj! {
                "Dram": act_json::obj! { "technology": technology, "capacity": capacity },
            },
            Self::Ssd { technology, capacity } => act_json::obj! {
                "Ssd": act_json::obj! { "technology": technology, "capacity": capacity },
            },
            Self::Hdd { model, capacity } => act_json::obj! {
                "Hdd": act_json::obj! { "model": model, "capacity": capacity },
            },
        }
    }
}

/// Checks every component magnitude a spec (or builder) holds: die areas
/// and capacities must be finite and non-negative.
fn validate_components(components: &[Component]) -> Result<(), ModelError> {
    for component in components {
        match component {
            Component::Soc { label, area, node: _ } => {
                let mm2 = area.as_square_millimeters();
                if !mm2.is_finite() {
                    return Err(UnitError::non_finite("SoC die area", mm2).into());
                }
                if mm2 < 0.0 {
                    return Err(ModelError::invariant(format!(
                        "SoC `{label}` has a negative die area ({mm2} mm^2)"
                    )));
                }
            }
            Component::Dram { capacity, .. }
            | Component::Ssd { capacity, .. }
            | Component::Hdd { capacity, .. } => {
                let gb = capacity.as_gigabytes();
                if !gb.is_finite() {
                    return Err(UnitError::non_finite("storage capacity", gb).into());
                }
                if gb < 0.0 {
                    return Err(ModelError::invariant(format!(
                        "storage capacity must be non-negative, got {gb} GB"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// A hardware platform description: the inputs to the embodied model
/// (eq. 3). Build one with [`SystemSpec::builder`] or from a device teardown
/// with [`SystemSpec::from_bom`].
///
/// # Examples
///
/// ```
/// use act_core::{FabScenario, SystemSpec};
/// use act_data::{ProcessNode, SsdTechnology};
/// use act_units::{Area, Capacity};
///
/// let ssd_device = SystemSpec::builder()
///     .soc("controller", Area::square_millimeters(50.0), ProcessNode::N28)
///     .ssd(SsdTechnology::V3NandTlc, Capacity::gigabytes(512.0))
///     .packaged_ics(5)
///     .build();
/// let report = ssd_device.embodied(&FabScenario::default());
/// assert!(report.total().as_kilograms() > 3.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SystemSpec {
    components: Vec<Component>,
    packaged_ic_count: u32,
}

act_json::impl_to_json!(SystemSpec { components, packaged_ic_count });

impl SystemSpec {
    /// Starts building a system description.
    #[must_use]
    pub fn builder() -> SystemSpecBuilder {
        SystemSpecBuilder::default()
    }

    /// Builds a system from one of the encoded device teardowns.
    #[must_use]
    pub fn from_bom(bom: &DeviceBom) -> Self {
        let mut builder = Self::builder();
        for chip in bom.chips {
            builder = builder.soc(chip.name, chip.area(), chip.node);
        }
        for dram in bom.dram {
            builder = builder.dram(dram.technology, dram.capacity());
        }
        for ssd in bom.ssd {
            builder = builder.ssd(ssd.technology, ssd.capacity());
        }
        for hdd in bom.hdd {
            builder = builder.hdd(hdd.model, Capacity::gigabytes(hdd.capacity_gb));
        }
        builder.packaged_ics(bom.packaged_ic_count).build()
    }

    /// Number of packaged ICs, `Nr` in eq. 3.
    #[must_use]
    pub fn packaged_ic_count(&self) -> u32 {
        self.packaged_ic_count
    }

    /// Evaluates the embodied model under the Figure 6 uncertainty band:
    /// the lower bound assumes solar-powered fabs with 99 % abatement, the
    /// upper bound the Taiwan grid with 95 % abatement. Memory/storage
    /// factors and packaging are report-based constants, so only the logic
    /// components spread.
    #[must_use]
    pub fn embodied_bounds(&self, fab: &FabScenario) -> (MassCo2, MassCo2) {
        use act_data::Abatement;
        let lower = crate::FabScenario::renewable()
            .with_abatement(Abatement::Percent99)
            .with_yield(fab.fab_yield);
        let upper = crate::FabScenario::taiwan_grid()
            .with_abatement(Abatement::Percent95)
            .with_yield(fab.fab_yield);
        (self.embodied(&lower).total(), self.embodied(&upper).total())
    }

    /// Evaluates the embodied model (eqs. 3–8) under a fab scenario,
    /// returning the per-component breakdown.
    #[must_use]
    pub fn embodied(&self, fab: &FabScenario) -> EmbodiedReport {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        for component in &self.components {
            let (kind, label, mass) = match component {
                Component::Soc { label, area, node } => (
                    ComponentKind::Soc,
                    label.clone().into_owned(),
                    // Eq. 4: E_SoC = Area x CPA (memoized — bit-identical
                    // to `fab.carbon_per_area(*node) * *area`).
                    crate::memo::carbon_per_area(fab, *node) * *area,
                ),
                Component::Dram { technology, capacity } => (
                    ComponentKind::Dram,
                    technology.to_string(),
                    crate::memo::dram_embodied(*technology, *capacity),
                ),
                Component::Ssd { technology, capacity } => (
                    ComponentKind::Ssd,
                    technology.to_string(),
                    crate::memo::ssd_embodied(*technology, *capacity),
                ),
                Component::Hdd { model, capacity } => (
                    ComponentKind::Hdd,
                    model.to_string(),
                    crate::memo::hdd_embodied(*model, *capacity),
                ),
            };
            components.push(EmbodiedComponent { kind, label, footprint: mass });
        }
        if self.packaged_ic_count > 0 {
            components.push(EmbodiedComponent {
                kind: ComponentKind::Packaging,
                label: format!("{} packaged ICs", self.packaged_ic_count),
                footprint: PACKAGING_FOOTPRINT * f64::from(self.packaged_ic_count),
            });
        }
        EmbodiedReport { components }
    }

    /// Checked variant of [`Self::embodied`]: validates the spec and the fab
    /// scenario up front and guarantees every component footprint in the
    /// returned report is finite.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the spec holds a non-finite or negative
    /// magnitude, the fab scenario is invalid (e.g. zero yield), or any
    /// component footprint evaluates to a non-finite mass.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_core::{FabScenario, SystemSpec};
    /// use act_units::Fraction;
    ///
    /// let spec = SystemSpec::builder().packaged_ics(3).build();
    /// assert!(spec.try_embodied(&FabScenario::default()).is_ok());
    ///
    /// let zero_yield = FabScenario::default().with_yield(Fraction::ZERO);
    /// assert!(spec.try_embodied(&zero_yield).is_err());
    /// ```
    pub fn try_embodied(&self, fab: &FabScenario) -> Result<EmbodiedReport, ModelError> {
        self.validate()?;
        fab.validate()?;
        let report = self.embodied(fab);
        for component in report.components() {
            if !component.footprint.as_grams().is_finite() {
                return Err(ModelError::non_finite(format!(
                    "embodied footprint of {} `{}`",
                    component.kind, component.label
                )));
            }
        }
        Ok(report)
    }
}

impl Validate for SystemSpec {
    fn validate(&self) -> Result<(), ModelError> {
        validate_components(&self.components)
    }
}

/// Builder for [`SystemSpec`].
#[derive(Clone, Debug, Default)]
pub struct SystemSpecBuilder {
    components: Vec<Component>,
    packaged_ic_count: u32,
}

impl SystemSpecBuilder {
    /// Adds a logic die (application processor, co-processor, controller…).
    ///
    /// The label accepts both `&'static str` (no allocation — this is the
    /// sweep hot path, where a per-point `String` allocation used to
    /// dominate) and owned `String`s for dynamically-built labels.
    #[must_use]
    pub fn soc(
        mut self,
        label: impl Into<Cow<'static, str>>,
        area: Area,
        node: ProcessNode,
    ) -> Self {
        self.components.push(Component::Soc { label: label.into(), area, node });
        self
    }

    /// Adds DRAM capacity of a given technology.
    #[must_use]
    pub fn dram(mut self, technology: DramTechnology, capacity: Capacity) -> Self {
        self.components.push(Component::Dram { technology, capacity });
        self
    }

    /// Adds NAND/SSD capacity of a given technology.
    #[must_use]
    pub fn ssd(mut self, technology: SsdTechnology, capacity: Capacity) -> Self {
        self.components.push(Component::Ssd { technology, capacity });
        self
    }

    /// Adds HDD capacity of a given model.
    #[must_use]
    pub fn hdd(mut self, model: HddModel, capacity: Capacity) -> Self {
        self.components.push(Component::Hdd { model, capacity });
        self
    }

    /// Sets the packaged IC count `Nr` (each IC incurs `Kr` = 0.15 kg CO₂).
    #[must_use]
    pub fn packaged_ics(mut self, count: u32) -> Self {
        self.packaged_ic_count = count;
        self
    }

    /// Finalizes the system description.
    #[must_use]
    pub fn build(self) -> SystemSpec {
        SystemSpec { components: self.components, packaged_ic_count: self.packaged_ic_count }
    }

    /// Validating variant of [`Self::build`]: rejects specs holding
    /// non-finite or negative die areas or capacities.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] naming the first invalid component.
    pub fn try_build(self) -> Result<SystemSpec, ModelError> {
        self.validate()?;
        Ok(self.build())
    }
}

impl Validate for SystemSpecBuilder {
    fn validate(&self) -> Result<(), ModelError> {
        validate_components(&self.components)
    }
}

/// One component's contribution to an [`EmbodiedReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct EmbodiedComponent {
    /// Component class.
    pub kind: ComponentKind,
    /// Human-readable label.
    pub label: String,
    /// Embodied footprint of the component.
    pub footprint: MassCo2,
}

act_json::impl_to_json!(EmbodiedComponent { kind, label, footprint });

/// The result of evaluating the embodied model: eq. 3's sum, kept
/// per-component so designers can see the breakdown Figure 4 argues LCAs
/// cannot provide.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbodiedReport {
    components: Vec<EmbodiedComponent>,
}

act_json::impl_to_json!(EmbodiedReport { components });

impl EmbodiedReport {
    /// Total embodied footprint, `ECF` (eq. 3).
    #[must_use]
    pub fn total(&self) -> MassCo2 {
        self.components.iter().map(|c| c.footprint).sum()
    }

    /// Total contribution of one component class.
    #[must_use]
    pub fn by_kind(&self, kind: ComponentKind) -> MassCo2 {
        self.components.iter().filter(|c| c.kind == kind).map(|c| c.footprint).sum()
    }

    /// Iterates over the individual component contributions.
    pub fn components(&self) -> impl Iterator<Item = &EmbodiedComponent> {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_data::devices;

    #[test]
    fn eq4_soc_footprint_is_area_times_cpa() {
        let fab = FabScenario::default();
        let area = Area::square_millimeters(94.0);
        let spec = SystemSpec::builder().soc("die", area, ProcessNode::N10).build();
        let expected = fab.carbon_per_area(ProcessNode::N10) * area;
        assert_eq!(spec.embodied(&fab).total(), expected);
    }

    #[test]
    fn eq6_to_8_capacity_scaling() {
        let fab = FabScenario::default();
        let spec = SystemSpec::builder()
            .dram(DramTechnology::Lpddr4, Capacity::gigabytes(8.0))
            .ssd(SsdTechnology::V3NandTlc, Capacity::gigabytes(256.0))
            .hdd(HddModel::ExosX16, Capacity::terabytes(16.0))
            .build();
        let report = spec.embodied(&fab);
        assert!((report.by_kind(ComponentKind::Dram).as_grams() - 8.0 * 48.0).abs() < 1e-9);
        assert!((report.by_kind(ComponentKind::Ssd).as_grams() - 256.0 * 6.3).abs() < 1e-9);
        assert!(
            (report.by_kind(ComponentKind::Hdd).as_grams() - 16.0 * 1024.0 * 1.33).abs() < 1e-6
        );
    }

    #[test]
    fn packaging_is_count_times_kr() {
        let spec = SystemSpec::builder().packaged_ics(30).build();
        let report = spec.embodied(&FabScenario::default());
        assert!((report.total().as_kilograms() - 4.5).abs() < 1e-9);
        assert_eq!(report.by_kind(ComponentKind::Packaging), report.total());
    }

    #[test]
    fn report_total_is_sum_of_components() {
        let spec = SystemSpec::from_bom(&devices::IPHONE_11);
        let report = spec.embodied(&FabScenario::default());
        let sum: MassCo2 = ComponentKind::ALL.iter().map(|k| report.by_kind(*k)).sum();
        assert!((report.total().ratio(sum) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure4_iphone11_lands_near_17kg() {
        let report =
            SystemSpec::from_bom(&devices::IPHONE_11).embodied(&FabScenario::default());
        let kg = report.total().as_kilograms();
        assert!((15.0..=19.0).contains(&kg), "iPhone 11 ICs = {kg} kg");
    }

    #[test]
    fn figure4_ipad_lands_near_21kg() {
        let report = SystemSpec::from_bom(&devices::IPAD).embodied(&FabScenario::default());
        let kg = report.total().as_kilograms();
        assert!((18.5..=23.5).contains(&kg), "iPad ICs = {kg} kg");
    }

    #[test]
    fn snapdragon845_block_areas_reproduce_table4_embodied() {
        use act_data::snapdragon845::{profile, Engine, NODE};
        let fab = FabScenario::default();
        let ecf =
            |engine| (fab.carbon_per_area(NODE) * profile(engine).block_area()).as_grams();
        assert!((ecf(Engine::Cpu) - 253.0).abs() < 3.0, "CPU {}", ecf(Engine::Cpu));
        assert!((ecf(Engine::Gpu) - 189.0).abs() < 3.0, "GPU {}", ecf(Engine::Gpu));
        assert!((ecf(Engine::Dsp) - 205.0).abs() < 3.0, "DSP {}", ecf(Engine::Dsp));
    }

    #[test]
    fn greener_fab_shrinks_only_soc_share() {
        let spec = SystemSpec::from_bom(&devices::IPHONE_11);
        let default_fab = spec.embodied(&FabScenario::default());
        let green = spec.embodied(&FabScenario::renewable());
        assert!(green.by_kind(ComponentKind::Soc) < default_fab.by_kind(ComponentKind::Soc));
        assert_eq!(
            green.by_kind(ComponentKind::Dram),
            default_fab.by_kind(ComponentKind::Dram)
        );
        assert_eq!(
            green.by_kind(ComponentKind::Packaging),
            default_fab.by_kind(ComponentKind::Packaging)
        );
    }

    #[test]
    fn bounds_bracket_the_point_estimate() {
        let spec = SystemSpec::from_bom(&devices::IPHONE_11);
        let fab = FabScenario::default();
        let (lo, hi) = spec.embodied_bounds(&fab);
        let point = spec.embodied(&fab).total();
        assert!(lo < point && point < hi, "{lo} < {point} < {hi}");
        // Memory, storage and packaging don't spread, so the band is
        // moderate for a device dominated by packaging and report factors.
        assert!(hi.ratio(lo) < 2.0, "band {lo}..{hi}");
    }

    #[test]
    fn component_iteration_exposes_labels() {
        let report =
            SystemSpec::from_bom(&devices::IPHONE_11).embodied(&FabScenario::default());
        let labels: Vec<_> = report.components().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"A13 Bionic SoC"));
        assert!(labels.iter().any(|l| l.contains("packaged ICs")));
    }

    #[test]
    fn empty_system_has_zero_footprint() {
        let report = SystemSpec::builder().build().embodied(&FabScenario::default());
        assert_eq!(report.total(), MassCo2::ZERO);
    }

    #[test]
    fn component_kind_display() {
        assert_eq!(ComponentKind::Soc.to_string(), "SoC");
        assert_eq!(ComponentKind::Packaging.to_string(), "Packaging");
    }

    #[test]
    fn try_build_accepts_valid_and_rejects_negative_magnitudes() {
        let ok = SystemSpec::builder()
            .soc("die", Area::square_millimeters(90.0), ProcessNode::N7)
            .packaged_ics(2)
            .try_build();
        assert!(ok.is_ok());

        let err = SystemSpec::builder()
            .soc("die", Area::square_millimeters(-5.0), ProcessNode::N7)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("die area"), "{err}");

        let err = SystemSpec::builder()
            .dram(DramTechnology::Lpddr4, Capacity::gigabytes(-8.0))
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("capacity"), "{err}");
    }

    #[test]
    fn try_embodied_agrees_with_unchecked_path() {
        let spec = SystemSpec::from_bom(&devices::IPHONE_11);
        let fab = FabScenario::default();
        let checked = spec.try_embodied(&fab).unwrap();
        assert_eq!(checked.total(), spec.embodied(&fab).total());
    }

    #[test]
    fn try_embodied_rejects_zero_yield_instead_of_panicking() {
        use act_units::Fraction;
        let spec = SystemSpec::builder()
            .soc("die", Area::square_millimeters(90.0), ProcessNode::N7)
            .build();
        let err =
            spec.try_embodied(&FabScenario::default().with_yield(Fraction::ZERO)).unwrap_err();
        assert!(err.to_string().contains("yield"), "{err}");
    }
}
