//! Partially-evaluated footprint kernels: eq. 1 compiled down to a
//! handful of FLOPs per design point.
//!
//! Every point of a sweep or Monte-Carlo run that goes through
//! [`ModelParams::footprint`] re-derives the whole pipeline — a fresh
//! [`crate::FabScenario`], a fresh [`crate::SystemSpec`] (heap-allocated
//! component list), per-GB table lookups — even when only one axis varies.
//! [`CompiledFootprint`] partially evaluates a `ModelParams` against a set
//! of declared [`FreeAxis`] values: every sweep-invariant sub-term
//! (per-component embodied gCO₂, the CPA numerator pieces of eq. 5, the
//! operational coefficient of eq. 2, the `T/LT` amortization ratio of
//! eq. 1) is folded into a plain `f64` coefficient at compile time, so
//! [`CompiledFootprint::eval`] runs with **zero heap allocation**.
//!
//! Folding replays the *exact* floating-point operation sequence of the
//! interpreted model (same associativity, same division-vs-multiply
//! choices, same component order in the eq. 3 sum), so results are
//! bit-for-bit identical to [`ModelParams::try_footprint`] — the old
//! per-point path stays public as the oracle, and the property tests in
//! `crates/core/tests/compiled.rs` pin the equivalence. Expensive
//! discrete sub-terms (CPA, per-device storage footprints) are interned
//! through [`crate::memo`] at compile time, so repeated configurations
//! across kernels share work.
//!
//! # Examples
//!
//! ```
//! use act_core::{CompiledFootprint, FreeAxis, ModelParams};
//!
//! let params = ModelParams::mobile_reference();
//! let kernel = CompiledFootprint::try_compile(&params, &[FreeAxis::SocArea])?;
//! // Evaluating the kernel at the baseline area reproduces the oracle
//! // bit-for-bit.
//! let compiled = kernel.eval(&[params.soc_area_mm2]);
//! let oracle = params.try_footprint()?.as_grams();
//! assert_eq!(compiled.to_bits(), oracle.to_bits());
//! # Ok::<(), act_core::ModelError>(())
//! ```

use std::fmt;
use std::ops::Range;

use act_units::{Area, Capacity, CarbonIntensity, Energy, TimeSpan, UnitError};

use crate::{memo, ModelError, ModelParams, OperationalModel, PACKAGING_FOOTPRINT};

/// Lane width of the block-vectorized evaluation path: [`EvalPlan::eval_block`]
/// walks design points in fixed blocks of `LANES` so every inner loop has a
/// compile-time trip count rustc can unroll and auto-vectorize. 64 lanes of
/// `f64` are 512 bytes per operand buffer — a handful of cache lines, well
/// inside L1 even with several live lanes.
pub const LANES: usize = 64;

/// One `ModelParams` field (or storage-population entry) left *free* — i.e.
/// supplied per point at [`CompiledFootprint::eval`] time instead of folded
/// into the kernel's constants.
///
/// Point coordinates are given in the same units as the corresponding
/// `ModelParams` field (seconds, years, mm², g CO₂/kWh, a yield fraction,
/// joules, GB).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FreeAxis {
    /// `T` — application execution time in seconds.
    ExecutionTime,
    /// `LT` — hardware lifetime in years.
    Lifetime,
    /// `A` — application-processor die area in mm².
    SocArea,
    /// `CIuse` — use-phase carbon intensity in g CO₂/kWh.
    UseIntensity,
    /// `CIfab` — fab carbon intensity in g CO₂/kWh.
    FabIntensity,
    /// `Y` — fab yield in `(0, 1]`.
    FabYield,
    /// Application energy over `T`, in joules.
    Energy,
    /// Capacity (GB) of the `i`-th DRAM population entry.
    DramCapacity(usize),
    /// Capacity (GB) of the `i`-th SSD population entry.
    SsdCapacity(usize),
    /// Capacity (GB) of the `i`-th HDD population entry.
    HddCapacity(usize),
}

impl fmt::Display for FreeAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ExecutionTime => f.write_str("execution time (s)"),
            Self::Lifetime => f.write_str("lifetime (years)"),
            Self::SocArea => f.write_str("SoC area (mm^2)"),
            Self::UseIntensity => f.write_str("use carbon intensity (g/kWh)"),
            Self::FabIntensity => f.write_str("fab carbon intensity (g/kWh)"),
            Self::FabYield => f.write_str("fab yield"),
            Self::Energy => f.write_str("application energy (J)"),
            Self::DramCapacity(i) => write!(f, "DRAM[{i}] capacity (GB)"),
            Self::SsdCapacity(i) => write!(f, "SSD[{i}] capacity (GB)"),
            Self::HddCapacity(i) => write!(f, "HDD[{i}] capacity (GB)"),
        }
    }
}

impl FreeAxis {
    /// Validates one point coordinate against the same Table 1 range the
    /// corresponding [`ModelParams`] field enforces.
    fn check(self, value: f64) -> Result<(), ModelError> {
        let domain = |quantity: &'static str, expected: &'static str| {
            let err = if value.is_finite() {
                UnitError::out_of_domain(quantity, value, expected)
            } else {
                UnitError::non_finite(quantity, value)
            };
            Err(ModelError::from(err))
        };
        match self {
            Self::ExecutionTime if !(value >= 0.0 && value.is_finite()) => {
                domain("execution time", "non-negative seconds")
            }
            Self::Lifetime if !(0.1..=50.0).contains(&value) => {
                domain("hardware lifetime", "within [0.1, 50] years")
            }
            Self::SocArea if !(value >= 0.0 && value.is_finite()) => {
                domain("SoC area", "non-negative mm^2")
            }
            Self::UseIntensity | Self::FabIntensity if !(0.0..=2000.0).contains(&value) => {
                domain("carbon intensity", "within [0, 2000] g CO2/kWh")
            }
            Self::FabYield if !(value > 0.0 && value <= 1.0) => {
                domain("fab yield", "within (0, 1]")
            }
            Self::Energy if !(value >= 0.0 && value.is_finite()) => {
                domain("application energy", "non-negative joules")
            }
            Self::DramCapacity(_) | Self::SsdCapacity(_) | Self::HddCapacity(_)
                if !(value >= 0.0 && value.is_finite()) =>
            {
                domain("storage capacity", "non-negative GB")
            }
            _ => Ok(()),
        }
    }
}

/// A scalar operand of the compiled kernel: either folded to a constant or
/// read from a point coordinate (already in the oracle's base unit).
#[derive(Clone, Copy, Debug)]
enum Scalar {
    Const(f64),
    Axis(usize),
}

impl Scalar {
    #[inline]
    fn get(self, point: &[f64]) -> f64 {
        match self {
            Self::Const(value) => value,
            Self::Axis(index) => point[index],
        }
    }
}

/// The operational term of eq. 2, `CIuse × (E × effectiveness)`.
#[derive(Clone, Copy, Debug)]
enum OpTerm {
    /// Fully invariant: the folded gCO₂ value.
    Const(f64),
    /// At least one operand varies per point.
    Dynamic { intensity: Scalar, energy: EnergySource },
}

/// Where the per-point useful energy (kWh) comes from.
#[derive(Clone, Copy, Debug)]
enum EnergySource {
    /// Invariant energy, pre-converted to the model's kWh base.
    KwhConst(f64),
    /// Free axis carrying joules; converted per point exactly like the
    /// oracle's `Energy::joules` constructor.
    JoulesAxis(usize),
}

/// Where the per-point SoC die area (cm²) comes from.
#[derive(Clone, Copy, Debug)]
enum AreaSource {
    /// Invariant area, pre-converted to the model's cm² base.
    Cm2Const(f64),
    /// Free axis carrying mm²; converted per point exactly like the
    /// oracle's `Area::square_millimeters` constructor.
    Mm2Axis(usize),
}

/// One addend of the eq. 3 embodied sum, in component order.
#[derive(Clone, Copy, Debug)]
enum EmbodiedTerm {
    /// Fully invariant component: its folded gCO₂ footprint.
    Const(f64),
    /// SoC with an invariant CPA but a free die area: `CPA × A` (eq. 4).
    SocAreaScaled { cpa_g_per_cm2: f64, area: AreaSource },
    /// SoC whose CPA itself varies (free fab intensity and/or yield):
    /// the full eq. 5 residual `(CI·EPA + GPA + MPA) / Y × A`.
    SocCpa {
        epa_kwh_per_cm2: f64,
        gpa_g_per_cm2: f64,
        mpa_g_per_cm2: f64,
        intensity: Scalar,
        fab_yield: Scalar,
        area: AreaSource,
    },
    /// Storage entry with a free capacity: `CPS × capacity` (eqs. 6–8).
    StorageScaled { grams_per_gb: f64, capacity_axis: usize },
}

impl EmbodiedTerm {
    #[inline]
    fn eval(&self, point: &[f64]) -> f64 {
        match self {
            Self::Const(value) => *value,
            Self::SocAreaScaled { cpa_g_per_cm2, area } => cpa_g_per_cm2 * area.get(point),
            Self::SocCpa {
                epa_kwh_per_cm2,
                gpa_g_per_cm2,
                mpa_g_per_cm2,
                intensity,
                fab_yield,
                area,
            } => {
                // Exactly eq. 5 as `FabScenario::cpa_breakdown` + `total()`
                // compute it: CI×EPA, then left-associated additions, then
                // the yield division, then eq. 4's area multiply.
                let energy = intensity.get(point) * epa_kwh_per_cm2;
                let before_yield = (energy + gpa_g_per_cm2) + mpa_g_per_cm2;
                let cpa = before_yield / fab_yield.get(point);
                cpa * area.get(point)
            }
            Self::StorageScaled { grams_per_gb, capacity_axis } => {
                grams_per_gb * point[*capacity_axis]
            }
        }
    }
}

impl EnergySource {
    #[inline]
    fn get(self, point: &[f64]) -> f64 {
        match self {
            Self::KwhConst(value) => value,
            Self::JoulesAxis(index) => Energy::joules(point[index]).as_kilowatt_hours(),
        }
    }
}

impl AreaSource {
    #[inline]
    fn get(self, point: &[f64]) -> f64 {
        match self {
            Self::Cm2Const(value) => value,
            Self::Mm2Axis(index) => {
                Area::square_millimeters(point[index]).as_square_centimeters()
            }
        }
    }
}

/// The embodied sum of eq. 3: either folded entirely or a term list that
/// is re-summed per point in the oracle's component order (f64 addition is
/// not associative, so constants are *not* merged across terms).
#[derive(Clone, Debug)]
enum EcfTerm {
    Const(f64),
    Terms(Vec<EmbodiedTerm>),
}

/// The `T / LT` amortization ratio of eq. 1.
#[derive(Clone, Copy, Debug)]
enum AmortTerm {
    Const(f64),
    Dynamic { run_time: TimeSource, lifetime: TimeSource },
}

/// Where a per-point time span (seconds) comes from.
#[derive(Clone, Copy, Debug)]
enum TimeSource {
    SecondsConst(f64),
    /// Free axis carrying seconds (already the model's base unit).
    SecondsAxis(usize),
    /// Free axis carrying years; converted per point exactly like the
    /// oracle's `TimeSpan::years` constructor.
    YearsAxis(usize),
}

impl TimeSource {
    #[inline]
    fn get(self, point: &[f64]) -> f64 {
        match self {
            Self::SecondsConst(value) => value,
            Self::SecondsAxis(index) => point[index],
            Self::YearsAxis(index) => TimeSpan::years(point[index]).as_seconds(),
        }
    }
}

/// A partially-evaluated eq. 1 kernel: see the [module docs](self).
///
/// Compile once with [`Self::try_compile`], then call [`Self::eval`] per
/// point — a handful of FLOPs, no heap allocation, bit-for-bit identical
/// to [`ModelParams::try_footprint`] with the free axes substituted.
#[derive(Clone, Debug)]
pub struct CompiledFootprint {
    axes: Vec<FreeAxis>,
    op: OpTerm,
    ecf: EcfTerm,
    amortization: AmortTerm,
}

impl CompiledFootprint {
    /// Partially evaluates `params` against `axes`.
    ///
    /// The baseline `params` must fully validate (free fields included —
    /// their baseline values are simply never read at eval time), matching
    /// the contract of every other `ModelParams` entry point.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the baseline parameters do not
    /// validate, an axis is listed twice, or a storage axis indexes past
    /// the corresponding population vector.
    pub fn try_compile(params: &ModelParams, axes: &[FreeAxis]) -> Result<Self, ModelError> {
        params.validate()?;
        for (i, axis) in axes.iter().enumerate() {
            if axes[..i].contains(axis) {
                return Err(ModelError::invariant(format!("free axis {axis} is listed twice")));
            }
            let (population, in_range) = match axis {
                FreeAxis::DramCapacity(k) => ("DRAM", *k < params.dram.len()),
                FreeAxis::SsdCapacity(k) => ("SSD", *k < params.ssd.len()),
                FreeAxis::HddCapacity(k) => ("HDD", *k < params.hdd.len()),
                _ => continue,
            };
            if !in_range {
                return Err(ModelError::invariant(format!(
                    "free axis {axis} indexes past the {population} population"
                )));
            }
        }
        let position = |wanted: FreeAxis| axes.iter().position(|axis| *axis == wanted);

        // Operational term (eq. 2).
        let use_intensity = match position(FreeAxis::UseIntensity) {
            Some(index) => Scalar::Axis(index),
            None => Scalar::Const(params.use_intensity_g_per_kwh),
        };
        let energy = match position(FreeAxis::Energy) {
            Some(index) => EnergySource::JoulesAxis(index),
            None => EnergySource::KwhConst(Energy::joules(params.energy_j).as_kilowatt_hours()),
        };
        let op = match (use_intensity, energy) {
            (Scalar::Const(_), EnergySource::KwhConst(_)) => OpTerm::Const(
                // Fold by replaying the oracle's own call chain.
                OperationalModel::new(CarbonIntensity::grams_per_kwh(
                    params.use_intensity_g_per_kwh,
                ))
                .footprint(Energy::joules(params.energy_j))
                .as_grams(),
            ),
            (intensity, energy) => OpTerm::Dynamic { intensity, energy },
        };

        // Embodied terms (eq. 3), in `SystemSpec::embodied` component
        // order: SoC, DRAM entries, SSD entries, HDD entries, packaging.
        let fab = params.try_fab_scenario()?;
        let fab_intensity = match position(FreeAxis::FabIntensity) {
            Some(index) => Scalar::Axis(index),
            None => Scalar::Const(params.fab_intensity_g_per_kwh),
        };
        let fab_yield = match position(FreeAxis::FabYield) {
            Some(index) => Scalar::Axis(index),
            None => Scalar::Const(params.fab_yield),
        };
        let area = match position(FreeAxis::SocArea) {
            Some(index) => AreaSource::Mm2Axis(index),
            None => AreaSource::Cm2Const(
                Area::square_millimeters(params.soc_area_mm2).as_square_centimeters(),
            ),
        };
        let mut terms = Vec::new();
        terms.push(match (fab_intensity, fab_yield, area) {
            (Scalar::Const(_), Scalar::Const(_), AreaSource::Cm2Const(_)) => {
                EmbodiedTerm::Const(
                    (memo::carbon_per_area(&fab, params.process_node)
                        * Area::square_millimeters(params.soc_area_mm2))
                    .as_grams(),
                )
            }
            (Scalar::Const(_), Scalar::Const(_), area) => EmbodiedTerm::SocAreaScaled {
                cpa_g_per_cm2: memo::carbon_per_area(&fab, params.process_node)
                    .as_grams_per_cm2(),
                area,
            },
            (intensity, fab_yield, area) => {
                let node = params.process_node;
                EmbodiedTerm::SocCpa {
                    epa_kwh_per_cm2: node.energy_per_area().as_kwh_per_cm2(),
                    gpa_g_per_cm2: node.gas_per_area(fab.abatement).as_grams_per_cm2(),
                    mpa_g_per_cm2: node.materials_per_area().as_grams_per_cm2(),
                    intensity,
                    fab_yield,
                    area,
                }
            }
        });
        for (k, (technology, gb)) in params.dram.iter().enumerate() {
            terms.push(match position(FreeAxis::DramCapacity(k)) {
                Some(index) => EmbodiedTerm::StorageScaled {
                    grams_per_gb: technology.carbon_per_gb().as_grams_per_gb(),
                    capacity_axis: index,
                },
                None => EmbodiedTerm::Const(
                    memo::dram_embodied(*technology, Capacity::gigabytes(*gb)).as_grams(),
                ),
            });
        }
        for (k, (technology, gb)) in params.ssd.iter().enumerate() {
            terms.push(match position(FreeAxis::SsdCapacity(k)) {
                Some(index) => EmbodiedTerm::StorageScaled {
                    grams_per_gb: technology.carbon_per_gb().as_grams_per_gb(),
                    capacity_axis: index,
                },
                None => EmbodiedTerm::Const(
                    memo::ssd_embodied(*technology, Capacity::gigabytes(*gb)).as_grams(),
                ),
            });
        }
        for (k, (model, gb)) in params.hdd.iter().enumerate() {
            terms.push(match position(FreeAxis::HddCapacity(k)) {
                Some(index) => EmbodiedTerm::StorageScaled {
                    grams_per_gb: model.carbon_per_gb().as_grams_per_gb(),
                    capacity_axis: index,
                },
                None => EmbodiedTerm::Const(
                    memo::hdd_embodied(*model, Capacity::gigabytes(*gb)).as_grams(),
                ),
            });
        }
        if params.packaged_ic_count > 0 {
            terms.push(EmbodiedTerm::Const(
                (PACKAGING_FOOTPRINT * f64::from(params.packaged_ic_count)).as_grams(),
            ));
        }
        let all_const = terms.iter().all(|term| matches!(term, EmbodiedTerm::Const(_)));
        let ecf = if all_const {
            // Replay the oracle's `.sum()` fold (0.0, then += per
            // component, in order) so the folded constant carries the same
            // rounding as the interpreted sum.
            EcfTerm::Const(terms.iter().fold(0.0, |acc, term| acc + term.eval(&[])))
        } else {
            EcfTerm::Terms(terms)
        };

        // Amortization (eq. 1's T / LT).
        let run_time = match position(FreeAxis::ExecutionTime) {
            Some(index) => TimeSource::SecondsAxis(index),
            None => TimeSource::SecondsConst(
                TimeSpan::seconds(params.execution_time_s).as_seconds(),
            ),
        };
        let lifetime = match position(FreeAxis::Lifetime) {
            Some(index) => TimeSource::YearsAxis(index),
            None => {
                TimeSource::SecondsConst(TimeSpan::years(params.lifetime_years).as_seconds())
            }
        };
        let amortization = match (run_time, lifetime) {
            (TimeSource::SecondsConst(t), TimeSource::SecondsConst(lt)) => {
                AmortTerm::Const(t / lt)
            }
            (run_time, lifetime) => AmortTerm::Dynamic { run_time, lifetime },
        };

        Ok(Self { axes: axes.to_vec(), op, ecf, amortization })
    }

    /// Panicking convenience for [`Self::try_compile`] — for baselines and
    /// axis sets known statically, mirroring [`ModelParams::footprint`].
    ///
    /// # Panics
    ///
    /// Panics if [`Self::try_compile`] would return an error.
    #[must_use]
    pub fn compile(params: &ModelParams, axes: &[FreeAxis]) -> Self {
        match Self::try_compile(params, axes) {
            Ok(kernel) => kernel,
            Err(err) => panic!("parameters must compile: {err}"),
        }
    }

    /// The free axes, in point-coordinate order.
    #[must_use]
    pub fn axes(&self) -> &[FreeAxis] {
        &self.axes
    }

    /// Number of point coordinates [`Self::eval`] expects.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.axes.len()
    }

    /// Evaluates eq. 1 at one design point, returning the total footprint
    /// in grams CO₂ — a handful of FLOPs, no heap allocation.
    ///
    /// Coordinates are in the axis units documented on [`FreeAxis`] and
    /// are assumed to be in range (use [`Self::try_eval`] for untrusted
    /// points); any non-finite coordinate yields `NaN`, which the batch
    /// drivers in `act-dse` skip-and-record.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.arity()`.
    #[must_use]
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(
            point.len(),
            self.axes.len(),
            "point arity must match the compiled free axes"
        );
        if !point.iter().all(|value| value.is_finite()) {
            return f64::NAN;
        }
        let operational = match &self.op {
            OpTerm::Const(value) => *value,
            OpTerm::Dynamic { intensity, energy } => {
                // Eq. 2 exactly as `OperationalModel::footprint`:
                // CI × (E × effectiveness), effectiveness folded at 1.0.
                intensity.get(point) * (energy.get(point) * 1.0)
            }
        };
        let embodied = match &self.ecf {
            EcfTerm::Const(value) => *value,
            EcfTerm::Terms(terms) => terms.iter().fold(0.0, |acc, term| acc + term.eval(point)),
        };
        let ratio = match self.amortization {
            AmortTerm::Const(value) => value,
            AmortTerm::Dynamic { run_time, lifetime } => {
                run_time.get(point) / lifetime.get(point)
            }
        };
        operational + embodied * ratio
    }

    /// Checked variant of [`Self::eval`]: validates every coordinate
    /// against its axis's Table 1 range, then verifies the result is
    /// finite.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] on an arity mismatch, an out-of-range
    /// coordinate, or a non-finite result.
    pub fn try_eval(&self, point: &[f64]) -> Result<f64, ModelError> {
        if point.len() != self.axes.len() {
            return Err(ModelError::invariant(format!(
                "expected {} point coordinate(s), got {}",
                self.axes.len(),
                point.len()
            )));
        }
        for (axis, value) in self.axes.iter().zip(point) {
            axis.check(*value)?;
        }
        let value = self.eval(point);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(ModelError::non_finite("total footprint"))
        }
    }

    /// Lowers the kernel's term trees into a flat [`EvalPlan`] for the
    /// block-vectorized batch path: every operand becomes either a folded
    /// constant or a column index into a structure-of-arrays batch, so
    /// [`EvalPlan::eval_block`] dispatches each instruction **once per
    /// block** instead of walking the enums once per point.
    ///
    /// The plan replays the exact per-point floating-point operation
    /// sequence of [`Self::eval`] (same associativity, same unit
    /// conversions, same eq. 3 component order), so block results are
    /// bit-for-bit identical to the per-point kernel and the interpreted
    /// oracle.
    #[must_use]
    pub fn plan(&self) -> EvalPlan {
        let op = match &self.op {
            OpTerm::Const(value) => PlanOp::Const(*value),
            OpTerm::Dynamic { intensity, energy } => PlanOp::Product {
                intensity: ColOperand::from_scalar(*intensity),
                energy: match energy {
                    EnergySource::KwhConst(kwh) => PlanEnergy::KwhConst(*kwh),
                    EnergySource::JoulesAxis(col) => PlanEnergy::JoulesCol(*col),
                },
            },
        };
        let embodied = match &self.ecf {
            EcfTerm::Const(value) => PlanEmbodied::Const(*value),
            EcfTerm::Terms(terms) => PlanEmbodied::Instrs(
                terms
                    .iter()
                    .map(|term| match term {
                        EmbodiedTerm::Const(value) => PlanInstr::AddConst(*value),
                        EmbodiedTerm::SocAreaScaled { cpa_g_per_cm2, area } => {
                            PlanInstr::AddAreaScaled {
                                cpa_g_per_cm2: *cpa_g_per_cm2,
                                area: PlanArea::from_source(*area),
                            }
                        }
                        EmbodiedTerm::SocCpa {
                            epa_kwh_per_cm2,
                            gpa_g_per_cm2,
                            mpa_g_per_cm2,
                            intensity,
                            fab_yield,
                            area,
                        } => PlanInstr::AddCpa {
                            epa_kwh_per_cm2: *epa_kwh_per_cm2,
                            gpa_g_per_cm2: *gpa_g_per_cm2,
                            mpa_g_per_cm2: *mpa_g_per_cm2,
                            intensity: ColOperand::from_scalar(*intensity),
                            fab_yield: ColOperand::from_scalar(*fab_yield),
                            area: PlanArea::from_source(*area),
                        },
                        EmbodiedTerm::StorageScaled { grams_per_gb, capacity_axis } => {
                            PlanInstr::AddStorage {
                                grams_per_gb: *grams_per_gb,
                                capacity_col: *capacity_axis,
                            }
                        }
                    })
                    .collect(),
            ),
        };
        let amort = match self.amortization {
            AmortTerm::Const(value) => PlanAmort::Const(value),
            AmortTerm::Dynamic { run_time, lifetime } => PlanAmort::Ratio {
                run_time: PlanTime::from_source(run_time),
                lifetime: PlanTime::from_source(lifetime),
            },
        };
        EvalPlan { arity: self.axes.len(), op, embodied, amort }
    }
}

/// A block-instruction operand that is either a folded constant or a raw
/// read of column `col` (no unit conversion).
#[derive(Clone, Copy, Debug)]
enum ColOperand {
    Const(f64),
    Col(usize),
}

impl ColOperand {
    fn from_scalar(scalar: Scalar) -> Self {
        match scalar {
            Scalar::Const(value) => Self::Const(value),
            Scalar::Axis(col) => Self::Col(col),
        }
    }

    #[inline]
    fn at(self, columns: &[&[f64]], index: usize) -> f64 {
        match self {
            Self::Const(value) => value,
            Self::Col(col) => columns[col][index],
        }
    }

    /// Fills `dst` with this operand over `start..start + dst.len()`.
    #[inline]
    fn lane(self, dst: &mut [f64], columns: &[&[f64]], start: usize) {
        match self {
            Self::Const(value) => dst.fill(value),
            Self::Col(col) => dst.copy_from_slice(&columns[col][start..start + dst.len()]),
        }
    }
}

/// Where the per-point useful energy (kWh) comes from in a plan.
#[derive(Clone, Copy, Debug)]
enum PlanEnergy {
    KwhConst(f64),
    /// Column carrying joules; converted per point exactly like the
    /// oracle's `Energy::joules` constructor.
    JoulesCol(usize),
}

/// Where the per-point SoC die area (cm²) comes from in a plan.
#[derive(Clone, Copy, Debug)]
enum PlanArea {
    Cm2Const(f64),
    /// Column carrying mm²; converted per point exactly like the oracle's
    /// `Area::square_millimeters` constructor.
    Mm2Col(usize),
}

impl PlanArea {
    fn from_source(source: AreaSource) -> Self {
        match source {
            AreaSource::Cm2Const(value) => Self::Cm2Const(value),
            AreaSource::Mm2Axis(col) => Self::Mm2Col(col),
        }
    }

    #[inline]
    fn at(self, columns: &[&[f64]], index: usize) -> f64 {
        match self {
            Self::Cm2Const(value) => value,
            Self::Mm2Col(col) => {
                Area::square_millimeters(columns[col][index]).as_square_centimeters()
            }
        }
    }

    #[inline]
    fn lane(self, dst: &mut [f64], columns: &[&[f64]], start: usize) {
        match self {
            Self::Cm2Const(value) => dst.fill(value),
            Self::Mm2Col(col) => {
                let src = &columns[col][start..start + dst.len()];
                for (slot, &mm2) in dst.iter_mut().zip(src) {
                    // The unit layer rejects non-finite magnitudes; such
                    // points are poisoned to NaN by the block's finite
                    // mask, so any NaN placeholder is equivalent here.
                    *slot = if mm2.is_finite() {
                        Area::square_millimeters(mm2).as_square_centimeters()
                    } else {
                        f64::NAN
                    };
                }
            }
        }
    }
}

/// Where a per-point time span (seconds) comes from in a plan.
#[derive(Clone, Copy, Debug)]
enum PlanTime {
    SecondsConst(f64),
    SecondsCol(usize),
    /// Column carrying years; converted per point exactly like the
    /// oracle's `TimeSpan::years` constructor.
    YearsCol(usize),
}

impl PlanTime {
    fn from_source(source: TimeSource) -> Self {
        match source {
            TimeSource::SecondsConst(value) => Self::SecondsConst(value),
            TimeSource::SecondsAxis(col) => Self::SecondsCol(col),
            TimeSource::YearsAxis(col) => Self::YearsCol(col),
        }
    }

    #[inline]
    fn at(self, columns: &[&[f64]], index: usize) -> f64 {
        match self {
            Self::SecondsConst(value) => value,
            Self::SecondsCol(col) => columns[col][index],
            Self::YearsCol(col) => TimeSpan::years(columns[col][index]).as_seconds(),
        }
    }

    #[inline]
    fn lane(self, dst: &mut [f64], columns: &[&[f64]], start: usize) {
        match self {
            Self::SecondsConst(value) => dst.fill(value),
            Self::SecondsCol(col) => {
                dst.copy_from_slice(&columns[col][start..start + dst.len()]);
            }
            Self::YearsCol(col) => {
                let src = &columns[col][start..start + dst.len()];
                for (slot, &years) in dst.iter_mut().zip(src) {
                    // Non-finite magnitudes would trip the unit layer;
                    // the block's finite mask poisons them to NaN anyway.
                    *slot = if years.is_finite() {
                        TimeSpan::years(years).as_seconds()
                    } else {
                        f64::NAN
                    };
                }
            }
        }
    }
}

/// The operational term of a plan (eq. 2).
#[derive(Clone, Copy, Debug)]
enum PlanOp {
    Const(f64),
    Product { intensity: ColOperand, energy: PlanEnergy },
}

/// One flat, branch-free instruction of the embodied sum (eq. 3): each
/// adds its term into the block's embodied accumulator lane. Instruction
/// order is the oracle's component order — f64 addition is not
/// associative, so the lowering never merges or reorders terms.
#[derive(Clone, Copy, Debug)]
enum PlanInstr {
    AddConst(f64),
    AddAreaScaled {
        cpa_g_per_cm2: f64,
        area: PlanArea,
    },
    AddCpa {
        epa_kwh_per_cm2: f64,
        gpa_g_per_cm2: f64,
        mpa_g_per_cm2: f64,
        intensity: ColOperand,
        fab_yield: ColOperand,
        area: PlanArea,
    },
    AddStorage {
        grams_per_gb: f64,
        capacity_col: usize,
    },
}

/// The embodied sum of a plan: folded entirely or an instruction list.
#[derive(Clone, Debug)]
enum PlanEmbodied {
    Const(f64),
    Instrs(Vec<PlanInstr>),
}

/// The `T / LT` amortization of a plan (eq. 1).
#[derive(Clone, Copy, Debug)]
enum PlanAmort {
    Const(f64),
    Ratio { run_time: PlanTime, lifetime: PlanTime },
}

/// A [`CompiledFootprint`] lowered for block-vectorized batch evaluation:
/// a flat instruction list whose operands are constants or column indices
/// into a structure-of-arrays point batch.
///
/// [`Self::eval_block`] reads the columns directly — no per-point gather
/// into a scratch slice, no per-point enum dispatch — processing
/// [`LANES`]-wide blocks whose inner loops rustc auto-vectorizes (no
/// `unsafe`, no intrinsics; the tail shorter than a block runs through a
/// scalar loop). Because every per-point operation chain is identical to
/// [`CompiledFootprint::eval`], results are **bit-for-bit identical** to
/// the per-point kernel and the interpreted oracle; the property tests in
/// `crates/core/tests/compiled.rs` pin the equivalence.
///
/// # Examples
///
/// ```
/// use act_core::{CompiledFootprint, FreeAxis, ModelParams};
///
/// let params = ModelParams::mobile_reference();
/// let kernel = CompiledFootprint::try_compile(&params, &[FreeAxis::SocArea])?;
/// let plan = kernel.plan();
/// let areas: Vec<f64> = (0..100).map(|i| 50.0 + f64::from(i)).collect();
/// let mut block = vec![0.0; areas.len()];
/// plan.eval_block(&[&areas], 0..areas.len(), &mut block);
/// for (i, value) in block.iter().enumerate() {
///     assert_eq!(value.to_bits(), kernel.eval(&[areas[i]]).to_bits());
/// }
/// # Ok::<(), act_core::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EvalPlan {
    arity: usize,
    op: PlanOp,
    embodied: PlanEmbodied,
    amort: PlanAmort,
}

impl EvalPlan {
    /// Number of structure-of-arrays columns [`Self::eval_block`] expects.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Evaluates eq. 1 for points `range` of a structure-of-arrays batch
    /// (`columns[axis][point]`, axes in [`CompiledFootprint::axes`] order),
    /// writing one gram-CO₂ result per point into `out`.
    ///
    /// Results are bit-identical to calling [`CompiledFootprint::eval`] on
    /// each gathered point; any point with a non-finite coordinate yields
    /// NaN, keeping its slot.
    ///
    /// # Panics
    ///
    /// Panics if `columns.len() != self.arity()`, `out.len()` differs from
    /// the range length, or a column is shorter than `range.end`.
    pub fn eval_block(&self, columns: &[&[f64]], range: Range<usize>, out: &mut [f64]) {
        assert_eq!(columns.len(), self.arity, "column count must match the compiled free axes");
        assert_eq!(out.len(), range.len(), "output slot per point in the range");
        for (axis, column) in columns.iter().enumerate() {
            assert!(
                column.len() >= range.end,
                "axis column {axis} has {} points but the range ends at {}",
                column.len(),
                range.end
            );
        }
        let mut start = range.start;
        let mut done = 0;
        // Cache-blocked hot path: full LANES-wide blocks with fixed-size
        // lane buffers...
        while out.len() - done >= LANES {
            self.eval_lane_block(columns, start, &mut out[done..done + LANES]);
            start += LANES;
            done += LANES;
        }
        // ...and a scalar tail for the remainder.
        for slot in &mut out[done..] {
            *slot = self.eval_scalar(columns, start);
            start += 1;
        }
    }

    /// One `n ≤ LANES` block: every instruction is dispatched once, its
    /// inner loop runs branch-free over the lane. Loop interchange (term
    /// loops over points instead of point loops over terms) preserves each
    /// point's operation chain exactly, so it cannot change a single bit.
    fn eval_lane_block(&self, columns: &[&[f64]], start: usize, out: &mut [f64]) {
        let n = out.len();

        // Eq. 2, exactly `intensity * (energy * 1.0)` per point.
        let mut op_buf = [0.0f64; LANES];
        let op_lane = &mut op_buf[..n];
        match self.op {
            PlanOp::Const(value) => op_lane.fill(value),
            PlanOp::Product { intensity, energy } => {
                let mut energy_buf = [0.0f64; LANES];
                let energy_lane = &mut energy_buf[..n];
                match energy {
                    PlanEnergy::KwhConst(kwh) => energy_lane.fill(kwh),
                    PlanEnergy::JoulesCol(col) => {
                        let src = &columns[col][start..start + n];
                        for (slot, &joules) in energy_lane.iter_mut().zip(src) {
                            // Non-finite magnitudes would trip the unit
                            // layer; the finite mask below poisons such
                            // points to NaN regardless of this value.
                            *slot = if joules.is_finite() {
                                Energy::joules(joules).as_kilowatt_hours()
                            } else {
                                f64::NAN
                            };
                        }
                    }
                }
                match intensity {
                    ColOperand::Const(ci) => {
                        for (slot, &kwh) in op_lane.iter_mut().zip(&*energy_lane) {
                            *slot = ci * (kwh * 1.0);
                        }
                    }
                    ColOperand::Col(col) => {
                        let src = &columns[col][start..start + n];
                        for ((slot, &kwh), &ci) in
                            op_lane.iter_mut().zip(&*energy_lane).zip(src)
                        {
                            *slot = ci * (kwh * 1.0);
                        }
                    }
                }
            }
        }

        // Eq. 3: accumulate from 0.0 in instruction (= component) order.
        let mut emb_buf = [0.0f64; LANES];
        let emb_lane = &mut emb_buf[..n];
        match &self.embodied {
            PlanEmbodied::Const(value) => emb_lane.fill(*value),
            PlanEmbodied::Instrs(instrs) => {
                for instr in instrs {
                    match *instr {
                        PlanInstr::AddConst(value) => {
                            for slot in emb_lane.iter_mut() {
                                *slot += value;
                            }
                        }
                        PlanInstr::AddAreaScaled { cpa_g_per_cm2, area } => {
                            let mut area_buf = [0.0f64; LANES];
                            let area_lane = &mut area_buf[..n];
                            area.lane(area_lane, columns, start);
                            for (slot, &cm2) in emb_lane.iter_mut().zip(&*area_lane) {
                                *slot += cpa_g_per_cm2 * cm2;
                            }
                        }
                        PlanInstr::AddCpa {
                            epa_kwh_per_cm2,
                            gpa_g_per_cm2,
                            mpa_g_per_cm2,
                            intensity,
                            fab_yield,
                            area,
                        } => {
                            let mut ci_buf = [0.0f64; LANES];
                            let mut yield_buf = [0.0f64; LANES];
                            let mut area_buf = [0.0f64; LANES];
                            let ci_lane = &mut ci_buf[..n];
                            let yield_lane = &mut yield_buf[..n];
                            let area_lane = &mut area_buf[..n];
                            intensity.lane(ci_lane, columns, start);
                            fab_yield.lane(yield_lane, columns, start);
                            area.lane(area_lane, columns, start);
                            // Exactly the eq. 5 chain of the per-point
                            // path: CI×EPA, left-associated additions,
                            // yield division, eq. 4 area multiply.
                            for i in 0..n {
                                let energy = ci_lane[i] * epa_kwh_per_cm2;
                                let before_yield = (energy + gpa_g_per_cm2) + mpa_g_per_cm2;
                                let cpa = before_yield / yield_lane[i];
                                emb_lane[i] += cpa * area_lane[i];
                            }
                        }
                        PlanInstr::AddStorage { grams_per_gb, capacity_col } => {
                            let src = &columns[capacity_col][start..start + n];
                            for (slot, &gb) in emb_lane.iter_mut().zip(src) {
                                *slot += grams_per_gb * gb;
                            }
                        }
                    }
                }
            }
        }

        // Eq. 1's T / LT.
        let mut ratio_buf = [0.0f64; LANES];
        let ratio_lane = &mut ratio_buf[..n];
        match self.amort {
            PlanAmort::Const(value) => ratio_lane.fill(value),
            PlanAmort::Ratio { run_time, lifetime } => {
                let mut time_buf = [0.0f64; LANES];
                let mut life_buf = [0.0f64; LANES];
                let time_lane = &mut time_buf[..n];
                let life_lane = &mut life_buf[..n];
                run_time.lane(time_lane, columns, start);
                lifetime.lane(life_lane, columns, start);
                for i in 0..n {
                    ratio_lane[i] = time_lane[i] / life_lane[i];
                }
            }
        }

        // Combine, then poison points with a non-finite coordinate to NaN
        // — same outcome as `eval`'s up-front finiteness bail-out, applied
        // as a mask so the lane loops stay branch-free.
        let mut finite_buf = [true; LANES];
        let finite_lane = &mut finite_buf[..n];
        for column in columns {
            let src = &column[start..start + n];
            for (flag, &value) in finite_lane.iter_mut().zip(src) {
                *flag &= value.is_finite();
            }
        }
        for i in 0..n {
            let value = op_lane[i] + emb_lane[i] * ratio_lane[i];
            out[i] = if finite_lane[i] { value } else { f64::NAN };
        }
    }

    /// Scalar tail: the same per-point operation chain as
    /// [`CompiledFootprint::eval`], reading columns directly.
    fn eval_scalar(&self, columns: &[&[f64]], index: usize) -> f64 {
        if !columns.iter().all(|column| column[index].is_finite()) {
            return f64::NAN;
        }
        let operational = match self.op {
            PlanOp::Const(value) => value,
            PlanOp::Product { intensity, energy } => {
                let kwh = match energy {
                    PlanEnergy::KwhConst(kwh) => kwh,
                    PlanEnergy::JoulesCol(col) => {
                        Energy::joules(columns[col][index]).as_kilowatt_hours()
                    }
                };
                intensity.at(columns, index) * (kwh * 1.0)
            }
        };
        let embodied = match &self.embodied {
            PlanEmbodied::Const(value) => *value,
            PlanEmbodied::Instrs(instrs) => instrs.iter().fold(0.0, |acc, instr| {
                acc + match *instr {
                    PlanInstr::AddConst(value) => value,
                    PlanInstr::AddAreaScaled { cpa_g_per_cm2, area } => {
                        cpa_g_per_cm2 * area.at(columns, index)
                    }
                    PlanInstr::AddCpa {
                        epa_kwh_per_cm2,
                        gpa_g_per_cm2,
                        mpa_g_per_cm2,
                        intensity,
                        fab_yield,
                        area,
                    } => {
                        let energy = intensity.at(columns, index) * epa_kwh_per_cm2;
                        let before_yield = (energy + gpa_g_per_cm2) + mpa_g_per_cm2;
                        let cpa = before_yield / fab_yield.at(columns, index);
                        cpa * area.at(columns, index)
                    }
                    PlanInstr::AddStorage { grams_per_gb, capacity_col } => {
                        grams_per_gb * columns[capacity_col][index]
                    }
                }
            }),
        };
        let ratio = match self.amort {
            PlanAmort::Const(value) => value,
            PlanAmort::Ratio { run_time, lifetime } => {
                run_time.at(columns, index) / lifetime.at(columns, index)
            }
        };
        operational + embodied * ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_with(params: &ModelParams, axes: &[FreeAxis], point: &[f64]) -> f64 {
        let mut substituted = params.clone();
        for (axis, value) in axes.iter().zip(point) {
            match axis {
                FreeAxis::ExecutionTime => substituted.execution_time_s = *value,
                FreeAxis::Lifetime => substituted.lifetime_years = *value,
                FreeAxis::SocArea => substituted.soc_area_mm2 = *value,
                FreeAxis::UseIntensity => substituted.use_intensity_g_per_kwh = *value,
                FreeAxis::FabIntensity => substituted.fab_intensity_g_per_kwh = *value,
                FreeAxis::FabYield => substituted.fab_yield = *value,
                FreeAxis::Energy => substituted.energy_j = *value,
                FreeAxis::DramCapacity(k) => substituted.dram[*k].1 = *value,
                FreeAxis::SsdCapacity(k) => substituted.ssd[*k].1 = *value,
                FreeAxis::HddCapacity(k) => substituted.hdd[*k].1 = *value,
            }
        }
        substituted.try_footprint().expect("substituted params evaluate").as_grams()
    }

    #[test]
    fn fully_folded_kernel_matches_oracle_bitwise() {
        let params = ModelParams::mobile_reference();
        let kernel = CompiledFootprint::try_compile(&params, &[]).expect("compiles");
        assert_eq!(kernel.arity(), 0);
        let oracle = params.try_footprint().expect("evaluates").as_grams();
        assert_eq!(kernel.eval(&[]).to_bits(), oracle.to_bits());
    }

    #[test]
    fn each_single_axis_matches_oracle_bitwise() {
        let params = ModelParams::mobile_reference();
        let cases: [(FreeAxis, f64); 9] = [
            (FreeAxis::ExecutionTime, 7200.0),
            (FreeAxis::Lifetime, 4.5),
            (FreeAxis::SocArea, 123.75),
            (FreeAxis::UseIntensity, 41.0),
            (FreeAxis::FabIntensity, 583.0),
            (FreeAxis::FabYield, 0.61),
            (FreeAxis::Energy, 9999.5),
            (FreeAxis::DramCapacity(0), 12.0),
            (FreeAxis::SsdCapacity(0), 512.0),
        ];
        for (axis, value) in cases {
            let kernel = CompiledFootprint::try_compile(&params, &[axis]).expect("compiles");
            let compiled = kernel.eval(&[value]);
            let oracle = oracle_with(&params, &[axis], &[value]);
            assert_eq!(
                compiled.to_bits(),
                oracle.to_bits(),
                "axis {axis}: compiled {compiled} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn all_axes_free_matches_oracle_bitwise() {
        let params = ModelParams::mobile_reference();
        let axes = [
            FreeAxis::ExecutionTime,
            FreeAxis::Lifetime,
            FreeAxis::SocArea,
            FreeAxis::UseIntensity,
            FreeAxis::FabIntensity,
            FreeAxis::FabYield,
            FreeAxis::Energy,
            FreeAxis::DramCapacity(0),
            FreeAxis::SsdCapacity(0),
        ];
        let point = [1800.0, 2.5, 101.3, 300.0, 700.0, 0.9, 3600.0, 16.0, 256.0];
        let kernel = CompiledFootprint::try_compile(&params, &axes).expect("compiles");
        let compiled = kernel.eval(&point);
        let oracle = oracle_with(&params, &axes, &point);
        assert_eq!(compiled.to_bits(), oracle.to_bits());
    }

    #[test]
    fn rejects_duplicate_axes_and_bad_storage_indices() {
        let params = ModelParams::mobile_reference();
        assert!(CompiledFootprint::try_compile(
            &params,
            &[FreeAxis::SocArea, FreeAxis::SocArea]
        )
        .is_err());
        assert!(
            CompiledFootprint::try_compile(&params, &[FreeAxis::HddCapacity(0)]).is_err(),
            "mobile reference has no HDD population"
        );
        assert!(CompiledFootprint::try_compile(&params, &[FreeAxis::DramCapacity(1)]).is_err());
    }

    #[test]
    fn rejects_invalid_baselines() {
        let mut params = ModelParams::mobile_reference();
        params.fab_yield = 0.0;
        assert!(CompiledFootprint::try_compile(&params, &[FreeAxis::FabYield]).is_err());
    }

    #[test]
    fn try_eval_enforces_axis_ranges() {
        let params = ModelParams::mobile_reference();
        let kernel =
            CompiledFootprint::try_compile(&params, &[FreeAxis::FabYield]).expect("compiles");
        assert!(kernel.try_eval(&[0.5]).is_ok());
        assert!(kernel.try_eval(&[0.0]).is_err());
        assert!(kernel.try_eval(&[f64::NAN]).is_err());
        assert!(kernel.try_eval(&[0.5, 0.5]).is_err(), "arity mismatch");
    }

    #[test]
    fn non_finite_coordinates_poison_to_nan_in_eval() {
        let params = ModelParams::mobile_reference();
        let kernel =
            CompiledFootprint::try_compile(&params, &[FreeAxis::SocArea]).expect("compiles");
        assert!(kernel.eval(&[f64::NAN]).is_nan());
        assert!(kernel.eval(&[f64::INFINITY]).is_nan());
    }

    // ---- block-path property suite -------------------------------------
    //
    // The block engine must be a pure loop interchange: for every axis
    // subset and every batch length, `eval_block` must reproduce `eval`
    // (and the interpreted oracle) bit for bit, including NaN slots.

    /// Deterministic splitmix-style generator for test columns — no
    /// external RNG dependency in act-core.
    struct TestRng(u64);

    impl TestRng {
        fn next_unit(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut z = self.0;
            z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
            z ^= z >> 33;
            ((z >> 11) as f64) / ((1u64 << 53) as f64)
        }

        fn in_range(&mut self, low: f64, high: f64) -> f64 {
            low + (high - low) * self.next_unit()
        }
    }

    /// A plausible in-domain sampling range for each free axis, so the
    /// interpreted oracle accepts every generated point.
    fn axis_range(axis: FreeAxis) -> (f64, f64) {
        match axis {
            FreeAxis::ExecutionTime => (60.0, 36_000.0),
            FreeAxis::Lifetime => (0.5, 10.0),
            FreeAxis::SocArea => (10.0, 250.0),
            FreeAxis::UseIntensity => (10.0, 700.0),
            FreeAxis::FabIntensity => (100.0, 900.0),
            FreeAxis::FabYield => (0.5, 0.999),
            FreeAxis::Energy => (100.0, 100_000.0),
            FreeAxis::DramCapacity(_) => (1.0, 64.0),
            FreeAxis::SsdCapacity(_) => (32.0, 1024.0),
            FreeAxis::HddCapacity(_) => (100.0, 4000.0),
        }
    }

    fn fill_columns(rng: &mut TestRng, axes: &[FreeAxis], len: usize) -> Vec<Vec<f64>> {
        axes.iter()
            .map(|axis| {
                let (low, high) = axis_range(*axis);
                (0..len).map(|_| rng.in_range(low, high)).collect()
            })
            .collect()
    }

    /// Every axis subset exercised by the property suite: each single
    /// axis, a few mixed pairs/triples, and the full 9-axis kernel.
    fn axis_subsets() -> Vec<Vec<FreeAxis>> {
        let all = [
            FreeAxis::ExecutionTime,
            FreeAxis::Lifetime,
            FreeAxis::SocArea,
            FreeAxis::UseIntensity,
            FreeAxis::FabIntensity,
            FreeAxis::FabYield,
            FreeAxis::Energy,
            FreeAxis::DramCapacity(0),
            FreeAxis::SsdCapacity(0),
        ];
        let mut subsets: Vec<Vec<FreeAxis>> = all.iter().map(|a| vec![*a]).collect();
        subsets.push(vec![FreeAxis::SocArea, FreeAxis::FabYield]);
        subsets.push(vec![FreeAxis::Energy, FreeAxis::UseIntensity, FreeAxis::Lifetime]);
        subsets.push(vec![
            FreeAxis::ExecutionTime,
            FreeAxis::FabIntensity,
            FreeAxis::DramCapacity(0),
            FreeAxis::SsdCapacity(0),
        ]);
        subsets.push(all.to_vec());
        subsets.push(Vec::new());
        subsets
    }

    #[test]
    fn eval_block_is_bitwise_identical_to_eval_and_oracle_for_every_length() {
        let params = ModelParams::mobile_reference();
        // Lengths straddle every lane boundary: empty, single, LANES-1,
        // LANES, LANES+1, and a multi-block run with a ragged tail.
        let lengths = [0, 1, LANES - 1, LANES, LANES + 1, 3 * LANES + 17];
        let mut rng = TestRng(0x5eed_ac70_0000_0001);
        for axes in axis_subsets() {
            let kernel = CompiledFootprint::try_compile(&params, &axes).expect("compiles");
            let plan = kernel.plan();
            for &len in &lengths {
                let columns = fill_columns(&mut rng, &axes, len);
                let views: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
                let mut out = vec![0.0; len];
                plan.eval_block(&views, 0..len, &mut out);
                for i in 0..len {
                    let point: Vec<f64> = columns.iter().map(|c| c[i]).collect();
                    let scalar = kernel.eval(&point);
                    let oracle = oracle_with(&params, &axes, &point);
                    assert_eq!(
                        out[i].to_bits(),
                        scalar.to_bits(),
                        "block vs eval diverged at point {i}/{len} with {} axes",
                        axes.len()
                    );
                    assert_eq!(
                        out[i].to_bits(),
                        oracle.to_bits(),
                        "block vs oracle diverged at point {i}/{len} with {} axes",
                        axes.len()
                    );
                }
            }
        }
    }

    #[test]
    fn eval_block_subranges_match_full_range_bitwise() {
        let params = ModelParams::mobile_reference();
        let axes = [FreeAxis::SocArea, FreeAxis::FabYield, FreeAxis::Energy];
        let kernel = CompiledFootprint::try_compile(&params, &axes).expect("compiles");
        let plan = kernel.plan();
        let len = 2 * LANES + 31;
        let mut rng = TestRng(0xfeed_0000_0000_0002);
        let columns = fill_columns(&mut rng, &axes, len);
        let views: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        let mut full = vec![0.0; len];
        plan.eval_block(&views, 0..len, &mut full);
        // Sub-ranges starting mid-column and ending mid-lane must produce
        // the same bits as the corresponding window of the full run —
        // the chunked engines in act-dse depend on this.
        for (start, end) in [(0, 1), (3, LANES + 5), (LANES - 1, 2 * LANES + 1), (7, len)] {
            let mut window = vec![f64::NAN; end - start];
            plan.eval_block(&views, start..end, &mut window);
            for (offset, value) in window.iter().enumerate() {
                assert_eq!(
                    value.to_bits(),
                    full[start + offset].to_bits(),
                    "window {start}..{end} diverged at offset {offset}"
                );
            }
        }
    }

    #[test]
    fn eval_block_poisons_non_finite_points_without_disturbing_neighbors() {
        let params = ModelParams::mobile_reference();
        let axes = [FreeAxis::SocArea, FreeAxis::UseIntensity];
        let kernel = CompiledFootprint::try_compile(&params, &axes).expect("compiles");
        let plan = kernel.plan();
        let len = LANES + 9;
        let mut rng = TestRng(0xbad0_0000_0000_0003);
        let mut columns = fill_columns(&mut rng, &axes, len);
        // Poison a scatter of slots across both the lane body and the
        // scalar tail, alternating NaN and infinity across the two axes.
        let poisoned = [0, 5, LANES - 1, LANES, len - 1];
        for (which, &i) in poisoned.iter().enumerate() {
            columns[which % 2][i] = if which % 3 == 0 { f64::NAN } else { f64::INFINITY };
        }
        let views: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        let mut out = vec![0.0; len];
        plan.eval_block(&views, 0..len, &mut out);
        for i in 0..len {
            let point: Vec<f64> = columns.iter().map(|c| c[i]).collect();
            let scalar = kernel.eval(&point);
            if poisoned.contains(&i) {
                assert!(out[i].is_nan(), "poisoned slot {i} must stay NaN");
                assert!(scalar.is_nan(), "eval must agree the slot is poisoned");
            } else {
                assert_eq!(
                    out[i].to_bits(),
                    scalar.to_bits(),
                    "healthy neighbor {i} disturbed by poisoned slots"
                );
            }
        }
    }
}
