//! The operational-carbon model of eq. 2: `OPCF = CIuse × Energy`, with the
//! utilization-effectiveness factors (PUE, battery charging efficiency) the
//! paper folds into the energy term.

use act_units::{CarbonIntensity, Energy, MassCo2, UnitError};

use crate::{ModelError, Validate};

/// Operational-emissions model: the carbon intensity of the energy the
/// platform consumes plus delivery-efficiency overheads.
///
/// `effectiveness` generalizes the data-center PUE and the mobile battery
/// charging efficiency: it multiplies useful energy into wall energy. A PUE
/// of 1.1 or a 90 %-efficient charger both become `effectiveness = 1.1`.
///
/// # Examples
///
/// ```
/// use act_core::OperationalModel;
/// use act_data::Location;
/// use act_units::Energy;
///
/// let op = OperationalModel::new(Location::UnitedStates.carbon_intensity())
///     .with_effectiveness(1.1);
/// let footprint = op.footprint(Energy::kilowatt_hours(1.0));
/// assert!((footprint.as_grams() - 418.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperationalModel {
    intensity: CarbonIntensity,
    effectiveness: f64,
}

act_json::impl_to_json!(OperationalModel { intensity, effectiveness });
act_json::impl_from_json!(OperationalModel { intensity, effectiveness });

impl OperationalModel {
    /// A model with unit effectiveness (all wall energy is useful energy).
    #[must_use]
    pub fn new(intensity: CarbonIntensity) -> Self {
        Self { intensity, effectiveness: 1.0 }
    }

    /// Sets the utilization-effectiveness multiplier (PUE or inverse battery
    /// efficiency).
    ///
    /// # Panics
    ///
    /// Panics if `effectiveness < 1.0` — delivering energy cannot create it.
    /// Use [`Self::try_with_effectiveness`] for user-supplied values.
    #[must_use]
    pub fn with_effectiveness(mut self, effectiveness: f64) -> Self {
        assert!(
            effectiveness >= 1.0,
            "utilization effectiveness must be >= 1.0, got {effectiveness}"
        );
        self.effectiveness = effectiveness;
        self
    }

    /// Checked variant of [`Self::with_effectiveness`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if `effectiveness` is NaN, infinite or below
    /// one.
    pub fn try_with_effectiveness(self, effectiveness: f64) -> Result<Self, ModelError> {
        if !effectiveness.is_finite() {
            return Err(
                UnitError::non_finite("utilization effectiveness", effectiveness).into()
            );
        }
        if effectiveness < 1.0 {
            return Err(UnitError::out_of_domain(
                "utilization effectiveness",
                effectiveness,
                "at least 1.0",
            )
            .into());
        }
        Ok(self.with_effectiveness(effectiveness))
    }

    /// The `CIuse` parameter.
    #[must_use]
    pub fn intensity(&self) -> CarbonIntensity {
        self.intensity
    }

    /// The effectiveness multiplier.
    #[must_use]
    pub fn effectiveness(&self) -> f64 {
        self.effectiveness
    }

    /// Operational footprint of consuming `useful_energy` (eq. 2).
    #[must_use]
    pub fn footprint(&self, useful_energy: Energy) -> MassCo2 {
        self.intensity * (useful_energy * self.effectiveness)
    }

    /// Checked variant of [`Self::footprint`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the model is invalid, the energy is
    /// non-finite or negative, or the product is non-finite.
    pub fn try_footprint(&self, useful_energy: Energy) -> Result<MassCo2, ModelError> {
        self.validate()?;
        let joules = useful_energy.as_joules();
        if !joules.is_finite() {
            return Err(UnitError::non_finite("useful energy", joules).into());
        }
        if joules < 0.0 {
            return Err(UnitError::out_of_domain(
                "useful energy",
                joules,
                "a finite, non-negative number",
            )
            .into());
        }
        Ok(self.footprint(useful_energy).ensure_finite("operational footprint")?)
    }
}

impl Validate for OperationalModel {
    fn validate(&self) -> Result<(), ModelError> {
        let ci = self.intensity.as_grams_per_kwh();
        if !ci.is_finite() {
            return Err(UnitError::non_finite("use-phase carbon intensity", ci).into());
        }
        if ci < 0.0 {
            return Err(UnitError::out_of_domain(
                "use-phase carbon intensity",
                ci,
                "a finite, non-negative number",
            )
            .into());
        }
        if !self.effectiveness.is_finite() || self.effectiveness < 1.0 {
            return Err(UnitError::out_of_domain(
                "utilization effectiveness",
                self.effectiveness,
                "at least 1.0",
            )
            .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_data::EnergySource;

    #[test]
    fn eq2_is_intensity_times_energy() {
        let op = OperationalModel::new(CarbonIntensity::grams_per_kwh(300.0));
        let footprint = op.footprint(Energy::kilowatt_hours(2.0));
        assert!((footprint.as_grams() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn table4_opcf_reproduces_from_printed_latency_and_power() {
        // Table 4: OPCF at the average US intensity (300 g CO2/kWh).
        use act_data::snapdragon845::{profile, Engine};
        let op = OperationalModel::new(CarbonIntensity::grams_per_kwh(300.0));
        let ug = |e| op.footprint(profile(e).energy_per_inference()).as_micrograms();
        assert!((ug(Engine::Cpu) - 3.3).abs() < 0.05, "CPU {}", ug(Engine::Cpu));
        assert!((ug(Engine::Dsp) - 3.1).abs() < 0.2, "DSP {}", ug(Engine::Dsp));
        assert!((ug(Engine::Gpu) - 1.5).abs() < 0.05, "GPU {}", ug(Engine::Gpu));
    }

    #[test]
    fn effectiveness_scales_footprint() {
        let base = OperationalModel::new(EnergySource::Gas.carbon_intensity());
        let pue = base.with_effectiveness(1.5);
        let e = Energy::kilowatt_hours(1.0);
        assert!((pue.footprint(e).ratio(base.footprint(e)) - 1.5).abs() < 1e-12);
        assert_eq!(pue.effectiveness(), 1.5);
    }

    #[test]
    fn carbon_free_energy_means_zero_opcf() {
        let op = OperationalModel::new(CarbonIntensity::grams_per_kwh(0.0));
        assert_eq!(op.footprint(Energy::kilowatt_hours(100.0)), MassCo2::ZERO);
    }

    #[test]
    #[should_panic(expected = "must be >= 1.0")]
    fn sub_unity_effectiveness_rejected() {
        let _ =
            OperationalModel::new(CarbonIntensity::grams_per_kwh(1.0)).with_effectiveness(0.9);
    }

    #[test]
    fn try_effectiveness_errors_instead_of_panicking() {
        let op = OperationalModel::new(CarbonIntensity::grams_per_kwh(1.0));
        assert!(op.try_with_effectiveness(1.5).is_ok());
        assert!(op.try_with_effectiveness(0.9).is_err());
        assert!(op.try_with_effectiveness(f64::NAN).is_err());
    }

    #[test]
    fn try_footprint_agrees_and_rejects_bad_energy() {
        let op = OperationalModel::new(CarbonIntensity::grams_per_kwh(300.0));
        let e = Energy::kilowatt_hours(2.0);
        assert_eq!(op.try_footprint(e).unwrap(), op.footprint(e));
        assert!(op.try_footprint(Energy::joules(-1.0)).is_err());
    }
}
