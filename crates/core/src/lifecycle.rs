//! The four life-cycle phases of Figure 3 — production, transport, use,
//! end-of-life — assembled into one estimate, with a hybrid mode that
//! replaces a report's opaque manufacturing number with an ACT bottom-up
//! estimate.

use act_data::reports::ProductReport;
use act_units::MassCo2;

/// A complete device life-cycle footprint split into the paper's four
/// phases.
///
/// # Examples
///
/// ```
/// use act_core::LifecycleEstimate;
/// use act_data::reports::IPHONE_11;
/// use act_units::MassCo2;
///
/// let reported = LifecycleEstimate::from_report(&IPHONE_11);
/// // Hybrid: keep transport/use/EOL from the report, replace the
/// // manufacturing slice with an ACT bottom-up estimate.
/// let hybrid = reported.with_manufacturing(MassCo2::kilograms(40.0));
/// assert!(hybrid.total() < reported.total());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifecycleEstimate {
    /// Hardware manufacturing (production) emissions.
    pub manufacturing: MassCo2,
    /// Transport emissions.
    pub transport: MassCo2,
    /// Operational-use emissions.
    pub use_phase: MassCo2,
    /// End-of-life processing emissions.
    pub end_of_life: MassCo2,
}

act_json::impl_to_json!(LifecycleEstimate { manufacturing, transport, use_phase, end_of_life });
act_json::impl_from_json!(LifecycleEstimate {
    manufacturing,
    transport,
    use_phase,
    end_of_life
});

impl LifecycleEstimate {
    /// Splits a product environmental report's total by its phase shares.
    #[must_use]
    pub fn from_report(report: &ProductReport) -> Self {
        let total = report.total();
        Self {
            manufacturing: total * report.manufacturing_share,
            transport: total * report.transport_share,
            use_phase: total * report.use_share,
            end_of_life: total * report.end_of_life_share,
        }
    }

    /// Replaces the manufacturing phase (e.g. with an ACT bottom-up
    /// estimate), keeping the other phases.
    #[must_use]
    pub fn with_manufacturing(mut self, manufacturing: MassCo2) -> Self {
        self.manufacturing = manufacturing;
        self
    }

    /// Replaces the use phase (e.g. with an eq. 2 estimate under a
    /// different grid).
    #[must_use]
    pub fn with_use_phase(mut self, use_phase: MassCo2) -> Self {
        self.use_phase = use_phase;
        self
    }

    /// Total over all four phases.
    #[must_use]
    pub fn total(&self) -> MassCo2 {
        self.manufacturing + self.transport + self.use_phase + self.end_of_life
    }

    /// Manufacturing's share of the total, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the total is zero.
    #[must_use]
    pub fn manufacturing_share(&self) -> f64 {
        let total = self.total();
        assert!(total > MassCo2::ZERO, "cannot take shares of a zero footprint");
        self.manufacturing.ratio(total)
    }

    /// `true` when manufacturing exceeds every other phase — the modern
    /// regime the paper is about.
    #[must_use]
    pub fn is_embodied_dominated(&self) -> bool {
        self.manufacturing > self.transport
            && self.manufacturing > self.use_phase
            && self.manufacturing > self.end_of_life
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_data::reports::{IPHONE_11, IPHONE_3};

    #[test]
    fn report_split_reconciles_with_total() {
        let e = LifecycleEstimate::from_report(&IPHONE_11);
        assert!((e.total().ratio(IPHONE_11.total()) - 1.0).abs() < 1e-12);
        assert!((e.manufacturing_share() - 0.79).abs() < 1e-9);
    }

    #[test]
    fn regime_shift_between_generations() {
        assert!(!LifecycleEstimate::from_report(&IPHONE_3).is_embodied_dominated());
        assert!(LifecycleEstimate::from_report(&IPHONE_11).is_embodied_dominated());
    }

    #[test]
    fn hybrid_substitution_changes_only_one_phase() {
        let base = LifecycleEstimate::from_report(&IPHONE_11);
        let hybrid = base.with_manufacturing(MassCo2::kilograms(30.0));
        assert_eq!(hybrid.transport, base.transport);
        assert_eq!(hybrid.use_phase, base.use_phase);
        assert_eq!(hybrid.end_of_life, base.end_of_life);
        assert!((hybrid.manufacturing.as_kilograms() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn use_phase_substitution_models_grid_changes() {
        let base = LifecycleEstimate::from_report(&IPHONE_11);
        let green = base.with_use_phase(MassCo2::kilograms(1.0));
        assert!(green.total() < base.total());
        assert!(green.manufacturing_share() > base.manufacturing_share());
    }

    #[test]
    #[should_panic(expected = "zero footprint")]
    fn zero_total_share_panics() {
        let zero = LifecycleEstimate {
            manufacturing: MassCo2::ZERO,
            transport: MassCo2::ZERO,
            use_phase: MassCo2::ZERO,
            end_of_life: MassCo2::ZERO,
        };
        let _ = zero.manufacturing_share();
    }
}
