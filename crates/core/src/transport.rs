//! Product-transport emissions: the third phase of Figure 3.
//!
//! Transport is a few percent of device life cycles (Figure 1), but a
//! complete life-cycle assembly (see [`crate::LifecycleEstimate`]) needs
//! it. Factors are standard freight intensities per tonne-kilometer.

use act_units::{MassCo2, UnitError};

use crate::{ModelError, Validate};

/// A freight mode with its carbon intensity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FreightMode {
    /// Long-haul air freight (~600 g CO₂ per tonne-km) — how flagship
    /// phones ship at launch.
    Air,
    /// Container shipping (~15 g CO₂ per tonne-km).
    Sea,
    /// Road freight (~100 g CO₂ per tonne-km) — last-mile and regional.
    Road,
    /// Rail freight (~25 g CO₂ per tonne-km).
    Rail,
}

act_json::impl_json_enum!(FreightMode { Air, Sea, Road, Rail });

impl FreightMode {
    /// All modes.
    pub const ALL: [Self; 4] = [Self::Air, Self::Sea, Self::Road, Self::Rail];

    /// Carbon intensity in grams of CO₂ per tonne-kilometer.
    #[must_use]
    pub fn grams_per_tonne_km(self) -> f64 {
        match self {
            Self::Air => 600.0,
            Self::Sea => 15.0,
            Self::Road => 100.0,
            Self::Rail => 25.0,
        }
    }
}

/// One leg of a product's journey from fab to user.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransportLeg {
    /// Freight mode of the leg.
    pub mode: FreightMode,
    /// Distance in kilometers.
    pub distance_km: f64,
}

act_json::impl_to_json!(TransportLeg { mode, distance_km });
act_json::impl_from_json!(TransportLeg { mode, distance_km });

/// A transport model: the product's shipped mass (device plus packaging)
/// and its journey legs.
///
/// # Examples
///
/// ```
/// use act_core::{FreightMode, TransportLeg, TransportModel};
///
/// // A 0.4 kg boxed phone, flown 10,000 km and trucked 500 km.
/// let shipping = TransportModel::new(
///     0.4,
///     vec![
///         TransportLeg { mode: FreightMode::Air, distance_km: 10_000.0 },
///         TransportLeg { mode: FreightMode::Road, distance_km: 500.0 },
///     ],
/// );
/// let footprint = shipping.footprint();
/// assert!((footprint.as_kilograms() - 2.42).abs() < 0.01);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TransportModel {
    shipped_mass_kg: f64,
    legs: Vec<TransportLeg>,
}

act_json::impl_to_json!(TransportModel { shipped_mass_kg, legs });
act_json::impl_from_json!(TransportModel { shipped_mass_kg, legs });

impl TransportModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the shipped mass is not positive or a leg distance is
    /// negative. Use [`Self::try_new`] for user-supplied journeys.
    #[must_use]
    pub fn new(shipped_mass_kg: f64, legs: Vec<TransportLeg>) -> Self {
        assert!(
            shipped_mass_kg > 0.0 && shipped_mass_kg.is_finite(),
            "shipped mass must be positive"
        );
        for leg in &legs {
            assert!(
                leg.distance_km >= 0.0 && leg.distance_km.is_finite(),
                "leg distances must be non-negative"
            );
        }
        Self { shipped_mass_kg, legs }
    }

    /// Checked variant of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the shipped mass is not positive and
    /// finite or a leg distance is negative or non-finite.
    pub fn try_new(shipped_mass_kg: f64, legs: Vec<TransportLeg>) -> Result<Self, ModelError> {
        let model = Self { shipped_mass_kg, legs };
        model.validate()?;
        Ok(model)
    }

    /// Total transport footprint across all legs.
    #[must_use]
    pub fn footprint(&self) -> MassCo2 {
        let tonnes = self.shipped_mass_kg / 1000.0;
        self.legs
            .iter()
            .map(|leg| MassCo2::grams(leg.mode.grams_per_tonne_km() * tonnes * leg.distance_km))
            .sum()
    }

    /// Checked variant of [`Self::footprint`]: validates the journey and the
    /// resulting mass.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the model is invalid (deserialized with a
    /// bad mass or distance) or the summed footprint is non-finite.
    pub fn try_footprint(&self) -> Result<MassCo2, ModelError> {
        self.validate()?;
        Ok(self.footprint().ensure_finite("transport footprint")?)
    }

    /// The same journey with every air leg re-routed by sea — the classic
    /// logistics decarbonization lever.
    #[must_use]
    pub fn sea_freight_alternative(&self) -> Self {
        let legs = self
            .legs
            .iter()
            .map(|leg| TransportLeg {
                mode: if leg.mode == FreightMode::Air { FreightMode::Sea } else { leg.mode },
                distance_km: leg.distance_km,
            })
            .collect();
        Self { shipped_mass_kg: self.shipped_mass_kg, legs }
    }
}

impl Validate for TransportModel {
    fn validate(&self) -> Result<(), ModelError> {
        if !self.shipped_mass_kg.is_finite() {
            return Err(UnitError::non_finite("shipped mass", self.shipped_mass_kg).into());
        }
        if self.shipped_mass_kg <= 0.0 {
            return Err(UnitError::out_of_domain(
                "shipped mass",
                self.shipped_mass_kg,
                "a positive number of kilograms",
            )
            .into());
        }
        for leg in &self.legs {
            if !leg.distance_km.is_finite() {
                return Err(UnitError::non_finite("leg distance", leg.distance_km).into());
            }
            if leg.distance_km < 0.0 {
                return Err(UnitError::out_of_domain(
                    "leg distance",
                    leg.distance_km,
                    "a finite, non-negative number of kilometers",
                )
                .into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone() -> TransportModel {
        TransportModel::new(
            0.4,
            vec![
                TransportLeg { mode: FreightMode::Air, distance_km: 10_000.0 },
                TransportLeg { mode: FreightMode::Road, distance_km: 500.0 },
            ],
        )
    }

    #[test]
    fn footprint_sums_legs() {
        // 0.0004 t x (600 x 10000 + 100 x 500) g = 2420 g.
        assert!((phone().footprint().as_grams() - 2420.0).abs() < 1e-9);
    }

    #[test]
    fn transport_is_a_small_share_of_a_phone_lifecycle() {
        // Figure 1: transport is a few percent of a ~70 kg life cycle.
        let share = phone().footprint().as_kilograms() / 70.0;
        assert!((0.01..=0.1).contains(&share), "share {share}");
    }

    #[test]
    fn sea_freight_cuts_air_emissions_by_an_order_of_magnitude() {
        let air = phone().footprint();
        let sea = phone().sea_freight_alternative().footprint();
        assert!(air.ratio(sea) > 10.0, "air {air} vs sea {sea}");
    }

    #[test]
    fn mode_intensities_are_ordered() {
        assert!(FreightMode::Sea.grams_per_tonne_km() < FreightMode::Rail.grams_per_tonne_km());
        assert!(
            FreightMode::Rail.grams_per_tonne_km() < FreightMode::Road.grams_per_tonne_km()
        );
        assert!(FreightMode::Road.grams_per_tonne_km() < FreightMode::Air.grams_per_tonne_km());
    }

    #[test]
    fn empty_journey_is_free() {
        let m = TransportModel::new(1.0, vec![]);
        assert_eq!(m.footprint(), MassCo2::ZERO);
    }

    #[test]
    #[should_panic(expected = "shipped mass")]
    fn zero_mass_rejected() {
        let _ = TransportModel::new(0.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "leg distances")]
    fn negative_distance_rejected() {
        let _ = TransportModel::new(
            1.0,
            vec![TransportLeg { mode: FreightMode::Sea, distance_km: -1.0 }],
        );
    }

    #[test]
    fn try_new_errors_instead_of_panicking() {
        assert!(TransportModel::try_new(0.4, vec![]).is_ok());
        assert!(TransportModel::try_new(0.0, vec![]).is_err());
        assert!(TransportModel::try_new(f64::NAN, vec![]).is_err());
        let err = TransportModel::try_new(
            1.0,
            vec![TransportLeg { mode: FreightMode::Sea, distance_km: -1.0 }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("leg distance"), "{err}");
    }

    #[test]
    fn try_footprint_agrees_with_unchecked() {
        let m = phone();
        assert_eq!(m.try_footprint().unwrap(), m.footprint());
    }
}
