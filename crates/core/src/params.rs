//! Table 1 as a single configuration surface: every input parameter of the
//! ACT model in one validated, serializable struct, with a facade that
//! evaluates eq. 1 directly.

use act_data::{DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_units::{
    Area, Capacity, CarbonIntensity, Energy, Fraction, MassCo2, TimeSpan,
};
use serde::{Deserialize, Serialize};

use crate::{total_footprint, FabScenario, OperationalModel, SystemSpec};

/// The input-parameter set of ACT's Table 1, bundled.
///
/// This is the "config file" view of the model: where the builder APIs in
/// [`SystemSpec`]/[`FabScenario`]/[`OperationalModel`] are for programmatic
/// exploration, `ModelParams` maps one-to-one onto the paper's parameter
/// table (T, LT, Nr, A, p, CIuse, CIfab, Y, capacities) and can be stored
/// as JSON.
///
/// # Examples
///
/// ```
/// use act_core::ModelParams;
///
/// let params = ModelParams::mobile_reference();
/// let json = serde_json::to_string(&params).unwrap();
/// let back: ModelParams = serde_json::from_str(&json).unwrap();
/// let cf = back.footprint();
/// assert!(cf.as_grams() > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// `T` — application execution time in seconds.
    pub execution_time_s: f64,
    /// `LT` — hardware lifetime in years (paper range 1–10).
    pub lifetime_years: f64,
    /// `Nr` — number of packaged ICs.
    pub packaged_ic_count: u32,
    /// `A` — application-processor die area in mm².
    pub soc_area_mm2: f64,
    /// `p` — process node.
    pub process_node: ProcessNode,
    /// `CIuse` — use-phase carbon intensity, g CO₂/kWh.
    pub use_intensity_g_per_kwh: f64,
    /// `CIfab` — fab carbon intensity, g CO₂/kWh.
    pub fab_intensity_g_per_kwh: f64,
    /// `Y` — fab yield in `(0, 1]`.
    pub fab_yield: f64,
    /// DRAM population (technology, GB).
    pub dram: Vec<(DramTechnology, f64)>,
    /// SSD population (technology, GB).
    pub ssd: Vec<(SsdTechnology, f64)>,
    /// HDD population (model, GB).
    pub hdd: Vec<(HddModel, f64)>,
    /// Application energy over `T`, in joules.
    pub energy_j: f64,
}

/// Error returned when [`ModelParams`] violates Table 1's ranges.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamsError {
    message: String,
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid model parameters: {}", self.message)
    }
}

impl std::error::Error for ParamsError {}

fn err(message: impl Into<String>) -> ParamsError {
    ParamsError { message: message.into() }
}

impl ModelParams {
    /// A mobile reference configuration: a 7 nm 90 mm² SoC with 8 GB
    /// LPDDR4 and 128 GB NAND, one hour of daily-driver use on the US grid
    /// over a 3-year life.
    #[must_use]
    pub fn mobile_reference() -> Self {
        Self {
            execution_time_s: 3600.0,
            lifetime_years: 3.0,
            packaged_ic_count: 3,
            soc_area_mm2: 90.0,
            process_node: ProcessNode::N7,
            use_intensity_g_per_kwh: 380.0,
            fab_intensity_g_per_kwh: 447.5,
            fab_yield: 0.875,
            dram: vec![(DramTechnology::Lpddr4, 8.0)],
            ssd: vec![(SsdTechnology::V3NandTlc, 128.0)],
            hdd: vec![],
            energy_j: 2.0 * 3600.0, // 2 W for an hour
        }
    }

    /// Validates every field against Table 1's documented ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if !(self.execution_time_s >= 0.0 && self.execution_time_s.is_finite()) {
            return Err(err("execution time must be non-negative and finite"));
        }
        if !(0.1..=50.0).contains(&self.lifetime_years) {
            return Err(err(format!(
                "lifetime {} years outside the plausible 0.1-50 range",
                self.lifetime_years
            )));
        }
        if self.soc_area_mm2 < 0.0 || !self.soc_area_mm2.is_finite() {
            return Err(err("SoC area must be non-negative"));
        }
        for (label, ci) in [
            ("use", self.use_intensity_g_per_kwh),
            ("fab", self.fab_intensity_g_per_kwh),
        ] {
            if !(0.0..=2000.0).contains(&ci) {
                return Err(err(format!("{label} carbon intensity {ci} outside 0-2000 g/kWh")));
            }
        }
        if !(self.fab_yield > 0.0 && self.fab_yield <= 1.0) {
            return Err(err(format!("fab yield {} outside (0, 1]", self.fab_yield)));
        }
        let caps = self
            .dram
            .iter()
            .map(|(_, gb)| *gb)
            .chain(self.ssd.iter().map(|(_, gb)| *gb))
            .chain(self.hdd.iter().map(|(_, gb)| *gb));
        for gb in caps {
            if gb < 0.0 || !gb.is_finite() {
                return Err(err("capacities must be non-negative"));
            }
        }
        if self.energy_j < 0.0 || !self.energy_j.is_finite() {
            return Err(err("energy must be non-negative"));
        }
        Ok(())
    }

    /// The fab scenario these parameters imply.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not [`validate`](Self::validate).
    #[must_use]
    pub fn fab_scenario(&self) -> FabScenario {
        self.validate().expect("parameters must validate");
        FabScenario::with_intensity(CarbonIntensity::grams_per_kwh(
            self.fab_intensity_g_per_kwh,
        ))
        .with_yield(Fraction::new(self.fab_yield).expect("validated"))
    }

    /// The hardware description these parameters imply.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not [`validate`](Self::validate).
    #[must_use]
    pub fn system_spec(&self) -> SystemSpec {
        self.validate().expect("parameters must validate");
        let mut builder = SystemSpec::builder().soc(
            "application processor",
            Area::square_millimeters(self.soc_area_mm2),
            self.process_node,
        );
        for (tech, gb) in &self.dram {
            builder = builder.dram(*tech, Capacity::gigabytes(*gb));
        }
        for (tech, gb) in &self.ssd {
            builder = builder.ssd(*tech, Capacity::gigabytes(*gb));
        }
        for (model, gb) in &self.hdd {
            builder = builder.hdd(*model, Capacity::gigabytes(*gb));
        }
        builder.packaged_ics(self.packaged_ic_count).build()
    }

    /// Embodied footprint `ECF` (eq. 3).
    #[must_use]
    pub fn embodied(&self) -> MassCo2 {
        self.system_spec().embodied(&self.fab_scenario()).total()
    }

    /// Operational footprint `OPCF` (eq. 2).
    #[must_use]
    pub fn operational(&self) -> MassCo2 {
        OperationalModel::new(CarbonIntensity::grams_per_kwh(self.use_intensity_g_per_kwh))
            .footprint(Energy::joules(self.energy_j))
    }

    /// Total footprint `CF = OPCF + (T / LT) × ECF` (eq. 1).
    #[must_use]
    pub fn footprint(&self) -> MassCo2 {
        total_footprint(
            self.operational(),
            self.embodied(),
            TimeSpan::seconds(self.execution_time_s),
            TimeSpan::years(self.lifetime_years),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_config_validates_and_evaluates() {
        let p = ModelParams::mobile_reference();
        assert!(p.validate().is_ok());
        assert!(p.embodied().as_kilograms() > 1.0);
        assert!(p.operational().as_grams() > 0.1);
        assert!(p.footprint() > p.operational());
    }

    #[test]
    fn facade_agrees_with_builder_path() {
        let p = ModelParams::mobile_reference();
        let spec = p.system_spec();
        let direct = spec.embodied(&p.fab_scenario()).total();
        assert_eq!(direct, p.embodied());
    }

    #[test]
    fn json_round_trip() {
        let p = ModelParams::mobile_reference();
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: ModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.footprint(), p.footprint());
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = ModelParams::mobile_reference();

        let mut p = base.clone();
        p.lifetime_years = 0.0;
        assert!(p.validate().unwrap_err().to_string().contains("lifetime"));

        let mut p = base.clone();
        p.fab_yield = 0.0;
        assert!(p.validate().unwrap_err().to_string().contains("yield"));

        let mut p = base.clone();
        p.use_intensity_g_per_kwh = -1.0;
        assert!(p.validate().unwrap_err().to_string().contains("intensity"));

        let mut p = base.clone();
        p.dram[0].1 = -4.0;
        assert!(p.validate().unwrap_err().to_string().contains("capacities"));

        let mut p = base.clone();
        p.energy_j = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = base;
        p.soc_area_mm2 = f64::INFINITY;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_runtime_charges_no_embodied() {
        let mut p = ModelParams::mobile_reference();
        p.execution_time_s = 0.0;
        assert_eq!(p.footprint(), p.operational());
    }

    #[test]
    fn full_lifetime_charges_everything() {
        let mut p = ModelParams::mobile_reference();
        p.execution_time_s = TimeSpan::years(p.lifetime_years).as_seconds();
        let expected = p.operational() + p.embodied();
        assert!((p.footprint() / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parameters must validate")]
    fn invalid_params_panic_on_use() {
        let mut p = ModelParams::mobile_reference();
        p.fab_yield = 2.0;
        let _ = p.embodied();
    }
}
