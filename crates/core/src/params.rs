//! Table 1 as a single configuration surface: every input parameter of the
//! ACT model in one validated, serializable struct, with a facade that
//! evaluates eq. 1 directly.

use act_data::{DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_units::{
    Area, Capacity, CarbonIntensity, Energy, Fraction, MassCo2, TimeSpan, UnitError,
};

use crate::{
    total_footprint, EmbodiedReport, FabScenario, ModelError, OperationalModel, SystemSpec,
    Validate,
};

/// The input-parameter set of ACT's Table 1, bundled.
///
/// This is the "config file" view of the model: where the builder APIs in
/// [`SystemSpec`]/[`FabScenario`]/[`OperationalModel`] are for programmatic
/// exploration, `ModelParams` maps one-to-one onto the paper's parameter
/// table (T, LT, Nr, A, p, CIuse, CIfab, Y, capacities) and can be stored
/// as JSON.
///
/// # Examples
///
/// ```
/// use act_core::ModelParams;
///
/// use act_json::{FromJson, JsonValue, ToJson};
///
/// let params = ModelParams::mobile_reference();
/// let json = params.to_json().render_compact();
/// let back = ModelParams::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
/// let cf = back.footprint();
/// assert!(cf.as_grams() > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ModelParams {
    /// `T` — application execution time in seconds.
    pub execution_time_s: f64,
    /// `LT` — hardware lifetime in years (paper range 1–10).
    pub lifetime_years: f64,
    /// `Nr` — number of packaged ICs.
    pub packaged_ic_count: u32,
    /// `A` — application-processor die area in mm².
    pub soc_area_mm2: f64,
    /// `p` — process node.
    pub process_node: ProcessNode,
    /// `CIuse` — use-phase carbon intensity, g CO₂/kWh.
    pub use_intensity_g_per_kwh: f64,
    /// `CIfab` — fab carbon intensity, g CO₂/kWh.
    pub fab_intensity_g_per_kwh: f64,
    /// `Y` — fab yield in `(0, 1]`.
    pub fab_yield: f64,
    /// DRAM population (technology, GB).
    pub dram: Vec<(DramTechnology, f64)>,
    /// SSD population (technology, GB).
    pub ssd: Vec<(SsdTechnology, f64)>,
    /// HDD population (model, GB).
    pub hdd: Vec<(HddModel, f64)>,
    /// Application energy over `T`, in joules.
    pub energy_j: f64,
}

act_json::impl_to_json!(ModelParams {
    execution_time_s,
    lifetime_years,
    packaged_ic_count,
    soc_area_mm2,
    process_node,
    use_intensity_g_per_kwh,
    fab_intensity_g_per_kwh,
    fab_yield,
    dram,
    ssd,
    hdd,
    energy_j
});
act_json::impl_from_json!(ModelParams {
    execution_time_s,
    lifetime_years,
    packaged_ic_count,
    soc_area_mm2,
    process_node,
    use_intensity_g_per_kwh,
    fab_intensity_g_per_kwh,
    fab_yield,
    dram,
    ssd,
    hdd,
    energy_j
});

/// Error returned when [`ModelParams`] violates Table 1's ranges.
///
/// When the violation is a quantity-domain failure (NaN, infinite, out of
/// range), the underlying [`UnitError`] is preserved and exposed through
/// [`std::error::Error::source`].
#[derive(Clone, Debug, PartialEq)]
pub struct ParamsError {
    message: String,
    source: Option<UnitError>,
}

impl ParamsError {
    /// The underlying quantity-domain error, when the violation was one.
    #[must_use]
    pub fn unit_error(&self) -> Option<&UnitError> {
        self.source.as_ref()
    }
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid model parameters: {}", self.message)
    }
}

impl std::error::Error for ParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source.as_ref().map(|err| err as &(dyn std::error::Error + 'static))
    }
}

fn err_from_unit(message: impl Into<String>, source: UnitError) -> ParamsError {
    ParamsError { message: message.into(), source: Some(source) }
}

/// Builds the [`UnitError`] describing a range violation, classifying NaN
/// and infinities as non-finite rather than out-of-domain.
fn domain_error(quantity: &'static str, value: f64, expected: &'static str) -> UnitError {
    if value.is_finite() {
        UnitError::out_of_domain(quantity, value, expected)
    } else {
        UnitError::non_finite(quantity, value)
    }
}

impl ModelParams {
    /// A mobile reference configuration: a 7 nm 90 mm² SoC with 8 GB
    /// LPDDR4 and 128 GB NAND, one hour of daily-driver use on the US grid
    /// over a 3-year life.
    #[must_use]
    pub fn mobile_reference() -> Self {
        Self {
            execution_time_s: act_units::SECONDS_PER_HOUR,
            lifetime_years: 3.0,
            packaged_ic_count: 3,
            soc_area_mm2: 90.0,
            process_node: ProcessNode::N7,
            use_intensity_g_per_kwh: 380.0,
            fab_intensity_g_per_kwh: 447.5,
            fab_yield: 0.875,
            dram: vec![(DramTechnology::Lpddr4, 8.0)],
            ssd: vec![(SsdTechnology::V3NandTlc, 128.0)],
            hdd: vec![],
            energy_j: 2.0 * act_units::SECONDS_PER_HOUR, // 2 W for an hour
        }
    }

    /// Validates every field against Table 1's documented ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if !(self.execution_time_s >= 0.0 && self.execution_time_s.is_finite()) {
            return Err(err_from_unit(
                "execution time must be non-negative and finite",
                domain_error("execution time", self.execution_time_s, "non-negative seconds"),
            ));
        }
        if !(0.1..=50.0).contains(&self.lifetime_years) {
            return Err(err_from_unit(
                format!(
                    "lifetime {} years outside the plausible 0.1-50 range",
                    self.lifetime_years
                ),
                domain_error(
                    "hardware lifetime",
                    self.lifetime_years,
                    "within [0.1, 50] years",
                ),
            ));
        }
        if self.soc_area_mm2 < 0.0 || !self.soc_area_mm2.is_finite() {
            return Err(err_from_unit(
                "SoC area must be non-negative",
                domain_error("SoC area", self.soc_area_mm2, "non-negative mm^2"),
            ));
        }
        for (label, ci) in
            [("use", self.use_intensity_g_per_kwh), ("fab", self.fab_intensity_g_per_kwh)]
        {
            if !(0.0..=2000.0).contains(&ci) {
                return Err(err_from_unit(
                    format!("{label} carbon intensity {ci} outside 0-2000 g/kWh"),
                    domain_error("carbon intensity", ci, "within [0, 2000] g CO2/kWh"),
                ));
            }
        }
        if !(self.fab_yield > 0.0 && self.fab_yield <= 1.0) {
            return Err(err_from_unit(
                format!("fab yield {} outside (0, 1]", self.fab_yield),
                domain_error("fab yield", self.fab_yield, "within (0, 1]"),
            ));
        }
        let caps = self
            .dram
            .iter()
            .map(|(_, gb)| *gb)
            .chain(self.ssd.iter().map(|(_, gb)| *gb))
            .chain(self.hdd.iter().map(|(_, gb)| *gb));
        for gb in caps {
            if gb < 0.0 || !gb.is_finite() {
                return Err(err_from_unit(
                    "capacities must be non-negative",
                    domain_error("storage capacity", gb, "non-negative GB"),
                ));
            }
        }
        if self.energy_j < 0.0 || !self.energy_j.is_finite() {
            return Err(err_from_unit(
                "energy must be non-negative",
                domain_error("application energy", self.energy_j, "non-negative joules"),
            ));
        }
        Ok(())
    }

    /// The fab scenario these parameters imply.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not [`validate`](Self::validate).
    #[must_use]
    pub fn fab_scenario(&self) -> FabScenario {
        match self.try_fab_scenario() {
            Ok(scenario) => scenario,
            Err(err) => panic!("parameters must validate: {err}"),
        }
    }

    /// The hardware description these parameters imply.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not [`validate`](Self::validate).
    #[must_use]
    pub fn system_spec(&self) -> SystemSpec {
        match self.try_system_spec() {
            Ok(spec) => spec,
            Err(err) => panic!("parameters must validate: {err}"),
        }
    }

    /// Embodied footprint `ECF` (eq. 3).
    #[must_use]
    pub fn embodied(&self) -> MassCo2 {
        self.system_spec().embodied(&self.fab_scenario()).total()
    }

    /// Operational footprint `OPCF` (eq. 2).
    #[must_use]
    pub fn operational(&self) -> MassCo2 {
        OperationalModel::new(CarbonIntensity::grams_per_kwh(self.use_intensity_g_per_kwh))
            .footprint(Energy::joules(self.energy_j))
    }

    /// Total footprint `CF = OPCF + (T / LT) × ECF` (eq. 1).
    #[must_use]
    pub fn footprint(&self) -> MassCo2 {
        total_footprint(
            self.operational(),
            self.embodied(),
            TimeSpan::seconds(self.execution_time_s),
            TimeSpan::years(self.lifetime_years),
        )
    }

    /// Checked variant of [`Self::fab_scenario`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the parameters do not validate.
    pub fn try_fab_scenario(&self) -> Result<FabScenario, ModelError> {
        self.validate()?;
        let fab_yield = Fraction::new(self.fab_yield)?;
        Ok(FabScenario::with_intensity(CarbonIntensity::try_grams_per_kwh(
            self.fab_intensity_g_per_kwh,
        )?)
        .with_yield(fab_yield))
    }

    /// Checked variant of [`Self::system_spec`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the parameters do not validate.
    pub fn try_system_spec(&self) -> Result<SystemSpec, ModelError> {
        self.validate()?;
        let mut builder = SystemSpec::builder().soc(
            "application processor",
            Area::try_square_millimeters(self.soc_area_mm2)?,
            self.process_node,
        );
        for (tech, gb) in &self.dram {
            builder = builder.dram(*tech, Capacity::try_gigabytes(*gb)?);
        }
        for (tech, gb) in &self.ssd {
            builder = builder.ssd(*tech, Capacity::try_gigabytes(*gb)?);
        }
        for (model, gb) in &self.hdd {
            builder = builder.hdd(*model, Capacity::try_gigabytes(*gb)?);
        }
        builder.packaged_ics(self.packaged_ic_count).try_build()
    }

    /// Checked variant of [`Self::embodied`], returning the full
    /// per-component report.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the parameters do not validate or any
    /// component footprint evaluates to a non-finite mass.
    pub fn try_embodied(&self) -> Result<EmbodiedReport, ModelError> {
        self.try_system_spec()?.try_embodied(&self.try_fab_scenario()?)
    }

    /// Checked variant of [`Self::operational`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the parameters do not validate.
    pub fn try_operational(&self) -> Result<MassCo2, ModelError> {
        self.validate()?;
        let op = OperationalModel::new(CarbonIntensity::try_grams_per_kwh(
            self.use_intensity_g_per_kwh,
        )?);
        op.try_footprint(Energy::try_joules(self.energy_j)?)
    }

    /// Checked variant of [`Self::footprint`]: the full eq. 1 evaluation
    /// without any panicking path.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the parameters do not validate or any
    /// intermediate result is non-finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_core::ModelParams;
    ///
    /// let mut params = ModelParams::mobile_reference();
    /// assert!(params.try_footprint().is_ok());
    /// params.fab_yield = f64::NAN;
    /// assert!(params.try_footprint().is_err());
    /// ```
    pub fn try_footprint(&self) -> Result<MassCo2, ModelError> {
        crate::try_total_footprint(
            self.try_operational()?,
            self.try_embodied()?.total(),
            TimeSpan::try_seconds(self.execution_time_s)?,
            TimeSpan::try_years(self.lifetime_years)?,
        )
    }
}

impl Validate for ModelParams {
    fn validate(&self) -> Result<(), ModelError> {
        ModelParams::validate(self).map_err(ModelError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_config_validates_and_evaluates() {
        let p = ModelParams::mobile_reference();
        assert!(p.validate().is_ok());
        assert!(p.embodied().as_kilograms() > 1.0);
        assert!(p.operational().as_grams() > 0.1);
        assert!(p.footprint() > p.operational());
    }

    #[test]
    fn facade_agrees_with_builder_path() {
        let p = ModelParams::mobile_reference();
        let spec = p.system_spec();
        let direct = spec.embodied(&p.fab_scenario()).total();
        assert_eq!(direct, p.embodied());
    }

    #[test]
    fn json_round_trip() {
        use act_json::{FromJson, JsonValue, ToJson};
        let p = ModelParams::mobile_reference();
        let json = p.to_json().render_pretty();
        let back = ModelParams::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.footprint(), p.footprint());
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = ModelParams::mobile_reference();

        let mut p = base.clone();
        p.lifetime_years = 0.0;
        assert!(p.validate().unwrap_err().to_string().contains("lifetime"));

        let mut p = base.clone();
        p.fab_yield = 0.0;
        assert!(p.validate().unwrap_err().to_string().contains("yield"));

        let mut p = base.clone();
        p.use_intensity_g_per_kwh = -1.0;
        assert!(p.validate().unwrap_err().to_string().contains("intensity"));

        let mut p = base.clone();
        p.dram[0].1 = -4.0;
        assert!(p.validate().unwrap_err().to_string().contains("capacities"));

        let mut p = base.clone();
        p.energy_j = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = base;
        p.soc_area_mm2 = f64::INFINITY;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_runtime_charges_no_embodied() {
        let mut p = ModelParams::mobile_reference();
        p.execution_time_s = 0.0;
        assert_eq!(p.footprint(), p.operational());
    }

    #[test]
    fn full_lifetime_charges_everything() {
        let mut p = ModelParams::mobile_reference();
        p.execution_time_s = TimeSpan::years(p.lifetime_years).as_seconds();
        let expected = p.operational() + p.embodied();
        assert!((p.footprint().ratio(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parameters must validate")]
    fn invalid_params_panic_on_use() {
        let mut p = ModelParams::mobile_reference();
        p.fab_yield = 2.0;
        let _ = p.embodied();
    }

    #[test]
    fn try_facade_agrees_with_panicking_facade() {
        let p = ModelParams::mobile_reference();
        assert_eq!(p.try_embodied().unwrap().total(), p.embodied());
        assert_eq!(p.try_operational().unwrap(), p.operational());
        assert_eq!(p.try_footprint().unwrap(), p.footprint());
    }

    #[test]
    fn try_facade_reports_instead_of_panicking() {
        let mut p = ModelParams::mobile_reference();
        p.fab_yield = 2.0;
        let err = p.try_footprint().unwrap_err();
        assert!(err.to_string().contains("yield"), "{err}");
        // The yield violation keeps its unit-level cause through the chain.
        let params_err = match err {
            crate::ModelError::Params(e) => e,
            other => panic!("expected a params error, got {other:?}"),
        };
        assert!(params_err.unit_error().is_some());
    }

    #[test]
    fn validate_trait_wraps_inherent_validation() {
        let mut p = ModelParams::mobile_reference();
        assert!(crate::Validate::validate(&p).is_ok());
        p.energy_j = f64::INFINITY;
        let err = crate::Validate::validate(&p).unwrap_err();
        assert!(std::error::Error::source(&err).is_some());
    }
}
