//! The ACT architectural carbon footprint model (Gupta et al., ISCA 2022).
//!
//! The model quantifies the emissions of running a software application on a
//! hardware platform as the sum of operational and lifetime-amortized
//! embodied emissions (paper eq. 1):
//!
//! ```text
//! CF = OPCF + (T / LT) × ECF
//! ```
//!
//! * [`OperationalModel`] computes `OPCF = CIuse × Energy` (eq. 2),
//! * [`SystemSpec::embodied`] computes `ECF = Nr·Kr + Σ Er` (eq. 3) with the
//!   per-component models of eqs. 4–8,
//! * [`FabScenario`] captures the semiconductor-fab parameters behind the
//!   `CPA = (CIfab·EPA + GPA + MPA) / Y` term (eq. 5),
//! * [`OptimizationMetric`] implements the carbon-aware design metrics of
//!   Table 2 (CDP, CEP, C²EP, CE²P next to EDP and EDAP).
//!
//! # Examples
//!
//! Footprint of a 7 nm mobile SoC with 8 GB of LPDDR4 over a 3-year life:
//!
//! ```
//! use act_core::{FabScenario, OperationalModel, SystemSpec};
//! use act_data::{DramTechnology, Location, ProcessNode};
//! use act_units::{Area, Capacity, Power, TimeSpan};
//!
//! let system = SystemSpec::builder()
//!     .soc("SoC", Area::square_millimeters(90.0), ProcessNode::N7)
//!     .dram(DramTechnology::Lpddr4, Capacity::gigabytes(8.0))
//!     .packaged_ics(2)
//!     .build();
//! let embodied = system.embodied(&FabScenario::default());
//!
//! let op = OperationalModel::new(Location::UnitedStates.carbon_intensity());
//! let opcf = op.footprint(Power::watts(1.0) * TimeSpan::hours(2.0));
//!
//! let total = act_core::total_footprint(
//!     opcf,
//!     embodied.total(),
//!     TimeSpan::hours(2.0),
//!     TimeSpan::years(3.0),
//! );
//! assert!(total > opcf);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod embodied;
mod error;
mod fab;
mod intensity;
mod lifecycle;
pub mod memo;
mod metrics;
mod operational;
mod params;
mod transport;

pub use compiled::{CompiledFootprint, EvalPlan, FreeAxis, LANES};
pub use embodied::{
    ComponentKind, EmbodiedComponent, EmbodiedReport, SystemSpec, SystemSpecBuilder,
    PACKAGING_FOOTPRINT,
};
pub use error::{ModelError, Validate};
pub use fab::{CpaBreakdown, FabScenario};
pub use intensity::IntensityProfile;
pub use lifecycle::LifecycleEstimate;
pub use metrics::{DesignPoint, OptimizationMetric};
pub use operational::OperationalModel;
pub use params::{ModelParams, ParamsError};
pub use transport::{FreightMode, TransportLeg, TransportModel};

use act_units::{MassCo2, TimeSpan};

/// Total carbon footprint of running an application (paper eq. 1):
/// `CF = OPCF + (T / LT) × ECF`.
///
/// The embodied footprint is discounted by the share of the hardware's
/// lifetime the application consumes.
///
/// # Examples
///
/// ```
/// use act_core::total_footprint;
/// use act_units::{MassCo2, TimeSpan};
///
/// let cf = total_footprint(
///     MassCo2::grams(10.0),
///     MassCo2::kilograms(2.0),
///     TimeSpan::years(1.0),
///     TimeSpan::years(4.0),
/// );
/// assert!((cf.as_grams() - 510.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `lifetime` is not positive. Use [`try_total_footprint`] when
/// the inputs come from user configuration and a recoverable error is
/// preferable to a panic.
#[must_use]
pub fn total_footprint(
    operational: MassCo2,
    embodied: MassCo2,
    run_time: TimeSpan,
    lifetime: TimeSpan,
) -> MassCo2 {
    assert!(lifetime.as_seconds() > 0.0, "hardware lifetime must be positive, got {lifetime}");
    operational + embodied * (run_time / lifetime)
}

/// Checked variant of [`total_footprint`]: validates every input and the
/// result instead of panicking.
///
/// # Examples
///
/// ```
/// use act_core::try_total_footprint;
/// use act_units::{MassCo2, TimeSpan};
///
/// let cf = try_total_footprint(
///     MassCo2::grams(10.0),
///     MassCo2::kilograms(2.0),
///     TimeSpan::years(1.0),
///     TimeSpan::years(4.0),
/// )?;
/// assert!((cf.as_grams() - 510.0).abs() < 1e-9);
///
/// // A zero lifetime is an error, not a panic.
/// assert!(try_total_footprint(
///     MassCo2::ZERO,
///     MassCo2::ZERO,
///     TimeSpan::years(1.0),
///     TimeSpan::ZERO,
/// ).is_err());
/// # Ok::<(), act_core::ModelError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ModelError`] if any input is non-finite, `run_time` is
/// negative, `lifetime` is not positive, or the amortized sum overflows to
/// a non-finite value.
pub fn try_total_footprint(
    operational: MassCo2,
    embodied: MassCo2,
    run_time: TimeSpan,
    lifetime: TimeSpan,
) -> Result<MassCo2, ModelError> {
    let operational = operational.ensure_finite("operational footprint")?;
    let embodied = embodied.ensure_finite("embodied footprint")?;
    let run_time = run_time.ensure_finite("application run time")?;
    let lifetime = lifetime.ensure_finite("hardware lifetime")?;
    if run_time.as_seconds() < 0.0 {
        return Err(ModelError::invariant(format!(
            "application run time must be non-negative, got {run_time}"
        )));
    }
    if lifetime.as_seconds() <= 0.0 {
        return Err(ModelError::invariant(format!(
            "hardware lifetime must be positive, got {lifetime}"
        )));
    }
    let total = operational + embodied * (run_time / lifetime);
    Ok(total.ensure_finite("total footprint")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_amortizes_embodied_by_lifetime_share() {
        let cf = total_footprint(
            MassCo2::grams(100.0),
            MassCo2::grams(1000.0),
            TimeSpan::years(3.0),
            TimeSpan::years(3.0),
        );
        assert!((cf.as_grams() - 1100.0).abs() < 1e-9);

        let half = total_footprint(
            MassCo2::grams(100.0),
            MassCo2::grams(1000.0),
            TimeSpan::years(1.5),
            TimeSpan::years(3.0),
        );
        assert!((half.as_grams() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runtime_means_operational_only() {
        let cf = total_footprint(
            MassCo2::grams(42.0),
            MassCo2::kilograms(5.0),
            TimeSpan::ZERO,
            TimeSpan::years(2.0),
        );
        assert!((cf.as_grams() - 42.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lifetime must be positive")]
    fn rejects_zero_lifetime() {
        let _ =
            total_footprint(MassCo2::ZERO, MassCo2::ZERO, TimeSpan::years(1.0), TimeSpan::ZERO);
    }

    #[test]
    fn try_variant_agrees_with_panicking_path() {
        let args = (
            MassCo2::grams(100.0),
            MassCo2::grams(1000.0),
            TimeSpan::years(1.5),
            TimeSpan::years(3.0),
        );
        let checked = try_total_footprint(args.0, args.1, args.2, args.3).unwrap();
        let unchecked = total_footprint(args.0, args.1, args.2, args.3);
        assert_eq!(checked, unchecked);
    }

    #[test]
    fn try_variant_rejects_bad_inputs() {
        let err = try_total_footprint(
            MassCo2::ZERO,
            MassCo2::ZERO,
            TimeSpan::years(1.0),
            TimeSpan::ZERO,
        )
        .unwrap_err();
        assert!(err.to_string().contains("lifetime"));

        let err = try_total_footprint(
            MassCo2::ZERO,
            MassCo2::ZERO,
            TimeSpan::years(-1.0),
            TimeSpan::years(3.0),
        )
        .unwrap_err();
        assert!(err.to_string().contains("run time"));
    }
}
