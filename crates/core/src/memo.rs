//! Thread-safe memoization of expensive discrete model sub-terms.
//!
//! The ACT model's costliest scalar sub-terms are drawn from small discrete
//! domains: carbon-per-area (eq. 5) is a function of `(ProcessNode, fab
//! carbon intensity, gas abatement, yield)` and per-device storage
//! footprints (eqs. 6–8) of `(technology, capacity)`. Sweeps and
//! Monte-Carlo runs re-derive the same handful of values millions of times;
//! this module interns them in sharded [`RwLock`] caches so repeated
//! configurations hit a hash lookup instead of the full derivation.
//!
//! Every cached function is **pure**: the key fully determines the value
//! (f64 inputs are keyed by their exact bit pattern via
//! [`f64::to_bits`]), so there is no invalidation story — entries never
//! go stale, and a racing double-compute inserts the identical bits.
//! Cached values are bit-for-bit identical to the uncached computation,
//! which the property tests in `crates/core/tests/compiled.rs` pin.
//!
//! [`set_enabled`]`(false)` (the CLI's `--naive` escape hatch) turns every
//! helper into a pass-through to the underlying computation for A/B
//! timing; results are unchanged either way.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};

use act_data::{Abatement, DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_units::{Capacity, MassCo2, MassPerArea};

use crate::FabScenario;

/// Shard count for [`MemoCache`]. A small power of two: the cached domains
/// hold at most a few hundred entries, so this is about spreading lock
/// contention across sweep threads, not about capacity.
const SHARDS: usize = 16;

/// Default per-shard entry cap for [`MemoCache::new`]. The intended
/// domains are small and discrete (process nodes × abatement levels ×
/// a handful of yields), so
/// well-behaved workloads never approach it; the cap exists so an
/// adversarial workload — a Monte-Carlo run keying on a continuous draw,
/// say — degrades to pass-through computation instead of growing the
/// process without bound. 4096 × 16 shards ≈ 64 K entries worst case.
pub const DEFAULT_SHARD_CAPACITY: usize = 4096;

/// A small thread-safe memoization cache: a fixed array of
/// [`RwLock`]-guarded hash maps, sharded by key hash.
///
/// Lookups take a shard read lock; only a miss takes the write lock, and
/// the value is computed *outside* any lock, so two threads may race to
/// compute the same entry — the first insert wins, which is safe because
/// every cached function is pure. Hit/miss counters are kept with relaxed
/// atomics for observability.
///
/// Occupancy is **bounded**: each shard caps its entry count (default
/// [`DEFAULT_SHARD_CAPACITY`] via [`MemoCache::new`], explicit via
/// [`MemoCache::with_shard_capacity`]). Once a shard is full, further
/// distinct keys are computed and returned without being interned —
/// results are unchanged, the cache just stops absorbing new keys — and
/// counted in [`MemoStats::rejected_inserts`].
///
/// # Examples
///
/// ```
/// use act_core::memo::MemoCache;
///
/// let cache: MemoCache<u32, f64> = MemoCache::new();
/// assert_eq!(cache.get_or_insert_with(7, || 1.5), 1.5);
/// assert_eq!(cache.get_or_insert_with(7, || unreachable!()), 1.5);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct MemoCache<K, V> {
    shards: [RwLock<HashMap<K, V>>; SHARDS],
    /// Entry cap per shard; full shards bypass insertion (pass-through).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

/// Observed hit/miss/occupancy counters of a [`MemoCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Distinct keys currently interned.
    pub entries: usize,
    /// Computed values NOT interned because their shard was at capacity.
    /// A growing count means the workload's key domain has outgrown the
    /// cache — results stay correct, the cache just stops paying off.
    pub rejected_inserts: u64,
    /// Upper bound on `entries` (shard capacity × shard count).
    pub capacity: usize,
}

impl<K, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self::with_shard_capacity(DEFAULT_SHARD_CAPACITY)
    }
}

impl<K, V> MemoCache<K, V> {
    /// Creates an empty cache with an explicit per-shard entry cap.
    /// A cap of zero disables interning entirely (every lookup computes).
    #[must_use]
    pub fn with_shard_capacity(shard_capacity: usize) -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }
}

impl<K: Hash + Eq, V: Copy> MemoCache<K, V> {
    /// Creates an empty cache with the default bound
    /// ([`DEFAULT_SHARD_CAPACITY`] entries per shard).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        // Truncation is fine: only the low bits pick one of SHARDS buckets.
        #[allow(clippy::cast_possible_truncation)]
        let index = hasher.finish() as usize % SHARDS;
        &self.shards[index]
    }

    /// Returns the interned value for `key`, computing and inserting it on
    /// first use. `compute` runs outside the shard locks; under a race the
    /// first inserted value wins (callers must pass pure functions). When
    /// the key's shard is at capacity the computed value is returned
    /// WITHOUT being interned, so memory stays bounded no matter how many
    /// distinct keys a workload produces.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        {
            let guard = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(value) = guard.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return *value;
            }
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.write().unwrap_or_else(PoisonError::into_inner);
        if guard.len() >= self.shard_capacity && !guard.contains_key(&key) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return value;
        }
        *guard.entry(key).or_insert(value)
    }

    /// Hit/miss/rejection counters and current occupancy.
    pub fn stats(&self) -> MemoStats {
        let entries = self
            .shards
            .iter()
            .map(|shard| shard.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum();
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            rejected_inserts: self.rejected.load(Ordering::Relaxed),
            capacity: self.shard_capacity.saturating_mul(SHARDS),
        }
    }

    /// Drops every interned entry and resets the counters (test support;
    /// values are pure so this is never required for correctness).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(PoisonError::into_inner).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
    }
}

/// Whether the global caches intern at all (default: yes). The CLI's
/// `--naive` flag clears this for A/B timing.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables interning. Disabled helpers compute
/// directly — same bits, no cache traffic.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the global caches are currently interning.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Cache key for carbon-per-area: the full discrete+bitwise domain of
/// [`FabScenario::carbon_per_area`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CpaKey {
    node: ProcessNode,
    intensity_bits: u64,
    abatement: Abatement,
    yield_bits: u64,
}

/// Cache key for per-device storage footprints (eqs. 6–8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum StorageKey {
    Dram(DramTechnology, u64),
    Ssd(SsdTechnology, u64),
    Hdd(HddModel, u64),
}

fn cpa_cache() -> &'static MemoCache<CpaKey, MassPerArea> {
    static CACHE: OnceLock<MemoCache<CpaKey, MassPerArea>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

fn storage_cache() -> &'static MemoCache<StorageKey, MassCo2> {
    static CACHE: OnceLock<MemoCache<StorageKey, MassCo2>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`FabScenario::carbon_per_area`] (eq. 5). Bit-for-bit
/// identical to the direct call; repeated `(scenario, node)` pairs across
/// sweep points hit the cache.
///
/// # Panics
///
/// Panics if the scenario's yield is zero, exactly like the direct call.
/// Validate the scenario first (or use [`FabScenario::try_carbon_per_area`])
/// for untrusted inputs.
///
/// # Examples
///
/// ```
/// use act_core::{memo, FabScenario};
/// use act_data::ProcessNode;
///
/// let fab = FabScenario::default();
/// let cached = memo::carbon_per_area(&fab, ProcessNode::N7);
/// assert_eq!(cached, fab.carbon_per_area(ProcessNode::N7));
/// ```
#[must_use]
pub fn carbon_per_area(fab: &FabScenario, node: ProcessNode) -> MassPerArea {
    if !enabled() {
        return fab.carbon_per_area(node);
    }
    let key = CpaKey {
        node,
        intensity_bits: fab.energy_intensity.as_grams_per_kwh().to_bits(),
        abatement: fab.abatement,
        yield_bits: fab.fab_yield.get().to_bits(),
    };
    cpa_cache().get_or_insert_with(key, || fab.carbon_per_area(node))
}

/// Memoized DRAM embodied footprint `CPS_DRAM × capacity` (eq. 6).
#[must_use]
pub fn dram_embodied(technology: DramTechnology, capacity: Capacity) -> MassCo2 {
    if !enabled() {
        return technology.carbon_per_gb() * capacity;
    }
    let key = StorageKey::Dram(technology, capacity.as_gigabytes().to_bits());
    storage_cache().get_or_insert_with(key, || technology.carbon_per_gb() * capacity)
}

/// Memoized SSD embodied footprint `CPS_SSD × capacity` (eq. 8).
#[must_use]
pub fn ssd_embodied(technology: SsdTechnology, capacity: Capacity) -> MassCo2 {
    if !enabled() {
        return technology.carbon_per_gb() * capacity;
    }
    let key = StorageKey::Ssd(technology, capacity.as_gigabytes().to_bits());
    storage_cache().get_or_insert_with(key, || technology.carbon_per_gb() * capacity)
}

/// Memoized HDD embodied footprint `CPS_HDD × capacity` (eq. 7).
#[must_use]
pub fn hdd_embodied(model: HddModel, capacity: Capacity) -> MassCo2 {
    if !enabled() {
        return model.carbon_per_gb() * capacity;
    }
    let key = StorageKey::Hdd(model, capacity.as_gigabytes().to_bits());
    storage_cache().get_or_insert_with(key, || model.carbon_per_gb() * capacity)
}

/// Counters of the global carbon-per-area cache.
#[must_use]
pub fn cpa_stats() -> MemoStats {
    cpa_cache().stats()
}

/// Counters of the global storage-footprint cache.
#[must_use]
pub fn storage_stats() -> MemoStats {
    storage_cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_units::Fraction;

    #[test]
    fn cpa_matches_direct_computation_bitwise() {
        let scenarios = [
            FabScenario::default(),
            FabScenario::taiwan_grid(),
            FabScenario::default().with_yield(Fraction::new_const(0.5)),
        ];
        for fab in &scenarios {
            for node in [ProcessNode::N7, ProcessNode::N10, ProcessNode::N28] {
                let direct = fab.carbon_per_area(node).as_grams_per_cm2();
                let cached = carbon_per_area(fab, node).as_grams_per_cm2();
                assert_eq!(direct.to_bits(), cached.to_bits());
                // Second lookup (a guaranteed hit) returns the same bits.
                let again = carbon_per_area(fab, node).as_grams_per_cm2();
                assert_eq!(cached.to_bits(), again.to_bits());
            }
        }
    }

    #[test]
    fn storage_helpers_match_direct_computation_bitwise() {
        let capacity = Capacity::gigabytes(128.0);
        let direct = (SsdTechnology::V3NandTlc.carbon_per_gb() * capacity).as_grams();
        let cached = ssd_embodied(SsdTechnology::V3NandTlc, capacity).as_grams();
        assert_eq!(direct.to_bits(), cached.to_bits());

        let dram_direct = (DramTechnology::Lpddr4.carbon_per_gb() * capacity).as_grams();
        let dram_cached = dram_embodied(DramTechnology::Lpddr4, capacity).as_grams();
        assert_eq!(dram_direct.to_bits(), dram_cached.to_bits());
    }

    #[test]
    fn disabling_bypasses_the_cache_without_changing_results() {
        let fab = FabScenario::default();
        let cached = carbon_per_area(&fab, ProcessNode::N14);
        set_enabled(false);
        let bypassed = carbon_per_area(&fab, ProcessNode::N14);
        set_enabled(true);
        assert_eq!(cached, bypassed);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache: MemoCache<(u8, u8), f64> = MemoCache::new();
        for round in 0..3_u8 {
            for key in 0..10_u8 {
                let value = cache.get_or_insert_with((key, 0), || f64::from(key) * 2.0);
                assert_eq!(value, f64::from(key) * 2.0);
                let _ = round;
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.entries, 10);
        assert_eq!(stats.rejected_inserts, 0);
        assert_eq!(stats.capacity, DEFAULT_SHARD_CAPACITY * 16);
        cache.clear();
        let cleared = cache.stats();
        assert_eq!((cleared.hits, cleared.misses, cleared.entries), (0, 0, 0));
        assert_eq!(cleared.rejected_inserts, 0);
    }

    /// The regression the bound exists for: a workload keying on a
    /// continuous value floods the cache with unique keys. Occupancy must
    /// stay at the configured cap, every overflow must be counted, and
    /// results must stay correct (pass-through, not eviction).
    #[test]
    fn unique_key_floods_stay_bounded() {
        let cache: MemoCache<u64, f64> = MemoCache::with_shard_capacity(32);
        const FLOOD: u64 = 1_000_000;
        for key in 0..FLOOD {
            #[allow(clippy::cast_precision_loss)]
            let value = cache.get_or_insert_with(key, || key as f64 * 0.5);
            #[allow(clippy::cast_precision_loss)]
            let expected = key as f64 * 0.5;
            assert_eq!(value.to_bits(), expected.to_bits(), "key {key}");
        }
        let stats = cache.stats();
        assert_eq!(stats.capacity, 32 * 16);
        assert!(stats.entries <= stats.capacity, "{} entries", stats.entries);
        assert_eq!(stats.misses, FLOOD);
        // Everything past the interned population was rejected, not stored.
        #[allow(clippy::cast_possible_truncation)]
        let interned = stats.entries as u64;
        assert_eq!(stats.rejected_inserts, FLOOD - interned);
        // Interned keys still hit.
        let again = cache.get_or_insert_with(0, || unreachable!());
        assert_eq!(again, 0.0);
        assert_eq!(cache.stats().hits, 1);
    }

    /// A zero capacity turns the cache into a pure pass-through.
    #[test]
    fn zero_capacity_disables_interning() {
        let cache: MemoCache<u8, f64> = MemoCache::with_shard_capacity(0);
        assert_eq!(cache.get_or_insert_with(1, || 2.0), 2.0);
        assert_eq!(cache.get_or_insert_with(1, || 3.0), 3.0);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.rejected_inserts, 2);
        assert_eq!(stats.capacity, 0);
    }
}
