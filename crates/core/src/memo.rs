//! Thread-safe memoization of expensive discrete model sub-terms.
//!
//! The ACT model's costliest scalar sub-terms are drawn from small discrete
//! domains: carbon-per-area (eq. 5) is a function of `(ProcessNode, fab
//! carbon intensity, gas abatement, yield)` and per-device storage
//! footprints (eqs. 6–8) of `(technology, capacity)`. Sweeps and
//! Monte-Carlo runs re-derive the same handful of values millions of times;
//! this module interns them in sharded [`RwLock`] caches so repeated
//! configurations hit a hash lookup instead of the full derivation.
//!
//! Every cached function is **pure**: the key fully determines the value
//! (f64 inputs are keyed by their exact bit pattern via
//! [`f64::to_bits`]), so there is no invalidation story — entries never
//! go stale, and a racing double-compute inserts the identical bits.
//! Cached values are bit-for-bit identical to the uncached computation,
//! which the property tests in `crates/core/tests/compiled.rs` pin.
//!
//! [`set_enabled`]`(false)` (the CLI's `--naive` escape hatch) turns every
//! helper into a pass-through to the underlying computation for A/B
//! timing; results are unchanged either way.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};

use act_data::{Abatement, DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_units::{Capacity, MassCo2, MassPerArea};

use crate::FabScenario;

/// Shard count for [`MemoCache`]. A small power of two: the cached domains
/// hold at most a few hundred entries, so this is about spreading lock
/// contention across sweep threads, not about capacity.
const SHARDS: usize = 16;

/// A small thread-safe memoization cache: a fixed array of
/// [`RwLock`]-guarded hash maps, sharded by key hash.
///
/// Lookups take a shard read lock; only a miss takes the write lock, and
/// the value is computed *outside* any lock, so two threads may race to
/// compute the same entry — the first insert wins, which is safe because
/// every cached function is pure. Hit/miss counters are kept with relaxed
/// atomics for observability.
///
/// # Examples
///
/// ```
/// use act_core::memo::MemoCache;
///
/// let cache: MemoCache<u32, f64> = MemoCache::new();
/// assert_eq!(cache.get_or_insert_with(7, || 1.5), 1.5);
/// assert_eq!(cache.get_or_insert_with(7, || unreachable!()), 1.5);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct MemoCache<K, V> {
    shards: [RwLock<HashMap<K, V>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Observed hit/miss/occupancy counters of a [`MemoCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Distinct keys currently interned.
    pub entries: usize,
}

impl<K, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<K: Hash + Eq, V: Copy> MemoCache<K, V> {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        // Truncation is fine: only the low bits pick one of SHARDS buckets.
        #[allow(clippy::cast_possible_truncation)]
        let index = hasher.finish() as usize % SHARDS;
        &self.shards[index]
    }

    /// Returns the interned value for `key`, computing and inserting it on
    /// first use. `compute` runs outside the shard locks; under a race the
    /// first inserted value wins (callers must pass pure functions).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        {
            let guard = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(value) = guard.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return *value;
            }
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.write().unwrap_or_else(PoisonError::into_inner);
        *guard.entry(key).or_insert(value)
    }

    /// Hit/miss counters and current occupancy.
    pub fn stats(&self) -> MemoStats {
        let entries = self
            .shards
            .iter()
            .map(|shard| shard.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum();
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every interned entry and resets the counters (test support;
    /// values are pure so this is never required for correctness).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(PoisonError::into_inner).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Whether the global caches intern at all (default: yes). The CLI's
/// `--naive` flag clears this for A/B timing.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables interning. Disabled helpers compute
/// directly — same bits, no cache traffic.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the global caches are currently interning.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Cache key for carbon-per-area: the full discrete+bitwise domain of
/// [`FabScenario::carbon_per_area`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CpaKey {
    node: ProcessNode,
    intensity_bits: u64,
    abatement: Abatement,
    yield_bits: u64,
}

/// Cache key for per-device storage footprints (eqs. 6–8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum StorageKey {
    Dram(DramTechnology, u64),
    Ssd(SsdTechnology, u64),
    Hdd(HddModel, u64),
}

fn cpa_cache() -> &'static MemoCache<CpaKey, MassPerArea> {
    static CACHE: OnceLock<MemoCache<CpaKey, MassPerArea>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

fn storage_cache() -> &'static MemoCache<StorageKey, MassCo2> {
    static CACHE: OnceLock<MemoCache<StorageKey, MassCo2>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`FabScenario::carbon_per_area`] (eq. 5). Bit-for-bit
/// identical to the direct call; repeated `(scenario, node)` pairs across
/// sweep points hit the cache.
///
/// # Panics
///
/// Panics if the scenario's yield is zero, exactly like the direct call.
/// Validate the scenario first (or use [`FabScenario::try_carbon_per_area`])
/// for untrusted inputs.
///
/// # Examples
///
/// ```
/// use act_core::{memo, FabScenario};
/// use act_data::ProcessNode;
///
/// let fab = FabScenario::default();
/// let cached = memo::carbon_per_area(&fab, ProcessNode::N7);
/// assert_eq!(cached, fab.carbon_per_area(ProcessNode::N7));
/// ```
#[must_use]
pub fn carbon_per_area(fab: &FabScenario, node: ProcessNode) -> MassPerArea {
    if !enabled() {
        return fab.carbon_per_area(node);
    }
    let key = CpaKey {
        node,
        intensity_bits: fab.energy_intensity.as_grams_per_kwh().to_bits(),
        abatement: fab.abatement,
        yield_bits: fab.fab_yield.get().to_bits(),
    };
    cpa_cache().get_or_insert_with(key, || fab.carbon_per_area(node))
}

/// Memoized DRAM embodied footprint `CPS_DRAM × capacity` (eq. 6).
#[must_use]
pub fn dram_embodied(technology: DramTechnology, capacity: Capacity) -> MassCo2 {
    if !enabled() {
        return technology.carbon_per_gb() * capacity;
    }
    let key = StorageKey::Dram(technology, capacity.as_gigabytes().to_bits());
    storage_cache().get_or_insert_with(key, || technology.carbon_per_gb() * capacity)
}

/// Memoized SSD embodied footprint `CPS_SSD × capacity` (eq. 8).
#[must_use]
pub fn ssd_embodied(technology: SsdTechnology, capacity: Capacity) -> MassCo2 {
    if !enabled() {
        return technology.carbon_per_gb() * capacity;
    }
    let key = StorageKey::Ssd(technology, capacity.as_gigabytes().to_bits());
    storage_cache().get_or_insert_with(key, || technology.carbon_per_gb() * capacity)
}

/// Memoized HDD embodied footprint `CPS_HDD × capacity` (eq. 7).
#[must_use]
pub fn hdd_embodied(model: HddModel, capacity: Capacity) -> MassCo2 {
    if !enabled() {
        return model.carbon_per_gb() * capacity;
    }
    let key = StorageKey::Hdd(model, capacity.as_gigabytes().to_bits());
    storage_cache().get_or_insert_with(key, || model.carbon_per_gb() * capacity)
}

/// Counters of the global carbon-per-area cache.
#[must_use]
pub fn cpa_stats() -> MemoStats {
    cpa_cache().stats()
}

/// Counters of the global storage-footprint cache.
#[must_use]
pub fn storage_stats() -> MemoStats {
    storage_cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_units::Fraction;

    #[test]
    fn cpa_matches_direct_computation_bitwise() {
        let scenarios = [
            FabScenario::default(),
            FabScenario::taiwan_grid(),
            FabScenario::default().with_yield(Fraction::new_const(0.5)),
        ];
        for fab in &scenarios {
            for node in [ProcessNode::N7, ProcessNode::N10, ProcessNode::N28] {
                let direct = fab.carbon_per_area(node).as_grams_per_cm2();
                let cached = carbon_per_area(fab, node).as_grams_per_cm2();
                assert_eq!(direct.to_bits(), cached.to_bits());
                // Second lookup (a guaranteed hit) returns the same bits.
                let again = carbon_per_area(fab, node).as_grams_per_cm2();
                assert_eq!(cached.to_bits(), again.to_bits());
            }
        }
    }

    #[test]
    fn storage_helpers_match_direct_computation_bitwise() {
        let capacity = Capacity::gigabytes(128.0);
        let direct = (SsdTechnology::V3NandTlc.carbon_per_gb() * capacity).as_grams();
        let cached = ssd_embodied(SsdTechnology::V3NandTlc, capacity).as_grams();
        assert_eq!(direct.to_bits(), cached.to_bits());

        let dram_direct = (DramTechnology::Lpddr4.carbon_per_gb() * capacity).as_grams();
        let dram_cached = dram_embodied(DramTechnology::Lpddr4, capacity).as_grams();
        assert_eq!(dram_direct.to_bits(), dram_cached.to_bits());
    }

    #[test]
    fn disabling_bypasses_the_cache_without_changing_results() {
        let fab = FabScenario::default();
        let cached = carbon_per_area(&fab, ProcessNode::N14);
        set_enabled(false);
        let bypassed = carbon_per_area(&fab, ProcessNode::N14);
        set_enabled(true);
        assert_eq!(cached, bypassed);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache: MemoCache<(u8, u8), f64> = MemoCache::new();
        for round in 0..3_u8 {
            for key in 0..10_u8 {
                let value = cache.get_or_insert_with((key, 0), || f64::from(key) * 2.0);
                assert_eq!(value, f64::from(key) * 2.0);
                let _ = round;
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.entries, 10);
        cache.clear();
        assert_eq!(cache.stats(), MemoStats::default());
    }
}
