//! Deterministic tests pinning the compiled-kernel contract: for valid
//! `ModelParams` and every subset of free axes, [`CompiledFootprint::eval`]
//! is **bit-for-bit** identical to substituting the point into the params
//! and calling the interpreted oracle [`ModelParams::try_footprint`] — and
//! the `act_core::memo` caches never change a result, under concurrency
//! included.
//!
//! The randomized-input (proptest) companion lives in
//! `external-dev/tests/core_compiled.rs`; this suite drives the same
//! properties from a seeded `act_rng` stream, so the hermetic std-only
//! workspace covers a wide — and exactly reproducible — slice of the same
//! case space.

use act_core::{memo, CompiledFootprint, FreeAxis, ModelParams};
use act_data::{DramTechnology, HddModel, ProcessNode, SsdTechnology};
use act_rng::Rng;
use act_units::Capacity;

/// The seven scalar (non-storage) axes, in a fixed order for masking.
const SCALAR_AXES: [FreeAxis; 7] = [
    FreeAxis::ExecutionTime,
    FreeAxis::Lifetime,
    FreeAxis::SocArea,
    FreeAxis::UseIntensity,
    FreeAxis::FabIntensity,
    FreeAxis::FabYield,
    FreeAxis::Energy,
];

/// Randomized cases per property — each derives its params, mask and point
/// from one seeded stream, so failures replay exactly.
const CASES: u64 = 64;

/// Draws `ModelParams` strictly inside Table 1's valid ranges, with 0–2
/// entries per storage population.
fn draw_params(rng: &mut Rng) -> ModelParams {
    let node = ProcessNode::ALL[rng.gen_range(0..ProcessNode::ALL.len())];
    let storage_len = |rng: &mut Rng| rng.gen_range(0..3_usize);
    let dram = (0..storage_len(rng))
        .map(|_| {
            let i = rng.gen_range(0..DramTechnology::ALL.len());
            (DramTechnology::ALL[i], rng.gen_range(0.0..2048.0))
        })
        .collect();
    let ssd = (0..storage_len(rng))
        .map(|_| {
            let i = rng.gen_range(0..SsdTechnology::ALL.len());
            (SsdTechnology::ALL[i], rng.gen_range(0.0..4096.0))
        })
        .collect();
    let hdd = (0..storage_len(rng))
        .map(|_| {
            let i = rng.gen_range(0..HddModel::ALL.len());
            (HddModel::ALL[i], rng.gen_range(0.0..8192.0))
        })
        .collect();
    ModelParams {
        execution_time_s: rng.gen_range(0.0..1e6),
        lifetime_years: rng.gen_range(0.1..50.0),
        packaged_ic_count: rng.gen_range(0..8_u32),
        soc_area_mm2: rng.gen_range(0.0..1500.0),
        process_node: node,
        use_intensity_g_per_kwh: rng.gen_range(0.0..2000.0),
        fab_intensity_g_per_kwh: rng.gen_range(0.0..2000.0),
        fab_yield: rng.gen_range(0.05..1.0),
        dram,
        ssd,
        hdd,
        energy_j: rng.gen_range(0.0..1e9),
    }
}

/// Selects a subset of the axes available for `params` from the bits of
/// `mask`: seven scalar axes first, then one capacity axis per storage
/// population entry.
fn free_axes(params: &ModelParams, mask: u32) -> Vec<FreeAxis> {
    let mut axes = Vec::new();
    let mut bit = 0u32;
    let mut take = |axis: FreeAxis| {
        if mask & (1 << bit) != 0 {
            axes.push(axis);
        }
        bit += 1;
    };
    for axis in SCALAR_AXES {
        take(axis);
    }
    for k in 0..params.dram.len() {
        take(FreeAxis::DramCapacity(k));
    }
    for k in 0..params.ssd.len() {
        take(FreeAxis::SsdCapacity(k));
    }
    for k in 0..params.hdd.len() {
        take(FreeAxis::HddCapacity(k));
    }
    axes
}

/// Maps a unit draw `u ∈ [0, 1)` onto a valid coordinate for `axis`.
fn coordinate(axis: FreeAxis, u: f64) -> f64 {
    match axis {
        FreeAxis::ExecutionTime => u * 1e6,
        FreeAxis::Lifetime => 0.1 + u * 49.0,
        FreeAxis::SocArea => u * 1500.0,
        FreeAxis::UseIntensity | FreeAxis::FabIntensity => u * 2000.0,
        FreeAxis::FabYield => 0.05 + u * 0.95,
        FreeAxis::Energy => u * 1e9,
        FreeAxis::DramCapacity(_) | FreeAxis::SsdCapacity(_) | FreeAxis::HddCapacity(_) => {
            u * 4096.0
        }
    }
}

/// Draws an in-range point for `axes` from the case's unit-draw stream.
fn draw_point(rng: &mut Rng, axes: &[FreeAxis]) -> Vec<f64> {
    axes.iter().map(|axis| coordinate(*axis, rng.gen::<f64>())).collect()
}

/// The interpreted oracle: substitute the point into a clone of `params`
/// field-by-field, then run the full per-point pipeline.
fn oracle(params: &ModelParams, axes: &[FreeAxis], point: &[f64]) -> f64 {
    let mut substituted = params.clone();
    for (axis, value) in axes.iter().zip(point) {
        match axis {
            FreeAxis::ExecutionTime => substituted.execution_time_s = *value,
            FreeAxis::Lifetime => substituted.lifetime_years = *value,
            FreeAxis::SocArea => substituted.soc_area_mm2 = *value,
            FreeAxis::UseIntensity => substituted.use_intensity_g_per_kwh = *value,
            FreeAxis::FabIntensity => substituted.fab_intensity_g_per_kwh = *value,
            FreeAxis::FabYield => substituted.fab_yield = *value,
            FreeAxis::Energy => substituted.energy_j = *value,
            FreeAxis::DramCapacity(k) => substituted.dram[*k].1 = *value,
            FreeAxis::SsdCapacity(k) => substituted.ssd[*k].1 = *value,
            FreeAxis::HddCapacity(k) => substituted.hdd[*k].1 = *value,
        }
    }
    substituted.try_footprint().expect("substituted params stay valid").as_grams()
}

/// The headline property: any axis subset, any in-range point — compiled
/// and interpreted paths agree to the last bit.
#[test]
fn compiled_eval_matches_try_footprint_bitwise() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(act_rng::split_seed(0xC0DE, case));
        let params = draw_params(&mut rng);
        let mask: u32 = rng.gen();
        let axes = free_axes(&params, mask);
        let kernel = match CompiledFootprint::try_compile(&params, &axes) {
            Ok(kernel) => kernel,
            Err(err) => panic!("case {case}: valid params must compile: {err}"),
        };
        assert_eq!(kernel.arity(), axes.len());
        assert_eq!(kernel.axes(), axes.as_slice());
        let point = draw_point(&mut rng, &axes);
        let compiled = kernel.eval(&point);
        let interpreted = oracle(&params, &axes, &point);
        assert_eq!(
            compiled.to_bits(),
            interpreted.to_bits(),
            "case {case}, axes {axes:?}: compiled {compiled} vs interpreted {interpreted}"
        );
    }
}

/// Arity-zero kernels fold the whole model into one constant equal to the
/// oracle's result for the baseline.
#[test]
fn fully_folded_kernel_matches_baseline_footprint() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(act_rng::split_seed(0xF01D, case));
        let params = draw_params(&mut rng);
        let kernel = match CompiledFootprint::try_compile(&params, &[]) {
            Ok(kernel) => kernel,
            Err(err) => panic!("case {case}: valid params must compile: {err}"),
        };
        let baseline = params.try_footprint().expect("valid params evaluate").as_grams();
        assert_eq!(kernel.eval(&[]).to_bits(), baseline.to_bits(), "case {case}");
    }
}

/// `try_eval` never disagrees with `eval` on in-range points.
#[test]
fn try_eval_agrees_with_eval_on_valid_points() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(act_rng::split_seed(0x7E57, case));
        let params = draw_params(&mut rng);
        let mask: u32 = rng.gen();
        let axes = free_axes(&params, mask);
        let kernel = match CompiledFootprint::try_compile(&params, &axes) {
            Ok(kernel) => kernel,
            Err(err) => panic!("case {case}: valid params must compile: {err}"),
        };
        let point = draw_point(&mut rng, &axes);
        let unchecked = kernel.eval(&point);
        match kernel.try_eval(&point) {
            Ok(checked) => assert_eq!(checked.to_bits(), unchecked.to_bits(), "case {case}"),
            // `try_eval` additionally rejects non-finite totals; `eval`
            // must then have produced exactly such a value.
            Err(_) => assert!(!unchecked.is_finite(), "case {case}"),
        }
    }
}

/// The memo caches are transparent: kernels compiled with interning
/// disabled and enabled evaluate identically (the cache may only ever
/// return what the direct computation would).
#[test]
fn memoization_never_changes_a_compiled_result() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(act_rng::split_seed(0x3E30, case));
        let params = draw_params(&mut rng);
        let mask: u32 = rng.gen();
        let axes = free_axes(&params, mask);
        let point = draw_point(&mut rng, &axes);
        memo::set_enabled(false);
        let cold = CompiledFootprint::compile(&params, &axes).eval(&point);
        memo::set_enabled(true);
        let warm = CompiledFootprint::compile(&params, &axes).eval(&point);
        assert_eq!(cold.to_bits(), warm.to_bits(), "case {case}");
    }
}

/// Hammers the sharded caches from eight threads with a shared key set and
/// checks every hit against the direct computation, bit for bit.
#[test]
fn memo_cache_is_bitwise_consistent_under_concurrent_access() {
    memo::set_enabled(true);
    let params = ModelParams::mobile_reference();
    let fab = params.try_fab_scenario().expect("reference fab scenario");
    let capacities = [0.0, 1.0, 8.0, 128.0, 2048.0];

    // Direct (uncached) expectations, computed once up front.
    let expected_cpa: Vec<u64> = ProcessNode::ALL
        .iter()
        .map(|node| fab.carbon_per_area(*node).as_grams_per_cm2().to_bits())
        .collect();
    let expected_dram: Vec<u64> = capacities
        .iter()
        .map(|gb| {
            (DramTechnology::Lpddr4.carbon_per_gb() * Capacity::gigabytes(*gb))
                .as_grams()
                .to_bits()
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..200 {
                    for (node, want) in ProcessNode::ALL.iter().zip(&expected_cpa) {
                        let got = memo::carbon_per_area(&fab, *node).as_grams_per_cm2();
                        assert_eq!(got.to_bits(), *want, "cpa({node:?}) diverged");
                    }
                    for (gb, want) in capacities.iter().zip(&expected_dram) {
                        let got = memo::dram_embodied(
                            DramTechnology::Lpddr4,
                            Capacity::gigabytes(*gb),
                        )
                        .as_grams();
                        assert_eq!(got.to_bits(), *want, "dram({gb} GB) diverged");
                    }
                }
            });
        }
    });
}
